//! Failure-injection integration tests: when the LM errors mid-pipeline,
//! every method must surface `Answer::Error` (or degrade gracefully),
//! never panic or wedge.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tag_repro::tag_core::env::TagEnv;
use tag_repro::tag_core::methods::{HandWrittenTag, Rag, RetrievalLmRank, Text2Sql, Text2SqlLm};
use tag_repro::tag_core::model::TagMethod;
use tag_repro::tag_datagen::schools;
use tag_repro::tag_lm::model::{LanguageModel, LmError, LmRequest, LmResponse, LmResult};
use tag_repro::tag_lm::sim::{SimConfig, SimLm};

/// Wraps a model and fails every `fail_every`-th batch.
struct FlakyLm {
    inner: SimLm,
    batches_seen: AtomicU64,
    fail_every: u64,
}

impl FlakyLm {
    fn new(fail_every: u64) -> Self {
        FlakyLm {
            inner: SimLm::new(SimConfig::default()),
            batches_seen: AtomicU64::new(0),
            fail_every,
        }
    }
}

impl LanguageModel for FlakyLm {
    fn generate_batch(&self, requests: &[LmRequest]) -> LmResult<Vec<LmResponse>> {
        let n = self.batches_seen.fetch_add(1, Ordering::SeqCst) + 1;
        if n.is_multiple_of(self.fail_every) {
            return Err(LmError::Other("injected backend failure".into()));
        }
        self.inner.generate_batch(requests)
    }
    fn elapsed_seconds(&self) -> f64 {
        self.inner.elapsed_seconds()
    }
    fn reset_metrics(&self) {
        self.inner.reset_metrics();
    }
    fn batches(&self) -> u64 {
        self.inner.batches()
    }
    fn calls(&self) -> u64 {
        self.inner.calls()
    }
    fn context_window(&self) -> usize {
        self.inner.context_window()
    }
}

fn questions() -> Vec<&'static str> {
    vec![
        "How many schools located in the Bay Area region are there?",
        "What is the School of the schools with the lowest Longitude among those \
         located in the Silicon Valley region?",
        "List the top 3 schools by Longitude: give their School among those \
         located in the Bay Area region.",
    ]
}

#[test]
fn every_method_survives_an_lm_that_always_fails() {
    let domain = schools::generate(3, 80);
    let env = TagEnv::new(domain.db, Arc::new(FlakyLm::new(1)));
    for q in questions() {
        for answer in [
            Text2Sql.answer(q, &env),
            Rag::default().answer(q, &env),
            RetrievalLmRank::default().answer(q, &env),
            Text2SqlLm::default().answer(q, &env),
            HandWrittenTag.answer(q, &env),
        ] {
            assert!(
                answer.is_error(),
                "a dead LM must surface as an error, got {answer:?} for {q:?}"
            );
        }
    }
}

#[test]
fn intermittent_failures_never_panic() {
    // Every 3rd batch fails: some pipelines die on their first call,
    // multi-round pipelines die midway. All must return cleanly.
    for fail_every in [2u64, 3, 5] {
        let domain = schools::generate(3, 80);
        let env = TagEnv::new(domain.db, Arc::new(FlakyLm::new(fail_every)));
        for q in questions() {
            for answer in [
                Text2Sql.answer(q, &env),
                HandWrittenTag.answer(q, &env),
                Text2SqlLm::default().answer(q, &env),
            ] {
                let _ = answer.to_string(); // Error or a (possibly wrong) answer
            }
        }
    }
}

#[test]
fn engine_cache_state_stays_usable_after_a_failure() {
    let domain = schools::generate(3, 60);
    // Fails exactly the second batch.
    struct FailSecond(FlakyLm);
    let env = TagEnv::new(domain.db, {
        let mut f = FlakyLm::new(2);
        f.fail_every = 2;
        Arc::new(FailSecond(f)) as Arc<dyn LanguageModel>
    });
    impl LanguageModel for FailSecond {
        fn generate_batch(&self, r: &[LmRequest]) -> LmResult<Vec<LmResponse>> {
            self.0.generate_batch(r)
        }
        fn elapsed_seconds(&self) -> f64 {
            self.0.elapsed_seconds()
        }
        fn reset_metrics(&self) {
            self.0.reset_metrics();
        }
        fn batches(&self) -> u64 {
            self.0.batches()
        }
        fn calls(&self) -> u64 {
            self.0.calls()
        }
        fn context_window(&self) -> usize {
            self.0.context_window()
        }
    }
    let q = "How many schools located in the Bay Area region are there?";
    let first = HandWrittenTag.answer(q, &env); // batch 1 ok (single round)
    let second = HandWrittenTag.answer(q, &env); // cache hit or batch 2 (fails)
    let third = HandWrittenTag.answer(q, &env);
    // Whatever mixture of cache hits and failures occurred, the engine
    // must keep producing well-formed answers afterwards.
    for a in [first, second, third] {
        let _ = a.to_string();
    }
    let fourth = HandWrittenTag.answer(q, &env);
    let _ = fourth.to_string();
}
