//! Integration tests of the benchmark itself: composition, oracle
//! well-posedness at the standard scale, harness determinism, and the
//! headline result shape.

use tag_repro::tag_bench::{build_benchmark, Harness, MethodId, Oracle, QueryKind, QueryType};
use tag_repro::tag_datagen::{generate_all, Scale};
use tag_repro::tag_lm::sim::SimConfig;

#[test]
fn standard_scale_benchmark_is_well_posed() {
    // The oracle panics on ambiguous queries; run it over the exact
    // configuration the paper tables use.
    let domains = generate_all(42, Scale::default());
    let queries = build_benchmark(&domains);
    let oracle = Oracle::new();
    assert_eq!(queries.len(), 80);
    for q in &queries {
        let domain = domains.iter().find(|d| d.name == q.domain).unwrap();
        let truth = oracle.answer(q, domain);
        match q.qtype {
            QueryType::Aggregation => assert!(truth.is_none()),
            _ => assert!(
                !truth.expect("graded query has truth").is_empty(),
                "query {} has empty truth",
                q.id
            ),
        }
    }
}

#[test]
fn composition_is_20_per_type_and_40_40_kinds() {
    let domains = generate_all(42, Scale::default());
    let queries = build_benchmark(&domains);
    for t in [
        QueryType::MatchBased,
        QueryType::Comparison,
        QueryType::Ranking,
        QueryType::Aggregation,
    ] {
        assert_eq!(queries.iter().filter(|q| q.qtype == t).count(), 20);
    }
    assert_eq!(
        queries
            .iter()
            .filter(|q| q.kind == QueryKind::Knowledge)
            .count(),
        40
    );
}

#[test]
fn harness_outcomes_are_deterministic() {
    let run = |method, id| {
        let h = Harness::small();
        let o = h.run_one(method, id);
        (o.correct, o.seconds, o.answer)
    };
    for (m, id) in [
        (MethodId::Text2Sql, 1),
        (MethodId::Rag, 21),
        (MethodId::HandWritten, 41),
    ] {
        assert_eq!(run(m, id), run(m, id), "{m:?} query {id}");
    }
}

#[test]
fn headline_shape_holds_on_a_benchmark_slice() {
    // A fast proxy for Table 1's headline: over the first two queries of
    // every graded type, hand-written TAG answers at least as many
    // correctly as each baseline, and strictly more than RAG overall.
    let mut h = Harness::small();
    let ids: Vec<usize> = [
        QueryType::MatchBased,
        QueryType::Comparison,
        QueryType::Ranking,
    ]
    .iter()
    .flat_map(|t| {
        h.queries()
            .iter()
            .filter(|q| q.qtype == *t)
            .take(2)
            .map(|q| q.id)
            .collect::<Vec<_>>()
    })
    .collect();

    let score = |h: &mut Harness, m: MethodId| -> usize {
        ids.iter()
            .filter(|&&id| h.run_one(m, id).correct == Some(true))
            .count()
    };
    let tag = score(&mut h, MethodId::HandWritten);
    let rag = score(&mut h, MethodId::Rag);
    let t2s = score(&mut h, MethodId::Text2Sql);
    let rerank = score(&mut h, MethodId::Rerank);
    assert!(tag >= t2s, "tag={tag} t2s={t2s}");
    assert!(tag >= rerank, "tag={tag} rerank={rerank}");
    assert!(tag > rag, "tag={tag} rag={rag}");
}

#[test]
fn headline_shape_is_seed_robust() {
    // The TAG-vs-baseline gap must not be an artifact of seed 42: on a
    // different data seed, TAG still beats RAG and Text2SQL on the same
    // benchmark slice.
    let scale = Scale {
        schools: 120,
        players: 150,
        posts: 60,
        customers: 120,
        drivers: 10,
    };
    for seed in [7u64, 1234] {
        let mut h = Harness::new(seed, scale, SimConfig::default());
        let ids: Vec<usize> = h
            .queries()
            .iter()
            .filter(|q| q.qtype != QueryType::Aggregation)
            .step_by(4)
            .map(|q| q.id)
            .collect();
        let score = |h: &mut Harness, m: MethodId| -> usize {
            ids.iter()
                .filter(|&&id| h.run_one(m, id).correct == Some(true))
                .count()
        };
        let tag = score(&mut h, MethodId::HandWritten);
        let rag = score(&mut h, MethodId::Rag);
        let t2s = score(&mut h, MethodId::Text2Sql);
        assert!(
            tag > rag && tag >= t2s,
            "seed {seed}: tag={tag} rag={rag} t2s={t2s} over {} queries",
            ids.len()
        );
    }
}

#[test]
fn aggregation_queries_report_time_but_not_accuracy() {
    let h = Harness::small();
    let id = h
        .queries()
        .iter()
        .find(|q| q.qtype == QueryType::Aggregation)
        .unwrap()
        .id;
    let o = h.run_one(MethodId::HandWritten, id);
    assert!(o.correct.is_none());
    assert!(o.seconds > 0.0);
    assert!(o.answer.as_text().is_some());
}
