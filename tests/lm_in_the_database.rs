//! Integration tests of LM ↔ database interplay: LM UDFs inside SQL
//! (§2.1), semantic operators over SQL results, and the multi-hop
//! extension.

use std::sync::Arc;
use tag_repro::tag_core::answer::Answer;
use tag_repro::tag_core::env::TagEnv;
use tag_repro::tag_core::multihop::{run_two_hop, TwoHopQuery};
use tag_repro::tag_datagen::{community, movies};
use tag_repro::tag_lm::model::{LanguageModel, LmRequest};
use tag_repro::tag_lm::nlq::{NlFilter, NlQuery, SemProperty};
use tag_repro::tag_lm::prompts::{sem_filter_prompt, SemClaim};
use tag_repro::tag_lm::sim::{SimConfig, SimLm};
use tag_repro::tag_lm::KnowledgeConfig;
use tag_repro::tag_semops::{sem_filter, DataFrame, SemEngine};
use tag_repro::tag_sql::{FnUdf, SqlError, Value};

fn exact_lm() -> Arc<SimLm> {
    Arc::new(SimLm::new(SimConfig {
        knowledge: KnowledgeConfig {
            coverage: 1.0,
            enumeration_coverage: 1.0,
            seed: 9,
        },
        judgment_noise: 0.0,
        ..SimConfig::default()
    }))
}

#[test]
fn lm_udf_inside_sql_filters_classics() {
    let domain = movies::generate(42);
    let mut db = domain.db;
    let lm = exact_lm();
    let udf_lm = Arc::clone(&lm);
    db.register_udf(Arc::new(FnUdf::new(
        "LLM_IS_CLASSIC",
        Some(1),
        move |args: &[Value]| {
            let prompt = sem_filter_prompt(&SemClaim::ClassicMovie, &args[0].to_string());
            let out = udf_lm
                .generate(&LmRequest::new(prompt))
                .map_err(|e| SqlError::Udf(e.to_string()))?;
            Ok(Value::from(out.text.trim().eq_ignore_ascii_case("true")))
        },
    )));
    let rs = db
        .execute(
            "SELECT movie_title FROM movies WHERE genre = 'Romance' AND \
             LLM_IS_CLASSIC(movie_title) ORDER BY revenue DESC LIMIT 1",
        )
        .unwrap();
    assert_eq!(rs.rows[0][0], Value::text("Titanic"));
    assert!(lm.calls() > 0, "the UDF must actually call the LM");
}

#[test]
fn semantic_operator_over_sql_result() {
    let domain = community::generate(5, 30);
    let mut db = domain.db;
    let engine = SemEngine::new(exact_lm() as Arc<dyn LanguageModel>);
    let df = DataFrame::from_result(
        db.execute("SELECT Id, Text FROM comments WHERE PostId = 2")
            .unwrap(),
    );
    let sarcastic = sem_filter(
        &engine,
        &df,
        "Text",
        &SemClaim::Property(SemProperty::Sarcastic),
    )
    .unwrap();
    // With zero judgment noise the operator recovers exactly the planted
    // sarcastic comments of post 2.
    let expected: Vec<Value> = df
        .rows()
        .iter()
        .filter(|r| {
            let id = r[0].as_i64().unwrap();
            domain.labels.comment_sarcastic[&id]
        })
        .map(|r| r[0].clone())
        .collect();
    assert_eq!(sarcastic.column("Id").unwrap(), expected);
}

#[test]
fn two_hop_beats_single_hop_on_composition() {
    let domain = community::generate(5, 40);
    let labels = domain.labels.clone();
    let posts = domain.db.catalog().table("posts").unwrap();
    let technical: std::collections::HashSet<i64> = posts
        .rows()
        .iter()
        .filter_map(|r| {
            let id = r[0].as_i64()?;
            (labels.post_technicality[&id] >= 2).then_some(id)
        })
        .collect();
    let comment_rows: Vec<Vec<Value>> = domain
        .db
        .catalog()
        .table("comments")
        .unwrap()
        .rows()
        .to_vec();
    let truth = comment_rows
        .iter()
        .filter(|r| {
            technical.contains(&r[1].as_i64().unwrap())
                && labels.comment_sarcastic[&r[0].as_i64().unwrap()]
        })
        .count() as f64;

    let env = TagEnv::new(domain.db, exact_lm() as Arc<dyn LanguageModel>);
    let q = TwoHopQuery {
        hop1: NlQuery::List {
            entity: "posts".into(),
            select_attr: "Id".into(),
            filters: vec![NlFilter::Semantic {
                attr: "Title".into(),
                property: SemProperty::Technical,
            }],
        },
        join_attr: "PostId".into(),
        hop2: NlQuery::Count {
            entity: "comments".into(),
            filters: vec![NlFilter::Semantic {
                attr: "Text".into(),
                property: SemProperty::Sarcastic,
            }],
        },
    };
    let two = run_two_hop(&q, &env);
    let two_n: f64 = match &two {
        Answer::List(v) => v[0].parse().unwrap(),
        other => panic!("{other:?}"),
    };
    // Single-hop can only count all sarcastic comments.
    let single = comment_rows
        .iter()
        .filter(|r| labels.comment_sarcastic[&r[0].as_i64().unwrap()])
        .count() as f64;
    assert!(
        (two_n - truth).abs() < (single - truth).abs(),
        "two-hop ({two_n}) must be closer to truth ({truth}) than single-hop ({single})"
    );
}
