//! End-to-end integration tests spanning every crate: generated domains,
//! the SQL engine, the simulated LM, semantic operators, and the five
//! TAG methods.

use std::sync::Arc;
use tag_repro::tag_core::answer::Answer;
use tag_repro::tag_core::env::TagEnv;
use tag_repro::tag_core::methods::{HandWrittenTag, Rag, RetrievalLmRank, Text2Sql, Text2SqlLm};
use tag_repro::tag_core::model::TagMethod;
use tag_repro::tag_datagen::{formula1, movies, schools};
use tag_repro::tag_lm::model::LanguageModel;
use tag_repro::tag_lm::sim::{SimConfig, SimLm};

fn env_over(db: tag_repro::tag_sql::Database) -> TagEnv {
    TagEnv::new(db, Arc::new(SimLm::new(SimConfig::default())))
}

#[test]
fn figure1_pipeline_answers_titanic() {
    // The running example: highest grossing romance classic = Titanic.
    let domain = movies::generate(42);
    let env = env_over(domain.db);
    let ans = HandWrittenTag.answer(
        "What is the movie_title of the movies with the highest revenue \
         among those with genre equal to 'Romance' and considered a classic?",
        &env,
    );
    assert_eq!(ans, Answer::List(vec!["Titanic".into()]));
}

#[test]
fn sepang_coverage_ordering_across_methods() {
    // Figure 2's qualitative ordering, asserted quantitatively: TAG's
    // answer covers every year, RAG a strict subset, Text2SQL + LM
    // usually none (parametric fallback).
    let request = "Provide information about the races held on Sepang International Circuit.";
    let years = |text: &str| {
        (1999..=2017)
            .filter(|y| text.contains(&y.to_string()))
            .count()
    };

    let domain = formula1::generate(42, 18);
    let env = env_over(domain.db);

    let tag = HandWrittenTag.answer(request, &env);
    let tag_years = years(tag.as_text().expect("free text"));
    assert_eq!(tag_years, 19, "TAG must cover all years: {tag}");

    let rag = Rag::aggregation().answer(request, &env);
    let rag_years = years(rag.as_text().expect("free text"));
    assert!(rag_years < 19, "RAG is capped by its retrieval: {rag}");
    assert!(rag_years > 0, "RAG retrieves something: {rag}");

    let t2l = Text2SqlLm::aggregation().answer(request, &env);
    let t2l_years = years(t2l.as_text().expect("free text"));
    assert!(
        t2l_years <= rag_years || t2l_years == 19,
        "Text2SQL+LM either fails retrieval or trivially succeeds: {t2l}"
    );
}

#[test]
fn every_method_answers_without_panicking() {
    let domain = schools::generate(7, 150);
    let env = env_over(domain.db);
    let request = "How many schools located in the Bay Area region are there?";
    for answer in [
        Text2Sql.answer(request, &env),
        Rag::default().answer(request, &env),
        RetrievalLmRank::default().answer(request, &env),
        Text2SqlLm::default().answer(request, &env),
        HandWrittenTag.answer(request, &env),
    ] {
        // Any Answer variant is acceptable; the pipeline must complete.
        let _ = answer.to_string();
    }
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let domain = schools::generate(11, 120);
        let env = env_over(domain.db);
        let request = "What is the School of the schools with the lowest Longitude \
                       among those located in the Bay Area region?";
        let a = HandWrittenTag.answer(request, &env);
        let b = Text2Sql.answer(request, &env);
        let secs = env.elapsed_seconds();
        (a, b, secs)
    };
    let first = run();
    let second = run();
    assert_eq!(first.0, second.0);
    assert_eq!(first.1, second.1);
    assert!((first.2 - second.2).abs() < 1e-12);
}

#[test]
fn virtual_clock_tracks_method_costs() {
    let domain = schools::generate(3, 100);
    let lm = Arc::new(SimLm::new(SimConfig::default()));
    let env = TagEnv::new(domain.db, lm.clone() as Arc<dyn LanguageModel>);
    let request = "How many schools located in the Silicon Valley region are there?";

    env.reset_metrics();
    Text2Sql.answer(request, &env);
    let t2s = env.elapsed_seconds();
    assert!(t2s > 0.0);
    // Exactly one LM call for vanilla Text2SQL.
    assert_eq!(lm.calls(), 1);

    env.reset_metrics();
    HandWrittenTag.answer(request, &env);
    assert!(env.elapsed_seconds() > 0.0);
    // One prompt per distinct city, but a single batch round.
    assert_eq!(lm.batches(), 1);
    assert!(lm.calls() > 1);
}
