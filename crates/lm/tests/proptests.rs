//! Property-based tests for the simulated LM substrate.

use proptest::prelude::*;
use tag_lm::cost::CostModel;
use tag_lm::model::{LanguageModel, LmRequest};
use tag_lm::nlq::{CmpOp, NlFilter, NlQuery, SemProperty};
use tag_lm::prompts;
use tag_lm::sim::{SimConfig, SimLm};
use tag_lm::tokenizer::count_tokens;

fn attr() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9]{0,10}".prop_map(|s| s)
}

fn text_value() -> impl Strategy<Value = String> {
    // No single quotes (the canonical renderer requires quote-free values,
    // matching the benchmark's data) and no leading/trailing spaces.
    "[A-Za-z0-9][A-Za-z0-9 ,?!-]{0,30}[A-Za-z0-9]".prop_map(|s| s)
}

/// Values for name-like slots (regions, people, circuits...): the
/// canonical question language joins filters with ", " and " and ", so
/// names in the benchmark vocabulary never contain those separators.
fn name_value() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9 -]{0,20}[A-Za-z0-9]".prop_filter("no join separators in names", |s| {
        !s.contains(", ") && !s.contains(" and ")
    })
}

fn property() -> impl Strategy<Value = SemProperty> {
    prop_oneof![
        Just(SemProperty::Positive),
        Just(SemProperty::Negative),
        Just(SemProperty::Sarcastic),
        Just(SemProperty::Technical),
    ]
}

fn filter() -> impl Strategy<Value = NlFilter> {
    prop_oneof![
        (attr(), any::<bool>(), -1000.0f64..1000.0).prop_map(|(a, over, v)| {
            NlFilter::NumCmp {
                attr: a,
                op: if over { CmpOp::Over } else { CmpOp::Under },
                // canonical rendering is exact for halves
                value: (v * 2.0).round() / 2.0,
            }
        }),
        (attr(), text_value()).prop_map(|(a, v)| NlFilter::TextEq { attr: a, value: v }),
        name_value().prop_map(|r| NlFilter::InRegion { region: r }),
        name_value().prop_map(|p| NlFilter::TallerThan { person: p }),
        Just(NlFilter::EuCountry),
        name_value().prop_map(|c| NlFilter::CircuitContinent { continent: c }),
        name_value().prop_map(|c| NlFilter::AtCircuit { circuit: c }),
        Just(NlFilter::ClassicMovie),
        name_value().prop_map(|v| NlFilter::VerticalIs { vertical: v }),
        (attr(), property()).prop_map(|(a, p)| NlFilter::Semantic {
            attr: a,
            property: p
        }),
    ]
}

fn entity() -> impl Strategy<Value = String> {
    "[a-z]{3,10}".prop_map(|s| s)
}

fn filters() -> impl Strategy<Value = Vec<NlFilter>> {
    prop::collection::vec(filter(), 0..3)
}

fn query() -> impl Strategy<Value = NlQuery> {
    prop_oneof![
        (entity(), attr(), attr(), any::<bool>(), filters()).prop_map(|(e, s, r, h, f)| {
            NlQuery::Superlative {
                entity: e,
                select_attr: s,
                rank_attr: r,
                highest: h,
                filters: f,
            }
        }),
        (entity(), filters()).prop_map(|(e, f)| NlQuery::Count {
            entity: e,
            filters: f
        }),
        (entity(), attr(), filters()).prop_map(|(e, s, f)| NlQuery::List {
            entity: e,
            select_attr: s,
            filters: f,
        }),
        (entity(), attr(), attr(), 1usize..20, property(), attr()).prop_map(
            |(e, s, r, k, p, o)| NlQuery::SemanticRank {
                entity: e,
                select_attr: s,
                rank_attr: r,
                k,
                property: p,
                on_attr: o,
            }
        ),
        (
            entity(),
            attr(),
            attr(),
            1usize..20,
            any::<bool>(),
            filters()
        )
            .prop_map(|(e, s, r, k, h, f)| NlQuery::TopK {
                entity: e,
                select_attr: s,
                rank_attr: r,
                k,
                highest: h,
                filters: f,
            }),
        (entity(), attr(), filters()).prop_map(|(e, t, f)| NlQuery::Summarize {
            entity: e,
            topic: t,
            filters: f,
        }),
        (entity(), filters()).prop_map(|(e, f)| NlQuery::ProvideInfo {
            entity: e,
            filters: f,
        }),
    ]
}

proptest! {
    /// The canonical question language round-trips: parse(render(q)) == q.
    #[test]
    fn nlq_round_trips(q in query()) {
        let text = q.render();
        let parsed = NlQuery::parse(&text);
        prop_assert_eq!(parsed, Some(q), "text: {}", text);
    }

    /// The NL parser never panics on arbitrary text.
    #[test]
    fn nlq_parse_never_panics(s in "\\PC{0,200}") {
        let _ = NlQuery::parse(&s);
    }

    /// Answer lists round-trip for quote-free values.
    #[test]
    fn answer_list_round_trips(vals in prop::collection::vec(text_value(), 0..8)) {
        let rendered = prompts::render_answer_list(&vals);
        let parsed = prompts::parse_answer_list(&rendered).unwrap();
        prop_assert_eq!(parsed, vals);
    }

    /// Answer-generation prompts round-trip their data points.
    #[test]
    fn answer_prompt_round_trips(
        points in prop::collection::vec(
            prop::collection::vec((attr(), text_value()), 1..4), 0..6),
        list in any::<bool>(),
    ) {
        let q = "How many things are there?";
        let prompt = if list {
            prompts::answer_list_prompt(q, &points)
        } else {
            prompts::answer_free_prompt(q, &points)
        };
        let (pq, pp, pl) = prompts::parse_answer_prompt(&prompt).unwrap();
        prop_assert_eq!(pq, q);
        prop_assert_eq!(pp, points);
        prop_assert_eq!(pl, list);
    }

    /// Token counting is monotone under concatenation and zero only for
    /// empty-ish text.
    #[test]
    fn token_count_monotone(a in "\\PC{0,80}", b in "\\PC{0,80}") {
        let joined = format!("{a} {b}");
        prop_assert!(count_tokens(&joined) >= count_tokens(&a));
        prop_assert!(count_tokens(&joined) >= count_tokens(&b));
    }

    /// Cost is monotone in both prompt and completion tokens.
    #[test]
    fn cost_monotone(p in 1usize..5000, c in 1usize..500) {
        let m = CostModel::default();
        let base = m.round_seconds(&[(p, c)]);
        prop_assert!(m.round_seconds(&[(p + 100, c)]) >= base);
        prop_assert!(m.round_seconds(&[(p, c + 10)]) >= base);
    }

    /// The simulated LM is deterministic: identical prompts, identical
    /// outputs, on any prompt.
    #[test]
    fn sim_lm_is_deterministic(s in "\\PC{1,200}") {
        let a = SimLm::new(SimConfig::default());
        let b = SimLm::new(SimConfig::default());
        let ra = a.generate(&LmRequest::new(s.clone()));
        let rb = b.generate(&LmRequest::new(s));
        match (ra, rb) {
            (Ok(x), Ok(y)) => prop_assert_eq!(x.text, y.text),
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            other => prop_assert!(false, "divergent results: {:?}", other),
        }
    }

    /// The LM never panics on arbitrary prompts.
    #[test]
    fn sim_lm_never_panics(s in "\\PC{0,500}") {
        let lm = SimLm::new(SimConfig::default());
        let _ = lm.generate(&LmRequest::new(s));
    }
}
