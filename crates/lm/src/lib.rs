//! # tag-lm — simulated language model substrate
//!
//! Stands in for Llama-3.1-70B-Instruct (served by vLLM on 8×A100) in the
//! reproduction of *"Text2SQL is Not Enough: Unifying AI and Databases
//! with TAG"* (CIDR 2025). The substitution is documented in DESIGN.md;
//! in short, the paper's findings are structural, and this crate
//! reproduces the structures:
//!
//! - a [`model::LanguageModel`] trait with **batch-first** inference and a
//!   deterministic **cost model** ([`cost`]) so execution time is
//!   measurable and reproducible;
//! - imperfect **world knowledge** ([`knowledge`]) with per-fact recall;
//! - lexicon-based **semantic reasoning** ([`lexicon`]) with borderline
//!   judgment noise;
//! - a long-context **attention model** that loses in-context items as
//!   prompts grow (the single-call generation failure mode);
//! - a **Text2SQL skill** ([`text2sql`]) that translates relational
//!   clauses faithfully, inlines knowledge clauses from imperfect memory,
//!   and drops or mangles reasoning clauses;
//! - the **prompt protocols** ([`prompts`]) used by all TAG methods, and
//!   the canonical **question templates** ([`nlq`]).

#![warn(missing_docs)]

pub mod cost;
pub mod knowledge;
pub mod lexicon;
pub mod model;
pub mod nlq;
pub mod prompts;
pub mod sim;
pub mod summarize;
pub mod text2sql;
pub mod tokenizer;

pub use cost::{CostModel, VirtualClock};
pub use knowledge::{KnowledgeBase, KnowledgeConfig};
pub use model::{LanguageModel, LmError, LmRequest, LmResponse, LmResult};
pub use nlq::{CmpOp, NlFilter, NlQuery, SemProperty};
pub use sim::{SimConfig, SimLm};
