//! Approximate token counting.
//!
//! The cost model and context-window checks need token counts, not exact
//! BPE ids. We approximate with a word-piece heuristic calibrated to
//! Llama-style tokenizers: one token per ~4 characters of prose, with
//! punctuation and numbers counted individually.

/// Approximate the number of tokens in `text`.
///
/// Heuristic: each whitespace-separated word contributes
/// `ceil(len / 4)` tokens (sub-word splitting), and standalone
/// punctuation contributes one token each.
pub fn count_tokens(text: &str) -> usize {
    let mut tokens = 0usize;
    for word in text.split_whitespace() {
        let alnum: usize = word.chars().filter(|c| c.is_alphanumeric()).count();
        let punct = word.chars().count() - alnum;
        tokens += alnum.div_ceil(4).max(usize::from(alnum > 0)) + punct;
    }
    tokens
}

/// Truncate text to approximately `max_tokens` tokens, keeping whole
/// words. Returns the truncated text and whether truncation occurred.
pub fn truncate_to_tokens(text: &str, max_tokens: usize) -> (String, bool) {
    let mut used = 0usize;
    let mut end_byte = 0usize;
    let mut truncated = false;
    for word in text.split_inclusive(char::is_whitespace) {
        let t = count_tokens(word);
        if used + t > max_tokens {
            truncated = true;
            break;
        }
        used += t;
        end_byte += word.len();
    }
    (text[..end_byte].to_owned(), truncated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_whitespace() {
        assert_eq!(count_tokens(""), 0);
        assert_eq!(count_tokens("   \n\t "), 0);
    }

    #[test]
    fn words_split_into_subwords() {
        assert_eq!(count_tokens("hi"), 1);
        assert_eq!(count_tokens("hello"), 2); // 5 chars -> 2 tokens
        assert_eq!(count_tokens("internationalization"), 5); // 20 chars
    }

    #[test]
    fn punctuation_counts() {
        assert!(count_tokens("a, b, c") >= 5);
        assert_eq!(count_tokens("..."), 3);
    }

    #[test]
    fn scales_roughly_linearly() {
        let short = count_tokens("the quick brown fox");
        let long = count_tokens(&"the quick brown fox ".repeat(10));
        assert!(long >= short * 9 && long <= short * 11);
    }

    #[test]
    fn truncation() {
        let text = "alpha beta gamma delta epsilon";
        let (t, was) = truncate_to_tokens(text, 4);
        assert!(was);
        assert!(t.split_whitespace().count() < 5);
        let (t, was) = truncate_to_tokens(text, 1000);
        assert!(!was);
        assert_eq!(t, text);
    }
}
