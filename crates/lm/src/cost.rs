//! Inference cost model and virtual clock.
//!
//! The paper reports per-query execution time on 8×A100 GPUs serving
//! Llama-3.1-70B via vLLM. We reproduce the *shape* of those numbers
//! with a deterministic cost model: per-round scheduling overhead, a
//! prefill rate, a decode rate, and a batching model in which a round's
//! decode time is driven by the longest completion while prefill
//! throughput scales with batch parallelism.

use parking_lot::Mutex;

/// Cost parameters, calibrated so single calls with BIRD-sized prompts
/// land in the paper's 2–12 s range.
#[derive(Debug, Clone)]
pub struct CostModel {
    /// Fixed scheduling/queueing overhead per inference round (s).
    pub round_overhead_s: f64,
    /// Prefill throughput for a single sequence (tokens/s).
    pub prefill_tokens_per_s: f64,
    /// Decode throughput for a single sequence (tokens/s).
    pub decode_tokens_per_s: f64,
    /// Parallel efficiency of batching: effective throughput multiplier
    /// is `batch^efficiency` (1.0 = perfectly parallel, 0.0 = serial).
    pub batch_efficiency: f64,
    /// Maximum sequences per inference round (vLLM max batch size).
    pub max_batch: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibration targets (paper §4.3): a ~2.5k-token Text2SQL prompt
        // + ~60-token completion ≈ 4–6 s; a 10-row RAG generation ≈ 3 s;
        // batched semantic-operator rounds amortize to ≈ 2–3 s.
        CostModel {
            round_overhead_s: 0.6,
            prefill_tokens_per_s: 900.0,
            decode_tokens_per_s: 60.0,
            batch_efficiency: 0.82,
            max_batch: 64,
        }
    }
}

impl CostModel {
    /// Simulated wall-clock seconds for one inference round over
    /// sequences with the given (prompt_tokens, completion_tokens).
    pub fn round_seconds(&self, sequences: &[(usize, usize)]) -> f64 {
        if sequences.is_empty() {
            return 0.0;
        }
        let mut total = 0.0;
        for chunk in sequences.chunks(self.max_batch.max(1)) {
            let batch = chunk.len() as f64;
            let speedup = batch.powf(self.batch_efficiency);
            let prefill_tokens: usize = chunk.iter().map(|(p, _)| *p).sum();
            let prefill_s = prefill_tokens as f64 / (self.prefill_tokens_per_s * speedup);
            // Decode is bound by the longest completion in the round;
            // batching keeps per-step cost roughly constant.
            let max_completion = chunk.iter().map(|(_, c)| *c).max().unwrap_or(0);
            let decode_s = max_completion as f64 / self.decode_tokens_per_s;
            total += self.round_overhead_s + prefill_s + decode_s;
        }
        total
    }
}

/// A deterministic accumulator of simulated seconds.
#[derive(Debug, Default)]
pub struct VirtualClock {
    inner: Mutex<ClockState>,
}

#[derive(Debug, Default, Clone, Copy)]
struct ClockState {
    seconds: f64,
    batches: u64,
    calls: u64,
}

impl VirtualClock {
    /// A clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one inference round of `calls` prompts costing `seconds`.
    pub fn record_round(&self, seconds: f64, calls: u64) {
        let mut s = self.inner.lock();
        s.seconds += seconds;
        s.batches += 1;
        s.calls += calls;
    }

    /// Add raw seconds (e.g. simulated retrieval latency).
    pub fn add_seconds(&self, seconds: f64) {
        self.inner.lock().seconds += seconds;
    }

    /// Accumulated simulated seconds.
    pub fn seconds(&self) -> f64 {
        self.inner.lock().seconds
    }

    /// Rounds recorded.
    pub fn batches(&self) -> u64 {
        self.inner.lock().batches
    }

    /// Prompts recorded.
    pub fn calls(&self) -> u64 {
        self.inner.lock().calls
    }

    /// Atomic `(seconds, batches, calls)` snapshot under one lock.
    /// Tracing deltas two snapshots around an operation; separate
    /// `seconds()`/`batches()`/`calls()` reads could tear between a
    /// concurrent `record_round`.
    pub fn snapshot(&self) -> (f64, u64, u64) {
        let s = self.inner.lock();
        (s.seconds, s.batches, s.calls)
    }

    /// Zero everything.
    pub fn reset(&self) {
        *self.inner.lock() = ClockState::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_call_in_paper_range() {
        let m = CostModel::default();
        // Text2SQL-style prompt: ~2500 prompt tokens, ~60 completion.
        let s = m.round_seconds(&[(2500, 60)]);
        assert!((2.0..8.0).contains(&s), "got {s}");
    }

    #[test]
    fn batching_beats_serial() {
        let m = CostModel::default();
        let seqs: Vec<(usize, usize)> = (0..32).map(|_| (120, 8)).collect();
        let batched = m.round_seconds(&seqs);
        let serial: f64 = seqs.iter().map(|s| m.round_seconds(&[*s])).sum();
        assert!(batched < serial / 3.0, "batched={batched} serial={serial}");
    }

    #[test]
    fn cost_is_monotone_in_tokens() {
        let m = CostModel::default();
        let small = m.round_seconds(&[(100, 10)]);
        let bigger_prompt = m.round_seconds(&[(1000, 10)]);
        let bigger_completion = m.round_seconds(&[(100, 100)]);
        assert!(bigger_prompt > small);
        assert!(bigger_completion > small);
    }

    #[test]
    fn empty_round_is_free() {
        assert_eq!(CostModel::default().round_seconds(&[]), 0.0);
    }

    #[test]
    fn oversized_batch_splits_into_rounds() {
        let m = CostModel {
            max_batch: 8,
            ..CostModel::default()
        };
        let seqs: Vec<(usize, usize)> = (0..16).map(|_| (100, 10)).collect();
        let two_rounds = m.round_seconds(&seqs);
        let one_round = m.round_seconds(&seqs[..8]);
        assert!(two_rounds > one_round * 1.9);
    }

    #[test]
    fn clock_accumulates_and_resets() {
        let c = VirtualClock::new();
        c.record_round(1.5, 4);
        c.record_round(0.5, 1);
        c.add_seconds(0.25);
        assert!((c.seconds() - 2.25).abs() < 1e-12);
        assert_eq!(c.batches(), 2);
        assert_eq!(c.calls(), 5);
        c.reset();
        assert_eq!(c.seconds(), 0.0);
        assert_eq!(c.calls(), 0);
    }
}
