//! Prompt protocols.
//!
//! Every interaction with the LM goes through plain-text prompts, exactly
//! as in the paper (Appendix B). This module centralizes the prompt
//! *builders* used by the TAG methods and semantic operators, and the
//! corresponding *parsers* used by the simulated LM's router. Keeping
//! both sides in one file makes the protocol auditable and testable.

use crate::nlq::SemProperty;

/// A row rendered for the LM: ordered `(column, value)` pairs.
pub type DataPoint = Vec<(String, String)>;

/// Serialize one data point in the paper's "- col: val" format.
pub fn render_data_point(index: usize, point: &DataPoint) -> String {
    let mut s = format!("Data Point {}:\n", index + 1);
    for (col, val) in point {
        s.push_str(&format!("- {col}: {val}\n"));
    }
    s
}

/// Appendix B.2, list-answer variant (match-based / comparison / ranking).
pub fn answer_list_prompt(question: &str, points: &[DataPoint]) -> String {
    let mut s = String::from(
        "You will be given a list of data points and a question. Use the data points \
         to answer the question. Your answer must be a list of values that is \
         evaluatable in Python. Respond in the format [value1, value2, ..., valueN]. \
         If you are unable to answer the question, respond with []. Respond with only \
         the list of values and nothing else. If a value is a string, it must be \
         enclosed in double quotes.\n\n",
    );
    for (i, p) in points.iter().enumerate() {
        s.push_str(&render_data_point(i, p));
        s.push('\n');
    }
    s.push_str(&format!("Question: {question}\n"));
    s
}

/// Appendix B.2, free-form variant (aggregation queries).
pub fn answer_free_prompt(question: &str, points: &[DataPoint]) -> String {
    let mut s = String::from(
        "You will be given a list of data points and a question. Use the data points \
         to answer the question. If a value is a string, it must be enclosed in \
         double quotes.\n\n",
    );
    for (i, p) in points.iter().enumerate() {
        s.push_str(&render_data_point(i, p));
        s.push('\n');
    }
    s.push_str(&format!("Question: {question}\n"));
    s
}

/// Appendix B.1: BIRD-style Text2SQL prompt over CREATE TABLE schemas.
/// `retrieval_only` asks for relevant *rows* rather than a direct answer
/// (the Text2SQL + LM baseline).
pub fn text2sql_prompt(schemas: &str, question: &str, retrieval_only: bool) -> String {
    let task = if retrieval_only {
        "-- Using valid SQLite, write a query that retrieves the rows relevant to \
         the following question for the tables provided above"
    } else {
        "-- Using valid SQLite and understanding External Knowledge, answer the \
         following questions for the tables provided above"
    };
    format!("{schemas}\n-- External Knowledge: None\n{task}\n-- {question}\nSELECT")
}

/// A boolean semantic claim about one value (LM UDF / `sem_filter`).
#[derive(Debug, Clone, PartialEq)]
pub enum SemClaim {
    /// The value is a city in the given region.
    CityInRegion {
        /// Region name.
        region: String,
    },
    /// The value is a film considered a classic.
    ClassicMovie,
    /// The value is an EU member country.
    EuCountry,
    /// The value is a country on the given continent.
    CountryInContinent {
        /// Continent name.
        continent: String,
    },
    /// The value is an F1 circuit located on the given continent.
    CircuitInContinent {
        /// Continent name.
        continent: String,
    },
    /// The value is a company in the given business vertical.
    CompanyInVertical {
        /// Vertical name.
        vertical: String,
    },
    /// The value (a height in cm) is greater than the person's height.
    HeightTallerThan {
        /// The person to compare against.
        person: String,
    },
    /// The value (text) exhibits the given semantic property.
    Property(SemProperty),
}

impl SemClaim {
    fn phrase(&self) -> String {
        match self {
            SemClaim::CityInRegion { region } => {
                format!("a city located in the {region} region")
            }
            SemClaim::ClassicMovie => "a film considered a classic".to_owned(),
            SemClaim::EuCountry => "a country in the European Union".to_owned(),
            SemClaim::CountryInContinent { continent } => {
                format!("a country in {continent}")
            }
            SemClaim::CircuitInContinent { continent } => {
                format!("a racing circuit located in {continent}")
            }
            SemClaim::CompanyInVertical { vertical } => {
                format!("a company in the {vertical} vertical")
            }
            SemClaim::HeightTallerThan { person } => {
                format!("a height in cm greater than the height of {person}")
            }
            SemClaim::Property(p) => format!(
                "text that reads as {}",
                match p {
                    SemProperty::Positive => "positive",
                    SemProperty::Negative => "negative",
                    SemProperty::Sarcastic => "sarcastic",
                    SemProperty::Technical => "technical",
                }
            ),
        }
    }

    fn from_phrase(phrase: &str) -> Option<SemClaim> {
        if let Some(rest) = phrase.strip_prefix("a city located in the ") {
            return Some(SemClaim::CityInRegion {
                region: rest.strip_suffix(" region")?.to_owned(),
            });
        }
        if phrase == "a film considered a classic" {
            return Some(SemClaim::ClassicMovie);
        }
        if phrase == "a country in the European Union" {
            return Some(SemClaim::EuCountry);
        }
        if let Some(rest) = phrase.strip_prefix("a company in the ") {
            return Some(SemClaim::CompanyInVertical {
                vertical: rest.strip_suffix(" vertical")?.to_owned(),
            });
        }
        if let Some(rest) = phrase.strip_prefix("a height in cm greater than the height of ") {
            return Some(SemClaim::HeightTallerThan {
                person: rest.to_owned(),
            });
        }
        if let Some(rest) = phrase.strip_prefix("a racing circuit located in ") {
            return Some(SemClaim::CircuitInContinent {
                continent: rest.to_owned(),
            });
        }
        if let Some(rest) = phrase.strip_prefix("a country in ") {
            return Some(SemClaim::CountryInContinent {
                continent: rest.to_owned(),
            });
        }
        if let Some(rest) = phrase.strip_prefix("text that reads as ") {
            let p = match rest {
                "positive" => SemProperty::Positive,
                "negative" => SemProperty::Negative,
                "sarcastic" => SemProperty::Sarcastic,
                "technical" => SemProperty::Technical,
                _ => return None,
            };
            return Some(SemClaim::Property(p));
        }
        None
    }
}

/// Build a boolean filter prompt over one value.
pub fn sem_filter_prompt(claim: &SemClaim, value: &str) -> String {
    format!(
        "Decide whether the claim is true.\nItem: {value}\nClaim: the item is {}.\n\
         Answer TRUE or FALSE and nothing else.",
        claim.phrase()
    )
}

/// Parse a filter prompt back into `(claim, value)`.
pub fn parse_sem_filter_prompt(prompt: &str) -> Option<(SemClaim, String)> {
    let rest = prompt.strip_prefix("Decide whether the claim is true.\nItem: ")?;
    let (value, rest) = rest.split_once("\nClaim: the item is ")?;
    let phrase = rest.strip_suffix(".\nAnswer TRUE or FALSE and nothing else.")?;
    Some((SemClaim::from_phrase(phrase)?, value.to_owned()))
}

/// Build a pairwise comparison prompt (`sem_topk`).
pub fn sem_compare_prompt(property: SemProperty, a: &str, b: &str) -> String {
    let word = match property {
        SemProperty::Positive => "positive",
        SemProperty::Negative => "negative",
        SemProperty::Sarcastic => "sarcastic",
        SemProperty::Technical => "technical",
    };
    format!(
        "Which of the two items is more {word}?\nItem A: {a}\nItem B: {b}\n\
         Answer A or B and nothing else."
    )
}

/// Parse a comparison prompt back into `(property, a, b)`.
pub fn parse_sem_compare_prompt(prompt: &str) -> Option<(SemProperty, String, String)> {
    let rest = prompt.strip_prefix("Which of the two items is more ")?;
    let (word, rest) = rest.split_once("?\nItem A: ")?;
    let property = match word {
        "positive" => SemProperty::Positive,
        "negative" => SemProperty::Negative,
        "sarcastic" => SemProperty::Sarcastic,
        "technical" => SemProperty::Technical,
        _ => return None,
    };
    let (a, rest) = rest.split_once("\nItem B: ")?;
    let b = rest.strip_suffix("\nAnswer A or B and nothing else.")?;
    Some((property, a.to_owned(), b.to_owned()))
}

/// Build a 0–1 relevance scoring prompt (Retrieval + LM Rank, as in
/// STaRK-style rerankers).
pub fn relevance_prompt(question: &str, point_text: &str) -> String {
    format!(
        "Rate how relevant the data point is to the question on a scale from 0 to 1.\n\
         Question: {question}\nData point: {point_text}\n\
         Answer with a single number between 0 and 1 and nothing else."
    )
}

/// Parse a relevance prompt back into `(question, data point)`.
pub fn parse_relevance_prompt(prompt: &str) -> Option<(String, String)> {
    let rest = prompt.strip_prefix(
        "Rate how relevant the data point is to the question on a scale from 0 to 1.\nQuestion: ",
    )?;
    let (q, rest) = rest.split_once("\nData point: ")?;
    let d = rest.strip_suffix("\nAnswer with a single number between 0 and 1 and nothing else.")?;
    Some((q.to_owned(), d.to_owned()))
}

/// Build a per-row transformation prompt (`sem_map`).
pub fn sem_map_prompt(instruction: &str, value: &str) -> String {
    format!(
        "Apply the instruction to the item.\nInstruction: {instruction}\nItem: {value}\n\
         Answer with the result and nothing else."
    )
}

/// Parse a transformation prompt back into `(instruction, value)`.
pub fn parse_sem_map_prompt(prompt: &str) -> Option<(String, String)> {
    let rest = prompt.strip_prefix("Apply the instruction to the item.\nInstruction: ")?;
    let (instruction, rest) = rest.split_once("\nItem: ")?;
    let value = rest.strip_suffix("\nAnswer with the result and nothing else.")?;
    Some((instruction.to_owned(), value.to_owned()))
}

/// Build a summarization prompt over items (`sem_agg`).
pub fn sem_agg_prompt(instruction: &str, items: &[String]) -> String {
    let mut s = format!("{instruction}\n");
    for item in items {
        s.push_str(&format!("Item: {item}\n"));
    }
    s.push_str("Write a concise summary covering every item.");
    s
}

/// Parse a summarization prompt back into `(instruction, items)`.
pub fn parse_sem_agg_prompt(prompt: &str) -> Option<(String, Vec<String>)> {
    let body = prompt.strip_suffix("Write a concise summary covering every item.")?;
    let mut lines = body.lines();
    let instruction = lines.next()?.to_owned();
    let mut items = Vec::new();
    let mut current: Option<String> = None;
    for line in lines {
        if let Some(rest) = line.strip_prefix("Item: ") {
            if let Some(c) = current.take() {
                items.push(c);
            }
            current = Some(rest.to_owned());
        } else if let Some(c) = &mut current {
            // multi-line item
            c.push('\n');
            c.push_str(line);
        }
    }
    if let Some(c) = current.take() {
        let trimmed = c.trim_end().to_owned();
        if !trimmed.is_empty() {
            items.push(trimmed);
        }
    }
    Some((instruction, items))
}

/// Parse the shared body of the answer-generation prompts into
/// `(question, data points)`, plus whether the list format was requested.
pub fn parse_answer_prompt(prompt: &str) -> Option<(String, Vec<DataPoint>, bool)> {
    let list_format = prompt.contains("Respond in the format [value1");
    if !prompt.starts_with("You will be given a list of data points and a question.") {
        return None;
    }
    let q_idx = prompt.rfind("Question: ")?;
    let question = prompt[q_idx + "Question: ".len()..].trim().to_owned();
    let body = &prompt[..q_idx];
    let mut points: Vec<DataPoint> = Vec::new();
    let mut current: Option<DataPoint> = None;
    for line in body.lines() {
        if line.starts_with("Data Point ") && line.ends_with(':') {
            if let Some(p) = current.take() {
                points.push(p);
            }
            current = Some(Vec::new());
        } else if let Some(rest) = line.strip_prefix("- ") {
            if let Some(p) = &mut current {
                if let Some((col, val)) = rest.split_once(": ") {
                    p.push((col.to_owned(), val.to_owned()));
                } else if let Some(col) = rest.strip_suffix(':') {
                    p.push((col.to_owned(), String::new()));
                }
            }
        }
    }
    if let Some(p) = current.take() {
        points.push(p);
    }
    Some((question, points, list_format))
}

/// Render an answer list the way the paper's prompt demands:
/// `[value1, value2, ...]`, strings double-quoted.
pub fn render_answer_list(values: &[String]) -> String {
    let parts: Vec<String> = values
        .iter()
        .map(|v| {
            if v.parse::<f64>().is_ok() {
                v.clone()
            } else {
                format!("\"{}\"", v.replace('"', "\\\""))
            }
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

/// Parse a `[...]` answer list back into raw values.
pub fn parse_answer_list(text: &str) -> Option<Vec<String>> {
    let t = text.trim();
    let inner = t.strip_prefix('[')?.strip_suffix(']')?;
    if inner.trim().is_empty() {
        return Some(Vec::new());
    }
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in inner.chars() {
        if escaped {
            current.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                out.push(std::mem::take(&mut current).trim().to_owned());
            }
            other => current.push(other),
        }
    }
    out.push(current.trim().to_owned());
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point() -> DataPoint {
        vec![
            ("School".to_owned(), "Gunn High".to_owned()),
            ("AvgScrMath".to_owned(), "605".to_owned()),
        ]
    }

    #[test]
    fn answer_prompt_round_trip() {
        let points = vec![point(), point()];
        let prompt = answer_list_prompt("How many schools are there?", &points);
        let (q, parsed, list) = parse_answer_prompt(&prompt).unwrap();
        assert_eq!(q, "How many schools are there?");
        assert_eq!(parsed, points);
        assert!(list);

        let prompt = answer_free_prompt("Summarize.", &points);
        let (_, parsed, list) = parse_answer_prompt(&prompt).unwrap();
        assert_eq!(parsed.len(), 2);
        assert!(!list);
    }

    #[test]
    fn sem_filter_round_trip() {
        for claim in [
            SemClaim::CityInRegion {
                region: "Silicon Valley".into(),
            },
            SemClaim::ClassicMovie,
            SemClaim::EuCountry,
            SemClaim::CountryInContinent {
                continent: "Asia".into(),
            },
            SemClaim::CircuitInContinent {
                continent: "Asia".into(),
            },
            SemClaim::CompanyInVertical {
                vertical: "retail".into(),
            },
            SemClaim::HeightTallerThan {
                person: "Stephen Curry".into(),
            },
            SemClaim::Property(SemProperty::Sarcastic),
        ] {
            let p = sem_filter_prompt(&claim, "Some Value");
            let (parsed, value) =
                parse_sem_filter_prompt(&p).unwrap_or_else(|| panic!("failed on {p}"));
            assert_eq!(parsed, claim);
            assert_eq!(value, "Some Value");
        }
    }

    #[test]
    fn compare_round_trip() {
        let p = sem_compare_prompt(SemProperty::Technical, "title A", "title B");
        let (prop, a, b) = parse_sem_compare_prompt(&p).unwrap();
        assert_eq!(prop, SemProperty::Technical);
        assert_eq!(a, "title A");
        assert_eq!(b, "title B");
    }

    #[test]
    fn relevance_round_trip() {
        let p = relevance_prompt("what is x?", "- a: 1");
        let (q, d) = parse_relevance_prompt(&p).unwrap();
        assert_eq!(q, "what is x?");
        assert_eq!(d, "- a: 1");
    }

    #[test]
    fn map_round_trip() {
        let p = sem_map_prompt("extract the year", "2004 Malaysian Grand Prix");
        let (i, v) = parse_sem_map_prompt(&p).unwrap();
        assert_eq!(i, "extract the year");
        assert_eq!(v, "2004 Malaysian Grand Prix");
    }

    #[test]
    fn agg_round_trip() {
        let p = sem_agg_prompt(
            "Summarize the comments",
            &["first comment".into(), "second\nwith newline".into()],
        );
        let (inst, items) = parse_sem_agg_prompt(&p).unwrap();
        assert_eq!(inst, "Summarize the comments");
        assert_eq!(items, vec!["first comment", "second\nwith newline"]);
    }

    #[test]
    fn answer_list_round_trip() {
        let vals = vec!["Gunn High".to_owned(), "3".to_owned(), "a, b".to_owned()];
        let rendered = render_answer_list(&vals);
        assert_eq!(rendered, "[\"Gunn High\", 3, \"a, b\"]");
        let parsed = parse_answer_list(&rendered).unwrap();
        assert_eq!(parsed, vec!["Gunn High", "3", "a, b"]);
        assert_eq!(parse_answer_list("[]").unwrap(), Vec::<String>::new());
        assert!(parse_answer_list("nope").is_none());
    }

    #[test]
    fn text2sql_prompt_shape() {
        let p = text2sql_prompt("CREATE TABLE t (a TEXT)", "How many t are there?", false);
        assert!(p.starts_with("CREATE TABLE"));
        assert!(p.ends_with("SELECT"));
        assert!(p.contains("-- How many t are there?"));
    }
}
