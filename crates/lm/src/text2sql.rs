//! The simulated model's Text2SQL "skill".
//!
//! Given a BIRD-style prompt (CREATE TABLE schemas + a question), the
//! simulated LM synthesizes SQL. Its behaviour reproduces the failure
//! taxonomy the paper measures:
//!
//! - **Relational clauses** translate correctly — Text2SQL is a solved
//!   problem for questions with direct relational equivalents.
//! - **Knowledge clauses** are inlined from the model's *imperfect*
//!   parametric memory (e.g. `City IN (...)` from the recalled subset of
//!   Silicon Valley cities), so answers are sometimes silently wrong.
//! - **Reasoning clauses** have no relational equivalent: the model
//!   either silently drops them or hallucinates a non-existent function,
//!   yielding invalid SQL — the two dominant error modes in §4.3.

use crate::knowledge::KnowledgeBase;
use crate::nlq::{CmpOp, NlFilter, NlQuery, SemProperty};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A table schema extracted from a CREATE TABLE prompt block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromptTable {
    /// Table name.
    pub name: String,
    /// Column names in order.
    pub columns: Vec<String>,
}

/// Extract `CREATE TABLE name (col type, ...)` blocks from prompt text.
/// Tolerates the BIRD prompt's elisions ("...").
pub fn parse_schemas(text: &str) -> Vec<PromptTable> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(idx) = find_ci(rest, "CREATE TABLE") {
        rest = &rest[idx + "CREATE TABLE".len()..];
        let Some(open) = rest.find('(') else { break };
        let name = rest[..open]
            .trim()
            .trim_matches('"')
            .trim_matches('`')
            .to_owned();
        let Some(close) = matching_paren(rest, open) else {
            break;
        };
        let body = &rest[open + 1..close];
        let mut columns = Vec::new();
        for piece in split_top_level(body, ',') {
            let piece = piece.trim();
            if piece.is_empty() || piece == "..." {
                continue;
            }
            let upper = piece.to_ascii_uppercase();
            if upper.starts_with("PRIMARY KEY")
                || upper.starts_with("FOREIGN KEY")
                || upper.starts_with("UNIQUE")
                || upper.starts_with("CONSTRAINT")
            {
                continue;
            }
            // Column name may be quoted and may contain spaces if quoted.
            let col = if let Some(q) = piece.strip_prefix('"') {
                q.split('"').next().unwrap_or_default().to_owned()
            } else if let Some(q) = piece.strip_prefix('`') {
                q.split('`').next().unwrap_or_default().to_owned()
            } else {
                piece
                    .split_whitespace()
                    .next()
                    .unwrap_or_default()
                    .to_owned()
            };
            if !col.is_empty() {
                columns.push(col);
            }
        }
        out.push(PromptTable { name, columns });
        rest = &rest[close..];
    }
    out
}

fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    let h = haystack.to_ascii_uppercase();
    h.find(&needle.to_ascii_uppercase())
}

fn matching_paren(text: &str, open: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    let mut depth = 0usize;
    for (i, b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

fn split_top_level(text: &str, sep: char) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            c if c == sep && depth == 0 => {
                out.push(&text[start..i]);
                start = i + c.len_utf8();
            }
            _ => {}
        }
    }
    out.push(&text[start..]);
    out
}

/// The outcome of attempting to translate one filter clause to SQL.
enum ClauseSql {
    /// A WHERE fragment.
    Where(String),
    /// The clause was silently dropped (no relational equivalent, or the
    /// model recalled nothing useful).
    Dropped,
    /// The model hallucinated invalid SQL.
    Invalid(String),
}

/// Synthesize SQL for a parsed question against the prompt's schemas.
///
/// `retrieval_only` produces a `SELECT *` retrieving candidate rows with
/// only the *relational* clauses applied (the Text2SQL + LM baseline's
/// strategy: fetch the data, let generation handle the rest).
pub fn synthesize_sql(
    query: &NlQuery,
    tables: &[PromptTable],
    kb: &KnowledgeBase,
    retrieval_only: bool,
    seed: u64,
) -> String {
    let table = match resolve_table(query.entity(), tables) {
        Some(t) => t,
        None => {
            // No matching table: the model guesses, producing SQL that
            // will fail at execution.
            return format!("SELECT * FROM {}", query.entity());
        }
    };

    let mut wheres: Vec<String> = Vec::new();
    let mut invalid: Option<String> = None;
    for f in query.filters() {
        let clause = if retrieval_only && !f.is_relational() {
            // Retrieval-only mode defers non-relational clauses to gen.
            ClauseSql::Dropped
        } else {
            filter_to_sql(f, table, kb, seed)
        };
        match clause {
            ClauseSql::Where(w) => wheres.push(w),
            ClauseSql::Dropped => {}
            ClauseSql::Invalid(w) => {
                invalid = Some(w);
            }
        }
    }
    if let Some(w) = invalid {
        wheres.push(w);
    }
    let where_sql = if wheres.is_empty() {
        String::new()
    } else {
        format!(" WHERE {}", wheres.join(" AND "))
    };

    if retrieval_only {
        // Vague aggregation requests ("provide information about ...",
        // "summarize ...") are where Text2SQL retrieval goes wrong in
        // practice: the model abbreviates the entity it filters on and
        // retrieves nothing. Which queries trip it is a stable property
        // of (question, seed).
        if matches!(
            query,
            NlQuery::Summarize { .. } | NlQuery::ProvideInfo { .. }
        ) {
            let mut h = DefaultHasher::new();
            seed.hash(&mut h);
            query.render().hash(&mut h);
            if h.finish() % 10 < 6 {
                let abbreviated: Vec<String> = query
                    .filters()
                    .iter()
                    .filter_map(|f| match f {
                        NlFilter::AtCircuit { circuit } => Some(format!(
                            "Circuit = '{}'",
                            circuit.split_whitespace().next().unwrap_or(circuit)
                        )),
                        NlFilter::TextEq { attr, value } => {
                            let short: Vec<&str> = value.split_whitespace().take(3).collect();
                            Some(format!(
                                "{} = '{}'",
                                quote_attr(attr, table),
                                short.join(" ").replace('\'', "''")
                            ))
                        }
                        _ => None,
                    })
                    .collect();
                if !abbreviated.is_empty() {
                    return format!(
                        "SELECT * FROM {} WHERE {} LIMIT 500",
                        table.name,
                        abbreviated.join(" AND ")
                    );
                }
            }
        }
        // Keep the retrieved set small enough to have a chance to fit in
        // context, but large enough to (often) cover the answer.
        return format!("SELECT * FROM {}{} LIMIT 500", table.name, where_sql);
    }

    match query {
        NlQuery::Superlative {
            select_attr,
            rank_attr,
            highest,
            ..
        } => {
            let dir = if *highest { "DESC" } else { "ASC" };
            format!(
                "SELECT {} FROM {}{} ORDER BY {} {} LIMIT 1",
                quote_attr(select_attr, table),
                table.name,
                where_sql,
                quote_attr(rank_attr, table),
                dir
            )
        }
        NlQuery::Count { .. } => {
            format!("SELECT COUNT(*) FROM {}{}", table.name, where_sql)
        }
        NlQuery::List { select_attr, .. } => format!(
            "SELECT {} FROM {}{}",
            quote_attr(select_attr, table),
            table.name,
            where_sql
        ),
        NlQuery::TopK {
            select_attr,
            rank_attr,
            k,
            highest,
            ..
        } => {
            let dir = if *highest { "DESC" } else { "ASC" };
            format!(
                "SELECT {} FROM {}{} ORDER BY {} {} LIMIT {}",
                quote_attr(select_attr, table),
                table.name,
                where_sql,
                quote_attr(rank_attr, table),
                dir,
                k
            )
        }
        NlQuery::SemanticRank {
            select_attr,
            rank_attr,
            k,
            ..
        } => {
            // The semantic reordering has no SQL equivalent; the model
            // returns the pre-cut in attribute order — usually close but
            // not exactly the asked-for order (paper: ranking is the
            // hardest type for Text2SQL).
            format!(
                "SELECT {} FROM {} ORDER BY {} DESC LIMIT {}",
                quote_attr(select_attr, table),
                table.name,
                quote_attr(rank_attr, table),
                k
            )
        }
        NlQuery::Summarize { .. } | NlQuery::ProvideInfo { .. } => {
            format!("SELECT * FROM {}{}", table.name, where_sql)
        }
    }
}

fn resolve_table<'a>(entity: &str, tables: &'a [PromptTable]) -> Option<&'a PromptTable> {
    tables
        .iter()
        .find(|t| t.name.eq_ignore_ascii_case(entity))
        .or_else(|| {
            // singular/plural mismatch tolerance
            tables.iter().find(|t| {
                let a = t.name.to_ascii_lowercase();
                let b = entity.to_ascii_lowercase();
                a.trim_end_matches('s') == b.trim_end_matches('s')
            })
        })
}

fn quote_attr(attr: &str, table: &PromptTable) -> String {
    // Use the schema's exact casing when the column exists.
    let resolved = table
        .columns
        .iter()
        .find(|c| c.eq_ignore_ascii_case(attr))
        .map(|c| c.as_str())
        .unwrap_or(attr);
    if resolved.contains(' ') {
        format!("\"{resolved}\"")
    } else {
        resolved.to_owned()
    }
}

fn find_column<'a>(table: &'a PromptTable, candidates: &[&str]) -> Option<&'a str> {
    for cand in candidates {
        if let Some(c) = table.columns.iter().find(|c| c.eq_ignore_ascii_case(cand)) {
            return Some(c);
        }
    }
    None
}

fn sql_in_list(column: &str, values: &[&str]) -> String {
    let quoted: Vec<String> = values
        .iter()
        .map(|v| format!("'{}'", v.replace('\'', "''")))
        .collect();
    format!("{column} IN ({})", quoted.join(", "))
}

fn filter_to_sql(f: &NlFilter, table: &PromptTable, kb: &KnowledgeBase, seed: u64) -> ClauseSql {
    match f {
        NlFilter::NumCmp { attr, op, value } => {
            let dir = match op {
                CmpOp::Over => ">",
                CmpOp::Under => "<",
            };
            ClauseSql::Where(format!("{} {dir} {value}", quote_attr(attr, table)))
        }
        NlFilter::TextEq { attr, value } => ClauseSql::Where(format!(
            "{} = '{}'",
            quote_attr(attr, table),
            value.replace('\'', "''")
        )),
        NlFilter::AtCircuit { circuit } => {
            let col =
                find_column(table, &["Circuit", "circuit", "CircuitName"]).unwrap_or("Circuit");
            ClauseSql::Where(format!("{col} = '{}'", circuit.replace('\'', "''")))
        }
        NlFilter::InRegion { region } => {
            let cities = kb.recalled_cities_in_region(region);
            if cities.is_empty() {
                return ClauseSql::Dropped;
            }
            let col = find_column(table, &["City", "city"]).unwrap_or("City");
            ClauseSql::Where(sql_in_list(col, &cities))
        }
        NlFilter::TallerThan { person } => match kb.person_height_cm(person) {
            Some(h) => {
                let col = find_column(table, &["height", "Height"]).unwrap_or("height");
                ClauseSql::Where(format!("{col} > {h}"))
            }
            None => ClauseSql::Dropped,
        },
        NlFilter::EuCountry => {
            let members = kb.recalled_eu_members();
            if members.is_empty() {
                return ClauseSql::Dropped;
            }
            let col = find_column(table, &["Country", "country"]).unwrap_or("Country");
            ClauseSql::Where(sql_in_list(col, &members))
        }
        NlFilter::CircuitContinent { continent } => {
            let circuits = kb.recalled_circuits_in_continent(continent);
            if circuits.is_empty() {
                return ClauseSql::Dropped;
            }
            let col = find_column(table, &["Circuit", "circuit"]).unwrap_or("Circuit");
            ClauseSql::Where(sql_in_list(col, &circuits))
        }
        NlFilter::ClassicMovie => {
            let classics = kb.recalled_classics();
            if classics.is_empty() {
                return ClauseSql::Dropped;
            }
            let col = find_column(table, &["movie_title", "title", "Title"]).unwrap_or("title");
            ClauseSql::Where(sql_in_list(col, &classics))
        }
        NlFilter::VerticalIs { vertical } => {
            let companies = kb.recalled_companies_in_vertical(vertical);
            if companies.is_empty() {
                return ClauseSql::Dropped;
            }
            let col = find_column(table, &["account_name", "Company", "company"])
                .unwrap_or("account_name");
            ClauseSql::Where(sql_in_list(col, &companies))
        }
        NlFilter::Semantic { attr, property } => {
            // No relational equivalent. The model either silently drops
            // the clause or hallucinates a function; which one is a
            // stable property of the (question, seed) pair.
            let mut h = DefaultHasher::new();
            seed.hash(&mut h);
            attr.hash(&mut h);
            (*property as u8).hash(&mut h);
            if h.finish() % 10 < 7 {
                ClauseSql::Dropped
            } else {
                let func = match property {
                    SemProperty::Positive => "IS_POSITIVE",
                    SemProperty::Negative => "IS_NEGATIVE",
                    SemProperty::Sarcastic => "IS_SARCASTIC",
                    SemProperty::Technical => "IS_TECHNICAL",
                };
                ClauseSql::Invalid(format!("{func}({})", quote_attr(attr, table)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::KnowledgeConfig;

    fn kb() -> KnowledgeBase {
        KnowledgeBase::new(KnowledgeConfig {
            coverage: 1.0,
            enumeration_coverage: 1.0,
            seed: 7,
        })
    }

    fn schools() -> Vec<PromptTable> {
        vec![PromptTable {
            name: "schools".into(),
            columns: vec![
                "CDSCode".into(),
                "School".into(),
                "City".into(),
                "Longitude".into(),
                "GSoffered".into(),
            ],
        }]
    }

    #[test]
    fn parse_bird_style_schema() {
        let text = "CREATE TABLE frpm\n(\nCDSCode TEXT not null primary key,\n\
                    \"Academic Year\" TEXT null,\n...\n)\n\nCREATE TABLE satscores\n(\n\
                    AvgScrRead INTEGER null,\nAvgScrMath INTEGER null\n)";
        let tables = parse_schemas(text);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].name, "frpm");
        assert_eq!(tables[0].columns, vec!["CDSCode", "Academic Year"]);
        assert_eq!(tables[1].columns.len(), 2);
    }

    #[test]
    fn relational_count() {
        let q = NlQuery::Count {
            entity: "schools".into(),
            filters: vec![NlFilter::NumCmp {
                attr: "Longitude".into(),
                op: CmpOp::Over,
                value: -120.0,
            }],
        };
        let sql = synthesize_sql(&q, &schools(), &kb(), false, 1);
        assert_eq!(sql, "SELECT COUNT(*) FROM schools WHERE Longitude > -120");
    }

    #[test]
    fn knowledge_clause_inlined_from_memory() {
        let q = NlQuery::Superlative {
            entity: "schools".into(),
            select_attr: "GSoffered".into(),
            rank_attr: "Longitude".into(),
            highest: true,
            filters: vec![NlFilter::InRegion {
                region: "Silicon Valley".into(),
            }],
        };
        let sql = synthesize_sql(&q, &schools(), &kb(), false, 1);
        assert!(sql.contains("City IN ("), "{sql}");
        assert!(sql.contains("'Palo Alto'"), "{sql}");
        assert!(sql.ends_with("ORDER BY Longitude DESC LIMIT 1"), "{sql}");
    }

    #[test]
    fn partial_recall_inlines_fewer_cities() {
        let weak = KnowledgeBase::new(KnowledgeConfig {
            coverage: 0.4,
            enumeration_coverage: 0.4,
            seed: 3,
        });
        let q = NlQuery::List {
            entity: "schools".into(),
            select_attr: "School".into(),
            filters: vec![NlFilter::InRegion {
                region: "Bay Area".into(),
            }],
        };
        let full_sql = synthesize_sql(&q, &schools(), &kb(), false, 1);
        let weak_sql = synthesize_sql(&q, &schools(), &weak, false, 1);
        let count = |s: &str| s.matches(", '").count();
        assert!(count(&weak_sql) < count(&full_sql));
    }

    #[test]
    fn reasoning_clause_dropped_or_invalid() {
        let posts = vec![PromptTable {
            name: "posts".into(),
            columns: vec!["Id".into(), "Title".into(), "ViewCount".into()],
        }];
        let q = NlQuery::Count {
            entity: "posts".into(),
            filters: vec![NlFilter::Semantic {
                attr: "Title".into(),
                property: SemProperty::Technical,
            }],
        };
        // Across seeds, both behaviours appear.
        let mut dropped = 0;
        let mut invalid = 0;
        for seed in 0..40 {
            let sql = synthesize_sql(&q, &posts, &kb(), false, seed);
            if sql.contains("IS_TECHNICAL") {
                invalid += 1;
            } else {
                assert_eq!(sql, "SELECT COUNT(*) FROM posts");
                dropped += 1;
            }
        }
        assert!(
            dropped > 0 && invalid > 0,
            "dropped={dropped} invalid={invalid}"
        );
    }

    #[test]
    fn retrieval_only_defers_non_relational() {
        let q = NlQuery::Count {
            entity: "schools".into(),
            filters: vec![
                NlFilter::NumCmp {
                    attr: "Longitude".into(),
                    op: CmpOp::Under,
                    value: -120.0,
                },
                NlFilter::InRegion {
                    region: "Bay Area".into(),
                },
            ],
        };
        let sql = synthesize_sql(&q, &schools(), &kb(), true, 1);
        assert!(sql.starts_with("SELECT * FROM schools WHERE Longitude < -120"));
        assert!(!sql.contains("City IN"));
        assert!(sql.ends_with("LIMIT 500"));
    }

    #[test]
    fn taller_than_uses_known_height() {
        let players = vec![PromptTable {
            name: "players".into(),
            columns: vec!["name".into(), "height".into(), "volley".into()],
        }];
        let q = NlQuery::Count {
            entity: "players".into(),
            filters: vec![NlFilter::TallerThan {
                person: "Stephen Curry".into(),
            }],
        };
        let sql = synthesize_sql(&q, &players, &kb(), false, 1);
        assert_eq!(sql, "SELECT COUNT(*) FROM players WHERE height > 188");
    }

    #[test]
    fn quoted_attr_with_space() {
        let t = PromptTable {
            name: "frpm".into(),
            columns: vec!["Academic Year".into()],
        };
        assert_eq!(quote_attr("academic year", &t), "\"Academic Year\"");
    }

    #[test]
    fn singular_plural_table_resolution() {
        let tables = vec![PromptTable {
            name: "race".into(),
            columns: vec!["year".into()],
        }];
        let q = NlQuery::Count {
            entity: "races".into(),
            filters: vec![],
        };
        let sql = synthesize_sql(&q, &tables, &kb(), false, 1);
        assert_eq!(sql, "SELECT COUNT(*) FROM race");
    }
}
