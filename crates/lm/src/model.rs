//! The language-model abstraction used by every TAG component.
//!
//! The paper runs Llama-3.1-70B-Instruct behind vLLM; here the same role
//! is played by any implementor of [`LanguageModel`]. The trait is
//! batch-first because batched inference is the mechanism behind the
//! hand-written TAG pipelines' execution-time advantage (§4.3).

use std::fmt;

/// One generation request.
#[derive(Debug, Clone)]
pub struct LmRequest {
    /// The full prompt text.
    pub prompt: String,
    /// Generation budget in tokens.
    pub max_tokens: usize,
}

impl LmRequest {
    /// A request with the default 512-token budget.
    pub fn new(prompt: impl Into<String>) -> Self {
        LmRequest {
            prompt: prompt.into(),
            max_tokens: 512,
        }
    }

    /// Set the generation budget.
    pub fn with_max_tokens(mut self, n: usize) -> Self {
        self.max_tokens = n;
        self
    }
}

/// One generation result.
#[derive(Debug, Clone, PartialEq)]
pub struct LmResponse {
    /// Generated text.
    pub text: String,
    /// Tokens consumed by the prompt.
    pub prompt_tokens: usize,
    /// Tokens generated.
    pub completion_tokens: usize,
}

/// Errors surfaced by a language model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LmError {
    /// The prompt exceeded the model's context window. The paper observes
    /// exactly this failure on the Text2SQL + LM baseline (§4.3).
    ContextLength {
        /// Tokens in the offending prompt.
        prompt_tokens: usize,
        /// The model's window.
        max_context: usize,
    },
    /// Any other failure (malformed request, backend error).
    Other(String),
}

impl fmt::Display for LmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LmError::ContextLength {
                prompt_tokens,
                max_context,
            } => write!(
                f,
                "prompt of {prompt_tokens} tokens exceeds the {max_context}-token context window"
            ),
            LmError::Other(m) => write!(f, "LM error: {m}"),
        }
    }
}

impl std::error::Error for LmError {}

/// Result alias for LM operations.
pub type LmResult<T> = Result<T, LmError>;

/// A batched text-generation model.
///
/// Implementations must be cheap to share (`&self` methods) and are
/// expected to meter simulated inference time on a virtual clock so that
/// benchmark harnesses can report execution time deterministically.
pub trait LanguageModel: Send + Sync {
    /// Generate completions for a batch of prompts. The whole batch is
    /// metered as one inference round (vLLM-style continuous batching).
    fn generate_batch(&self, requests: &[LmRequest]) -> LmResult<Vec<LmResponse>>;

    /// Single-prompt convenience wrapper.
    fn generate(&self, request: &LmRequest) -> LmResult<LmResponse> {
        let mut out = self.generate_batch(std::slice::from_ref(request))?;
        Ok(out.pop().expect("batch of one yields one response"))
    }

    /// Simulated seconds of inference accumulated on the virtual clock.
    fn elapsed_seconds(&self) -> f64;

    /// Reset the virtual clock and call counters.
    fn reset_metrics(&self);

    /// Number of `generate_batch` rounds so far.
    fn batches(&self) -> u64;

    /// Number of individual prompts served so far.
    fn calls(&self) -> u64;

    /// The model's context window in tokens.
    fn context_window(&self) -> usize;

    /// `(elapsed_seconds, batches, calls)` in one read. Used by tracing
    /// to delta virtual-clock time and round counts around an operation;
    /// implementations backed by a [`crate::cost::VirtualClock`] should
    /// override this with `clock.snapshot()` so the triple is consistent
    /// under concurrency.
    fn usage(&self) -> (f64, u64, u64) {
        (self.elapsed_seconds(), self.batches(), self.calls())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_builder() {
        let r = LmRequest::new("hi").with_max_tokens(7);
        assert_eq!(r.prompt, "hi");
        assert_eq!(r.max_tokens, 7);
    }

    #[test]
    fn error_display() {
        let e = LmError::ContextLength {
            prompt_tokens: 9000,
            max_context: 8192,
        };
        assert!(e.to_string().contains("9000"));
        assert!(e.to_string().contains("8192"));
        assert!(LmError::Other("x".into()).to_string().contains("x"));
    }
}
