//! Lexicon-based semantic reasoning: sentiment, technicality, sarcasm.
//!
//! These are the simulated model's "reasoning circuits" for the TAG
//! benchmark's *reasoning* queries (sentiment of reviews, most technical
//! titles, most sarcastic comments). Scores are deterministic functions
//! of the text; the data generator plants the same signals, so the
//! simulated LM recovers the intended labels with realistic imperfection
//! on ambiguous text.

/// Words contributing positive sentiment.
pub const POSITIVE_WORDS: &[&str] = &[
    "great",
    "excellent",
    "amazing",
    "wonderful",
    "fantastic",
    "love",
    "loved",
    "best",
    "beautiful",
    "masterpiece",
    "brilliant",
    "superb",
    "delightful",
    "stunning",
    "perfect",
    "enjoyable",
    "charming",
    "captivating",
    "impressive",
    "memorable",
    "helpful",
    "clear",
    "insightful",
    "elegant",
];

/// Words contributing negative sentiment.
pub const NEGATIVE_WORDS: &[&str] = &[
    "terrible",
    "awful",
    "horrible",
    "worst",
    "boring",
    "hate",
    "hated",
    "bad",
    "disappointing",
    "dull",
    "mediocre",
    "mess",
    "waste",
    "weak",
    "flat",
    "tedious",
    "confusing",
    "wrong",
    "useless",
    "poor",
    "shallow",
    "predictable",
    "forgettable",
    "overrated",
];

/// Jargon terms contributing technicality.
pub const TECHNICAL_TERMS: &[&str] = &[
    "algorithm",
    "regression",
    "boosting",
    "gradient",
    "variance",
    "bayesian",
    "kernel",
    "matrix",
    "eigenvalue",
    "stochastic",
    "convergence",
    "entropy",
    "likelihood",
    "optimization",
    "neural",
    "hyperparameter",
    "covariance",
    "heteroscedasticity",
    "regularization",
    "cross-validation",
    "bootstrap",
    "asymptotic",
    "multicollinearity",
    "autocorrelation",
    "posterior",
    "prior",
    "logistic",
    "quantile",
    "estimator",
    "overfitting",
    "dropout",
    "softmax",
];

/// Phrases that mark sarcasm.
pub const SARCASM_MARKERS: &[&str] = &[
    "oh great",
    "oh sure",
    "yeah right",
    "obviously",
    "thanks a lot",
    "well done",
    "what a surprise",
    "because that always works",
    "truly groundbreaking",
    "pure genius",
    "how original",
    "shocking, really",
    "as if",
    "good luck with that",
    "clearly the best idea ever",
    "i'm sure that will work",
];

fn normalized_words(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric() && c != '-' && c != '\'')
        .filter(|w| !w.is_empty())
        .map(|w| w.to_ascii_lowercase())
        .collect()
}

/// Sentiment in [-1, 1]: (positives − negatives) / (positives + negatives),
/// 0.0 for neutral text.
pub fn sentiment_score(text: &str) -> f64 {
    let words = normalized_words(text);
    let pos = words
        .iter()
        .filter(|w| POSITIVE_WORDS.contains(&w.as_str()))
        .count() as f64;
    let neg = words
        .iter()
        .filter(|w| NEGATIVE_WORDS.contains(&w.as_str()))
        .count() as f64;
    if pos + neg == 0.0 {
        0.0
    } else {
        (pos - neg) / (pos + neg)
    }
}

/// Technicality in [0, 1]: jargon density, scaled so a couple of terms
/// in a short title score high but density keeps separating levels
/// (saturation would make dense titles indistinguishable to rank).
pub fn technicality_score(text: &str) -> f64 {
    let words = normalized_words(text);
    if words.is_empty() {
        return 0.0;
    }
    let jargon = words
        .iter()
        .filter(|w| TECHNICAL_TERMS.contains(&w.as_str()))
        .count() as f64;
    (jargon * 2.0 / words.len() as f64).min(1.0)
}

/// Sarcasm in [0, 1]: marker phrases plus the positive-words-with-
/// negative-context pattern.
pub fn sarcasm_score(text: &str) -> f64 {
    let lower = text.to_ascii_lowercase();
    let marker_hits = SARCASM_MARKERS
        .iter()
        .filter(|m| lower.contains(*m))
        .count() as f64;
    // Exaggerated praise next to a complaint is the classic signature.
    let pos = sentiment_score(text);
    let has_negation = ["not", "never", "n't", "except", "but"]
        .iter()
        .any(|n| lower.contains(n));
    let irony_bonus = if pos > 0.5 && has_negation { 0.3 } else { 0.0 };
    let exclaim_bonus = if lower.contains('!') && marker_hits > 0.0 {
        0.1
    } else {
        0.0
    };
    (marker_hits * 0.45 + irony_bonus + exclaim_bonus).min(1.0)
}

/// Binary sentiment with a dead zone: `Some(true)`/`Some(false)` for
/// clearly positive/negative text, `None` when the model would be unsure.
pub fn sentiment_label(text: &str) -> Option<bool> {
    let s = sentiment_score(text);
    if s > 0.15 {
        Some(true)
    } else if s < -0.15 {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentiment_directions() {
        assert!(sentiment_score("An amazing, beautiful masterpiece. Loved it.") > 0.5);
        assert!(sentiment_score("Terrible, boring waste of time.") < -0.5);
        assert_eq!(
            sentiment_score("The movie has a runtime of two hours."),
            0.0
        );
    }

    #[test]
    fn sentiment_mixed() {
        let s = sentiment_score("great acting but a boring, predictable plot");
        assert!(s < 0.0, "got {s}");
    }

    #[test]
    fn sentiment_labels() {
        assert_eq!(sentiment_label("excellent and wonderful"), Some(true));
        assert_eq!(sentiment_label("awful mess"), Some(false));
        assert_eq!(sentiment_label("it exists"), None);
    }

    #[test]
    fn technicality_ranks_jargon() {
        let technical = technicality_score(
            "Bayesian regularization of gradient boosting hyperparameter selection",
        );
        let casual = technicality_score("What is your favorite chart color?");
        assert!(technical > 0.8, "got {technical}");
        assert_eq!(casual, 0.0);
        assert!(technical > casual);
    }

    #[test]
    fn technicality_empty() {
        assert_eq!(technicality_score(""), 0.0);
        assert_eq!(technicality_score("   "), 0.0);
    }

    #[test]
    fn sarcasm_detects_markers() {
        assert!(sarcasm_score("Oh great, another overfitted model. Pure genius.") > 0.5);
        assert!(sarcasm_score("This derivation is correct and well presented.") < 0.2);
    }

    #[test]
    fn sarcasm_irony_pattern() {
        let s = sarcasm_score("What a brilliant, perfect answer — except it never runs!");
        assert!(s > 0.2, "got {s}");
    }

    #[test]
    fn scores_are_bounded() {
        for text in [
            "great great great great",
            "terrible awful horrible worst",
            &"algorithm ".repeat(50),
            &"oh great yeah right obviously pure genius ".repeat(5),
        ] {
            assert!((-1.0..=1.0).contains(&sentiment_score(text)));
            assert!((0.0..=1.0).contains(&technicality_score(text)));
            assert!((0.0..=1.0).contains(&sarcasm_score(text)));
        }
    }
}
