//! `SimLm`: the deterministic simulated language model.
//!
//! Plays the role of Llama-3.1-70B-Instruct in the reproduction. Every
//! capability the paper's pipelines rely on is implemented behind the
//! same plain-text prompt interface a served model would expose:
//!
//! - **Text2SQL** over BIRD-style schema prompts (Appendix B.1);
//! - **answer generation** over in-context data points (Appendix B.2),
//!   with a long-context *attention model* that loses items as the
//!   context grows — the paper's observed failure of single-call
//!   generation over many rows;
//! - **semantic-operator primitives** (boolean filter, pairwise
//!   comparison, relevance scoring, summarization) used by the
//!   LOTUS-style runtime and LM UDFs;
//! - **world knowledge** with imperfect per-fact recall, and
//!   **lexicon-based reasoning** with borderline-judgment noise.
//!
//! All behaviour is a deterministic function of (config, prompt).

use crate::cost::{CostModel, VirtualClock};
use crate::knowledge::{KnowledgeBase, KnowledgeConfig};
use crate::lexicon;
use crate::model::{LanguageModel, LmError, LmRequest, LmResponse, LmResult};
use crate::nlq::{CmpOp, NlFilter, NlQuery, SemProperty};
use crate::prompts::{
    self, parse_answer_prompt, parse_relevance_prompt, parse_sem_agg_prompt,
    parse_sem_compare_prompt, parse_sem_filter_prompt, parse_sem_map_prompt, DataPoint, SemClaim,
};
use crate::summarize;
use crate::text2sql::{parse_schemas, synthesize_sql};
use crate::tokenizer::count_tokens;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Configuration of the simulated model.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed for all deterministic noise.
    pub seed: u64,
    /// World-knowledge recall settings.
    pub knowledge: KnowledgeConfig,
    /// Context window in tokens (Llama-3.1 serving configs commonly cap
    /// well below the architectural maximum).
    pub context_window: usize,
    /// Inference cost model.
    pub cost: CostModel,
    /// Number of in-context data points the model handles reliably;
    /// beyond this, per-item recall decays.
    pub attention_span: usize,
    /// Probability of flipping a *borderline* semantic judgment.
    pub judgment_noise: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x7461_6721,
            knowledge: KnowledgeConfig::default(),
            context_window: 4096,
            cost: CostModel::default(),
            attention_span: 24,
            judgment_noise: 0.3,
        }
    }
}

/// The simulated language model.
pub struct SimLm {
    config: SimConfig,
    kb: KnowledgeBase,
    clock: VirtualClock,
}

impl Default for SimLm {
    fn default() -> Self {
        Self::new(SimConfig::default())
    }
}

impl SimLm {
    /// Build a model from configuration.
    pub fn new(config: SimConfig) -> Self {
        let kb = KnowledgeBase::new(config.knowledge.clone());
        SimLm {
            config,
            kb,
            clock: VirtualClock::new(),
        }
    }

    /// The model's knowledge base (shared with oracles in tests).
    pub fn knowledge(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// The model's configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Deterministic uniform sample in [0, 1) keyed by strings.
    fn coin(&self, parts: &[&str]) -> f64 {
        let mut h = DefaultHasher::new();
        self.config.seed.hash(&mut h);
        for p in parts {
            p.hash(&mut h);
        }
        (h.finish() % 100_000) as f64 / 100_000.0
    }

    /// A semantic yes/no with borderline noise: judgments near the
    /// decision threshold flip with `judgment_noise` probability.
    /// `in_context` marks judgments made while scanning a long prompt of
    /// data points (one-pass generation) rather than a dedicated per-row
    /// prompt — empirically much less reliable, so the borderline widens
    /// and the flip rate rises.
    fn noisy_threshold(&self, score: f64, threshold: f64, key: &str, in_context: bool) -> bool {
        let verdict = score > threshold;
        let margin = (score - threshold).abs();
        let (zone, noise) = if in_context {
            (0.3, (self.config.judgment_noise * 1.8).min(0.5))
        } else {
            (0.15, self.config.judgment_noise)
        };
        if margin < zone && self.coin(&["flip", key]) < noise {
            !verdict
        } else {
            verdict
        }
    }

    fn property_score(property: SemProperty, text: &str) -> f64 {
        match property {
            SemProperty::Positive => lexicon::sentiment_score(text),
            SemProperty::Negative => -lexicon::sentiment_score(text),
            SemProperty::Sarcastic => lexicon::sarcasm_score(text),
            SemProperty::Technical => lexicon::technicality_score(text),
        }
    }

    fn property_threshold(property: SemProperty) -> f64 {
        match property {
            SemProperty::Positive | SemProperty::Negative => 0.15,
            SemProperty::Sarcastic => 0.35,
            SemProperty::Technical => 0.30,
        }
    }

    /// Judge a semantic property of a text value (dedicated prompt).
    fn judge_property(&self, property: SemProperty, text: &str) -> bool {
        let score = Self::property_score(property, text);
        let threshold = Self::property_threshold(property);
        self.noisy_threshold(score, threshold, text, false)
    }

    /// The same judgment made mid-context during one-pass generation.
    fn judge_property_in_context(&self, property: SemProperty, text: &str) -> bool {
        let score = Self::property_score(property, text);
        let threshold = Self::property_threshold(property);
        self.noisy_threshold(score, threshold, text, true)
    }

    // ---- prompt handlers ------------------------------------------------

    fn handle_filter(&self, claim: &SemClaim, value: &str) -> String {
        let verdict = match claim {
            SemClaim::CityInRegion { region } => self
                .kb
                .is_city_in_region(value, region)
                .unwrap_or_else(|| self.coin(&["guess", value, region]) < 0.15),
            SemClaim::ClassicMovie => self
                .kb
                .is_classic_movie(value)
                .unwrap_or_else(|| self.coin(&["guess-classic", value]) < 0.2),
            SemClaim::EuCountry => self
                .kb
                .is_eu_member(value)
                .unwrap_or_else(|| self.coin(&["guess-eu", value]) < 0.3),
            SemClaim::CountryInContinent { continent } => match self.kb.country_continent(value) {
                Some(c) => c.eq_ignore_ascii_case(continent),
                None => self.coin(&["guess-cont", value, continent]) < 0.2,
            },
            SemClaim::CompanyInVertical { vertical } => match self.kb.company_vertical(value) {
                Some(v) => v.eq_ignore_ascii_case(vertical),
                None => self.coin(&["guess-vert", value, vertical]) < 0.2,
            },
            SemClaim::CircuitInContinent { continent } => match self.kb.circuit_fact(value) {
                Some(fact) => self
                    .kb
                    .country_continent(fact.country)
                    .map(|c| c.eq_ignore_ascii_case(continent))
                    .unwrap_or(false),
                None => self.coin(&["guess-circ", value, continent]) < 0.2,
            },
            SemClaim::HeightTallerThan { person } => {
                let own: Option<f64> = value.trim().parse().ok();
                match (own, self.kb.person_height_cm(person)) {
                    (Some(h), Some(ref_h)) => h > ref_h,
                    _ => self.coin(&["guess-tall", value, person]) < 0.5,
                }
            }
            SemClaim::Property(p) => self.judge_property(*p, value),
        };
        if verdict { "TRUE" } else { "FALSE" }.to_owned()
    }

    fn handle_compare(&self, property: SemProperty, a: &str, b: &str) -> String {
        let sa = Self::property_score(property, a);
        let sb = Self::property_score(property, b);
        // Near-ties are answered inconsistently, like a real judge model.
        if (sa - sb).abs() < 0.28 {
            return if self.coin(&["cmp", a, b]) < 0.5 {
                "A"
            } else {
                "B"
            }
            .to_owned();
        }
        if sa > sb { "A" } else { "B" }.to_owned()
    }

    fn handle_relevance(&self, question: &str, point: &str) -> String {
        // Lexical-overlap judgment, as a reranker LM effectively does for
        // keyword-style questions.
        let qw: std::collections::HashSet<String> = question
            .split(|c: char| !c.is_alphanumeric())
            .filter(|w| w.len() > 2)
            .map(|w| w.to_ascii_lowercase())
            .collect();
        let pw: std::collections::HashSet<String> = point
            .split(|c: char| !c.is_alphanumeric())
            .filter(|w| w.len() > 2)
            .map(|w| w.to_ascii_lowercase())
            .collect();
        if qw.is_empty() || pw.is_empty() {
            return "0.0".to_owned();
        }
        let inter = qw.intersection(&pw).count() as f64;
        let score = (inter / qw.len() as f64).min(1.0);
        // Mild deterministic jitter: rerankers are not perfectly stable.
        let jitter = (self.coin(&["rel", question, point]) - 0.5) * 0.1;
        format!("{:.2}", (score + jitter).clamp(0.0, 1.0))
    }

    fn handle_agg(&self, instruction: &str, items: &[String]) -> String {
        let _ = instruction;
        // Treat each item as at least one sentence so summarization can
        // actually compress lists of period-free records.
        let joined = items
            .iter()
            .map(|i| {
                let t = i.trim_end();
                if t.ends_with(['.', '!', '?']) {
                    t.to_owned()
                } else {
                    format!("{t}.")
                }
            })
            .collect::<Vec<_>>()
            .join(" ");
        let summary = summarize::summarize_text(&joined, 6);
        // A generation budget applies, as with any served model.
        crate::tokenizer::truncate_to_tokens(&summary, 220).0
    }

    /// Per-row transformation instructions the model "understands":
    /// sentiment classification, year extraction, length-bounded
    /// rewriting. Unknown instructions degrade to a one-sentence gist,
    /// the way an instruction-tuned model free-wheels.
    fn handle_map(&self, instruction: &str, value: &str) -> String {
        let lower = instruction.to_ascii_lowercase();
        if lower.contains("sentiment") {
            return match lexicon::sentiment_label(value) {
                Some(true) => "positive".to_owned(),
                Some(false) => "negative".to_owned(),
                None => "neutral".to_owned(),
            };
        }
        if lower.contains("year") {
            let mut digits = String::new();
            for c in value.chars() {
                if c.is_ascii_digit() {
                    digits.push(c);
                    if digits.len() == 4 {
                        return digits;
                    }
                } else {
                    digits.clear();
                }
            }
            return "unknown".to_owned();
        }
        if lower.contains("one word") || lower.contains("single word") {
            return value
                .split_whitespace()
                .max_by_key(|w| w.len())
                .unwrap_or("unknown")
                .trim_matches(|c: char| !c.is_alphanumeric())
                .to_owned();
        }
        summarize::summarize_text(value, 1)
    }

    fn handle_text2sql(&self, prompt: &str) -> String {
        let tables = parse_schemas(prompt);
        let retrieval_only = prompt.contains("retrieves the rows relevant");
        // The question is the last `-- ` comment line before the trailing
        // SELECT.
        let question = prompt
            .lines()
            .rev()
            .find_map(|l| l.strip_prefix("-- "))
            .unwrap_or_default()
            .to_owned();
        let sql = match NlQuery::parse(&question) {
            Some(q) => synthesize_sql(&q, &tables, &self.kb, retrieval_only, self.config.seed),
            None => {
                // Question not understood: guess a scan of the first table.
                let t = tables
                    .first()
                    .map(|t| t.name.clone())
                    .unwrap_or_else(|| "unknown_table".to_owned());
                format!("SELECT * FROM {t}")
            }
        };
        // The prompt ends with "SELECT"; the completion is the remainder.
        sql.strip_prefix("SELECT")
            .map(|s| s.trim_start().to_owned())
            .unwrap_or(sql)
    }

    /// The long-context attention model: which data points does the model
    /// actually take into account for this question?
    fn attended<'a>(&self, question: &str, points: &'a [DataPoint]) -> Vec<(usize, &'a DataPoint)> {
        let n = points.len();
        if n <= self.config.attention_span {
            return points.iter().enumerate().collect();
        }
        let p_keep = (self.config.attention_span as f64 / n as f64)
            .powf(0.35)
            .clamp(0.0, 1.0);
        points
            .iter()
            .enumerate()
            .filter(|(i, _)| self.coin(&["attn", question, &i.to_string()]) < p_keep)
            .collect()
    }

    fn point_field<'a>(point: &'a DataPoint, candidates: &[&str]) -> Option<&'a str> {
        for cand in candidates {
            if let Some((_, v)) = point.iter().find(|(k, _)| k.eq_ignore_ascii_case(cand)) {
                return Some(v.as_str());
            }
        }
        None
    }

    fn point_number(point: &DataPoint, attr: &str) -> Option<f64> {
        Self::point_field(point, &[attr]).and_then(|v| v.trim().parse().ok())
    }

    /// Evaluate one filter clause against one data point.
    fn filter_matches(&self, f: &NlFilter, point: &DataPoint) -> bool {
        match f {
            NlFilter::NumCmp { attr, op, value } => match Self::point_number(point, attr) {
                Some(x) => match op {
                    CmpOp::Over => x > *value,
                    CmpOp::Under => x < *value,
                },
                None => false,
            },
            NlFilter::TextEq { attr, value } => Self::point_field(point, &[attr])
                .map(|v| v.eq_ignore_ascii_case(value))
                .unwrap_or(false),
            NlFilter::AtCircuit { circuit } => {
                Self::point_field(point, &["Circuit", "circuit", "CircuitName"])
                    .map(|v| v.eq_ignore_ascii_case(circuit))
                    .unwrap_or(false)
            }
            NlFilter::InRegion { region } => match Self::point_field(point, &["City", "city"]) {
                Some(city) => self
                    .kb
                    .is_city_in_region(city, region)
                    .unwrap_or_else(|| self.coin(&["guess", city, region]) < 0.15),
                None => false,
            },
            NlFilter::TallerThan { person } => {
                let h = Self::point_field(point, &["height", "Height"])
                    .and_then(|v| v.trim().parse::<f64>().ok());
                match (h, self.kb.person_height_cm(person)) {
                    (Some(h), Some(ref_h)) => h > ref_h,
                    (Some(_), None) => self.coin(&["guess-tall", person]) < 0.5,
                    _ => false,
                }
            }
            NlFilter::EuCountry => match Self::point_field(point, &["Country", "country"]) {
                Some(c) => self
                    .kb
                    .is_eu_member(c)
                    .unwrap_or_else(|| self.coin(&["guess-eu", c]) < 0.3),
                None => false,
            },
            NlFilter::CircuitContinent { continent } => {
                match Self::point_field(point, &["Circuit", "circuit"]) {
                    Some(c) => match self.kb.circuit_fact(c) {
                        Some(fact) => self
                            .kb
                            .country_continent(fact.country)
                            .map(|cc| cc.eq_ignore_ascii_case(continent))
                            .unwrap_or(false),
                        None => false,
                    },
                    None => false,
                }
            }
            NlFilter::ClassicMovie => {
                match Self::point_field(point, &["movie_title", "title", "Title"]) {
                    Some(t) => self
                        .kb
                        .is_classic_movie(t)
                        .unwrap_or_else(|| self.coin(&["guess-classic", t]) < 0.2),
                    None => false,
                }
            }
            NlFilter::VerticalIs { vertical } => {
                match Self::point_field(point, &["account_name", "Company", "company"]) {
                    Some(c) => self
                        .kb
                        .company_vertical(c)
                        .map(|v| v.eq_ignore_ascii_case(vertical))
                        .unwrap_or(false),
                    None => false,
                }
            }
            NlFilter::Semantic { attr, property } => match Self::point_field(point, &[attr]) {
                Some(text) => self.judge_property_in_context(*property, text),
                None => false,
            },
        }
    }

    fn handle_answer(&self, question: &str, points: &[DataPoint], list_format: bool) -> String {
        let Some(query) = NlQuery::parse(question) else {
            return if list_format {
                "[]".to_owned()
            } else {
                "I could not determine the answer from the provided data.".to_owned()
            };
        };

        // Aggregation shapes produce free text.
        if matches!(
            &query,
            NlQuery::Summarize { .. } | NlQuery::ProvideInfo { .. }
        ) {
            return self.answer_aggregation(&query, points);
        }

        let attended = self.attended(question, points);
        let matching: Vec<&DataPoint> = attended
            .iter()
            .filter(|(_, p)| query.filters().iter().all(|f| self.filter_matches(f, p)))
            .map(|(_, p)| *p)
            .collect();

        let values: Vec<String> = match &query {
            NlQuery::Count { .. } => vec![matching.len().to_string()],
            NlQuery::Superlative {
                select_attr,
                rank_attr,
                highest,
                ..
            } => {
                let best = matching.iter().max_by(|a, b| {
                    let xa = Self::point_number(a, rank_attr).unwrap_or(f64::NEG_INFINITY);
                    let xb = Self::point_number(b, rank_attr).unwrap_or(f64::NEG_INFINITY);
                    let ord = xa.total_cmp(&xb);
                    if *highest {
                        ord
                    } else {
                        ord.reverse()
                    }
                });
                match best.and_then(|p| Self::point_field(p, &[select_attr])) {
                    Some(v) => vec![v.to_owned()],
                    None => Vec::new(),
                }
            }
            NlQuery::List { select_attr, .. } => matching
                .iter()
                .filter_map(|p| Self::point_field(p, &[select_attr]))
                .map(str::to_owned)
                .collect(),
            NlQuery::TopK {
                select_attr,
                rank_attr,
                k,
                highest,
                ..
            } => {
                let mut rows: Vec<&DataPoint> = matching;
                rows.sort_by(|a, b| {
                    let xa = Self::point_number(a, rank_attr).unwrap_or(f64::NEG_INFINITY);
                    let xb = Self::point_number(b, rank_attr).unwrap_or(f64::NEG_INFINITY);
                    if *highest {
                        xb.total_cmp(&xa)
                    } else {
                        xa.total_cmp(&xb)
                    }
                });
                rows.iter()
                    .take(*k)
                    .filter_map(|p| Self::point_field(p, &[select_attr]))
                    .map(str::to_owned)
                    .collect()
            }
            NlQuery::SemanticRank {
                select_attr,
                rank_attr,
                k,
                property,
                on_attr,
                ..
            } => {
                let mut rows: Vec<&DataPoint> = matching;
                rows.sort_by(|a, b| {
                    let xa = Self::point_number(a, rank_attr).unwrap_or(f64::NEG_INFINITY);
                    let xb = Self::point_number(b, rank_attr).unwrap_or(f64::NEG_INFINITY);
                    xb.total_cmp(&xa)
                });
                let mut cut: Vec<&DataPoint> = rows.into_iter().take(*k).collect();
                cut.sort_by(|a, b| {
                    let ta = Self::point_field(a, &[on_attr]).unwrap_or("");
                    let tb = Self::point_field(b, &[on_attr]).unwrap_or("");
                    Self::property_score(*property, tb)
                        .total_cmp(&Self::property_score(*property, ta))
                });
                cut.iter()
                    .filter_map(|p| Self::point_field(p, &[select_attr]))
                    .map(str::to_owned)
                    .collect()
            }
            NlQuery::Summarize { .. } | NlQuery::ProvideInfo { .. } => unreachable!(),
        };
        prompts::render_answer_list(&values)
    }

    /// Free-form answer for aggregation queries, mixing whatever data is
    /// in context with parametric knowledge — reproducing the Figure 2
    /// behaviours (incomplete for RAG, knowledge-only for empty context,
    /// complete for the TAG pipelines that pass every relevant row).
    fn answer_aggregation(&self, query: &NlQuery, points: &[DataPoint]) -> String {
        let circuit_filter = query.filters().iter().find_map(|f| match f {
            NlFilter::AtCircuit { circuit } => Some(circuit.clone()),
            _ => None,
        });

        if points.is_empty() {
            // Parametric knowledge only (the Text2SQL + LM column of Fig 2).
            let mut s = String::from(
                "The data points provided do not contain specific information \
                 about the question.",
            );
            if let Some(circuit) = &circuit_filter {
                if let Some(fact) = self.kb.circuit_fact(circuit) {
                    s.push_str(&format!(
                        " However, based on general knowledge, the {circuit} is a racing \
                         circuit in {}, {}, and it has hosted the {}.",
                        fact.city, fact.country, fact.grand_prix
                    ));
                }
            }
            return s;
        }

        let attended = self.attended(&query.render(), points);
        let matching: Vec<&DataPoint> = attended
            .iter()
            .filter(|(_, p)| query.filters().iter().all(|f| self.filter_matches(f, p)))
            .map(|(_, p)| *p)
            .collect();
        // Report compactly, like a fluent answer: for "summarize the X"
        // questions only the X column matters; otherwise the first couple
        // of informative (non-id) fields per row.
        let topic = query.topic().map(str::to_owned);
        // Columns whose value never varies across the matching rows carry
        // no per-row information; a fluent summary states them once (the
        // intro sentence) instead of repeating them.
        let constant_col = |name: &str| -> bool {
            let mut values = matching
                .iter()
                .filter_map(|p| Self::point_field(p, &[name]));
            match values.next() {
                Some(first) => values.all(|v| v == first) && matching.len() > 1,
                None => false,
            }
        };
        let rows: Vec<Vec<(String, String)>> = matching
            .iter()
            .map(|p| {
                if let Some(t) = &topic {
                    // Tolerate singular/plural mismatch between the
                    // question's topic noun and the column name.
                    let matches_topic = |k: &str| {
                        let k = k.to_ascii_lowercase();
                        let t = t.to_ascii_lowercase();
                        k == t || k.trim_end_matches('s') == t.trim_end_matches('s')
                    };
                    p.iter()
                        .filter(|(k, _)| matches_topic(k))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect()
                } else {
                    p.iter()
                        .filter(|(k, _)| {
                            !k.to_ascii_lowercase().ends_with("id") && !constant_col(k)
                        })
                        .take(2)
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect::<Vec<_>>()
                }
            })
            .collect();

        let mut s = String::new();
        if let Some(circuit) = &circuit_filter {
            if let Some(fact) = self.kb.circuit_fact(circuit) {
                s.push_str(&format!(
                    "The {circuit} in {}, {}, hosted the {}. ",
                    fact.city, fact.country, fact.grand_prix
                ));
            }
        }
        let subject = query.entity().to_owned();
        if topic.is_some() {
            // A true summary compresses the topic texts rather than
            // enumerating them.
            let joined = rows
                .iter()
                .flat_map(|r| r.iter().map(|(_, v)| v.clone()))
                .collect::<Vec<_>>()
                .join(" ");
            let subject = subject.trim_start_matches("the ").to_owned();
            if rows.len() == 1 {
                s.push_str(&format!("Regarding the {subject}: "));
            } else {
                s.push_str(&format!("Across {} {subject}: ", rows.len()));
            }
            s.push_str(&summarize::summarize_text(&joined, 4));
            return crate::tokenizer::truncate_to_tokens(&s, 130).0;
        }
        s.push_str(&summarize::summarize_rows(&subject, &rows, 2));
        crate::tokenizer::truncate_to_tokens(&s, 240).0
    }

    fn respond(&self, prompt: &str) -> String {
        if let Some((claim, value)) = parse_sem_filter_prompt(prompt) {
            return self.handle_filter(&claim, &value);
        }
        if let Some((property, a, b)) = parse_sem_compare_prompt(prompt) {
            return self.handle_compare(property, &a, &b);
        }
        if let Some((question, point)) = parse_relevance_prompt(prompt) {
            return self.handle_relevance(&question, &point);
        }
        if let Some((instruction, value)) = parse_sem_map_prompt(prompt) {
            return self.handle_map(&instruction, &value);
        }
        if let Some((instruction, items)) = parse_sem_agg_prompt(prompt) {
            return self.handle_agg(&instruction, &items);
        }
        if let Some((question, points, list_format)) = parse_answer_prompt(prompt) {
            return self.handle_answer(&question, &points, list_format);
        }
        if prompt.contains("CREATE TABLE") && prompt.trim_end().ends_with("SELECT") {
            return self.handle_text2sql(prompt);
        }
        // Unrecognized prompt: behave like a generic assistant.
        summarize::summarize_text(prompt, 2)
    }
}

impl LanguageModel for SimLm {
    fn generate_batch(&self, requests: &[LmRequest]) -> LmResult<Vec<LmResponse>> {
        // Context check first: one oversized prompt fails the request,
        // before any compute is spent (but the scheduler round is still
        // charged, as a real server would have tokenized the input).
        let mut sequences = Vec::with_capacity(requests.len());
        for r in requests {
            let prompt_tokens = count_tokens(&r.prompt);
            if prompt_tokens > self.config.context_window {
                self.clock
                    .record_round(self.config.cost.round_overhead_s, requests.len() as u64);
                return Err(LmError::ContextLength {
                    prompt_tokens,
                    max_context: self.config.context_window,
                });
            }
            sequences.push(prompt_tokens);
        }

        let mut responses = Vec::with_capacity(requests.len());
        let mut metered = Vec::with_capacity(requests.len());
        for (r, prompt_tokens) in requests.iter().zip(&sequences) {
            let text = self.respond(&r.prompt);
            let completion_tokens = count_tokens(&text).min(r.max_tokens);
            metered.push((*prompt_tokens, completion_tokens));
            responses.push(LmResponse {
                text,
                prompt_tokens: *prompt_tokens,
                completion_tokens,
            });
        }
        let seconds = self.config.cost.round_seconds(&metered);
        self.clock.record_round(seconds, requests.len() as u64);
        Ok(responses)
    }

    fn elapsed_seconds(&self) -> f64 {
        self.clock.seconds()
    }

    fn reset_metrics(&self) {
        self.clock.reset();
    }

    fn batches(&self) -> u64 {
        self.clock.batches()
    }

    fn calls(&self) -> u64 {
        self.clock.calls()
    }

    fn context_window(&self) -> usize {
        self.config.context_window
    }

    fn usage(&self) -> (f64, u64, u64) {
        self.clock.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prompts::{
        answer_free_prompt, answer_list_prompt, sem_compare_prompt, sem_filter_prompt,
    };

    fn lm() -> SimLm {
        SimLm::new(SimConfig {
            knowledge: KnowledgeConfig {
                coverage: 1.0,
                enumeration_coverage: 1.0,
                seed: 5,
            },
            judgment_noise: 0.0,
            ..SimConfig::default()
        })
    }

    fn ask(lm: &SimLm, prompt: &str) -> String {
        lm.generate(&LmRequest::new(prompt)).unwrap().text
    }

    #[test]
    fn filter_prompts() {
        let lm = lm();
        let p = sem_filter_prompt(
            &SemClaim::CityInRegion {
                region: "Silicon Valley".into(),
            },
            "Palo Alto",
        );
        assert_eq!(ask(&lm, &p), "TRUE");
        let p = sem_filter_prompt(
            &SemClaim::CityInRegion {
                region: "Silicon Valley".into(),
            },
            "Fresno",
        );
        assert_eq!(ask(&lm, &p), "FALSE");
        let p = sem_filter_prompt(&SemClaim::ClassicMovie, "Titanic");
        assert_eq!(ask(&lm, &p), "TRUE");
        let p = sem_filter_prompt(
            &SemClaim::Property(SemProperty::Positive),
            "An amazing, wonderful masterpiece",
        );
        assert_eq!(ask(&lm, &p), "TRUE");
    }

    #[test]
    fn compare_prompt_ranks_technicality() {
        let lm = lm();
        let p = sem_compare_prompt(
            SemProperty::Technical,
            "Bayesian kernel regression with regularization",
            "What is your favorite color?",
        );
        assert_eq!(ask(&lm, &p), "A");
    }

    #[test]
    fn answer_count_over_points() {
        let lm = lm();
        let points: Vec<DataPoint> = (0..10)
            .map(|i| {
                vec![
                    ("name".to_owned(), format!("p{i}")),
                    ("height".to_owned(), (175 + i * 5).to_string()),
                ]
            })
            .collect();
        let q = "How many players with height over 180 are there?";
        let prompt = answer_list_prompt(q, &points);
        // heights 175,180,...,220 -> strictly over 180: 185..220 = 8
        assert_eq!(ask(&lm, &prompt), "[8]");
    }

    #[test]
    fn answer_superlative() {
        let lm = lm();
        let points: Vec<DataPoint> = vec![
            vec![
                ("School".into(), "A".into()),
                ("City".into(), "Palo Alto".into()),
                ("Longitude".into(), "-122.1".into()),
                ("GSoffered".into(), "K-12".into()),
            ],
            vec![
                ("School".into(), "B".into()),
                ("City".into(), "Fresno".into()),
                ("Longitude".into(), "-119.0".into()),
                ("GSoffered".into(), "9-12".into()),
            ],
        ];
        let q = "What is the GSoffered of the schools with the highest Longitude \
                 among those located in the Silicon Valley region?";
        let prompt = answer_list_prompt(q, &points);
        // Only Palo Alto qualifies; its GSoffered is K-12.
        assert_eq!(ask(&lm, &prompt), "[\"K-12\"]");
    }

    #[test]
    fn long_context_loses_items() {
        let lm = lm();
        let points: Vec<DataPoint> = (0..200)
            .map(|i| {
                vec![
                    ("name".to_owned(), format!("p{i}")),
                    ("height".to_owned(), "190".to_owned()),
                ]
            })
            .collect();
        let q = "How many players with height over 180 are there?";
        let prompt = answer_list_prompt(q, &points);
        let ans = ask(&lm, &prompt);
        let n: i64 = ans.trim_matches(['[', ']']).parse().unwrap();
        assert!(n < 200, "attention model should lose items, got {n}");
        assert!(n > 50, "should still see many items, got {n}");
    }

    #[test]
    fn context_window_error() {
        let small = SimLm::new(SimConfig {
            context_window: 50,
            ..SimConfig::default()
        });
        let prompt = "word ".repeat(200);
        let err = small.generate(&LmRequest::new(prompt)).unwrap_err();
        assert!(matches!(err, LmError::ContextLength { .. }));
    }

    #[test]
    fn aggregation_with_and_without_data() {
        let lm = lm();
        let q = "Provide information about the races held on Sepang International Circuit.";
        // No data: parametric-knowledge-only answer (Figure 2, middle).
        let prompt = answer_free_prompt(q, &[]);
        let ans = ask(&lm, &prompt);
        assert!(ans.contains("do not contain"), "{ans}");
        assert!(ans.contains("Malaysian Grand Prix"), "{ans}");
        // With data: complete coverage (Figure 2, right).
        let points: Vec<DataPoint> = (1999..=2017)
            .map(|y| {
                vec![
                    ("year".to_owned(), y.to_string()),
                    (
                        "Circuit".to_owned(),
                        "Sepang International Circuit".to_owned(),
                    ),
                    ("round".to_owned(), "2".to_owned()),
                ]
            })
            .collect();
        let prompt = answer_free_prompt(q, &points);
        let ans = ask(&lm, &prompt);
        assert!(ans.contains("Kuala Lumpur"), "{ans}");
        assert!(ans.contains("2017"), "{ans}");
        assert!(ans.contains("1999"), "{ans}");
    }

    #[test]
    fn text2sql_prompt_handling() {
        let lm = lm();
        let schemas = "CREATE TABLE schools\n(\nCDSCode TEXT not null primary key,\n\
                       School TEXT,\nCity TEXT,\nLongitude REAL,\nGSoffered TEXT\n)";
        let q = "What is the GSoffered of the schools with the highest Longitude \
                 among those located in the Silicon Valley region?";
        let prompt = crate::prompts::text2sql_prompt(schemas, q, false);
        let completion = ask(&lm, &prompt);
        let sql = format!("SELECT {completion}");
        assert!(sql.contains("City IN ("), "{sql}");
        assert!(sql.contains("ORDER BY Longitude DESC LIMIT 1"), "{sql}");
    }

    #[test]
    fn clock_advances_and_batches_amortize() {
        let lm = lm();
        let reqs: Vec<LmRequest> = (0..16)
            .map(|i| {
                LmRequest::new(sem_filter_prompt(
                    &SemClaim::ClassicMovie,
                    &format!("Movie {i}"),
                ))
            })
            .collect();
        lm.generate_batch(&reqs).unwrap();
        let batched = lm.elapsed_seconds();
        assert!(batched > 0.0);
        assert_eq!(lm.batches(), 1);
        assert_eq!(lm.calls(), 16);

        lm.reset_metrics();
        for r in &reqs {
            lm.generate(r).unwrap();
        }
        let serial = lm.elapsed_seconds();
        assert!(serial > batched * 2.0, "serial={serial} batched={batched}");
    }

    #[test]
    fn deterministic_across_instances() {
        let a = lm();
        let b = lm();
        let p = sem_filter_prompt(
            &SemClaim::Property(SemProperty::Sarcastic),
            "Oh great, another failing test. Pure genius.",
        );
        assert_eq!(ask(&a, &p), ask(&b, &p));
    }

    #[test]
    fn unrecognized_prompt_gets_generic_answer() {
        let lm = lm();
        let ans = ask(
            &lm,
            "Tell me about databases. They store data. They index it.",
        );
        assert!(!ans.is_empty());
    }
}
