//! The simulated model's parametric world knowledge.
//!
//! The TAG benchmark's *knowledge* queries require facts that are not in
//! the database: which cities form a region, how tall a basketball
//! player is, where an F1 circuit is, which countries are in the EU,
//! which films are canon "classics". A pre-trained LM holds such facts
//! imperfectly; we model that with a deterministic per-fact recall test
//! driven by a coverage parameter — the same fact is always either known
//! or unknown for a given seed, like weights frozen at training time.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// Knowledge-recall configuration.
#[derive(Debug, Clone)]
pub struct KnowledgeConfig {
    /// Probability that any individual fact is *recognizable* when asked
    /// about directly ("is Palo Alto in Silicon Valley?").
    pub coverage: f64,
    /// Probability that a fact surfaces under *free recall* ("list every
    /// Silicon Valley city") — systematically lower than recognition,
    /// the reason inlining knowledge into SQL underperforms per-row
    /// filtering.
    pub enumeration_coverage: f64,
    /// Seed fixing which facts fall inside the coverage.
    pub seed: u64,
}

impl Default for KnowledgeConfig {
    fn default() -> Self {
        // A strong instruction-tuned model recalls most but not all of
        // these mid-frequency facts.
        KnowledgeConfig {
            coverage: 0.90,
            enumeration_coverage: 0.45,
            seed: 0x7A65,
        }
    }
}

/// The world-knowledge base.
#[derive(Debug, Clone)]
pub struct KnowledgeBase {
    config: KnowledgeConfig,
    regions: HashMap<&'static str, HashSet<&'static str>>,
    heights_cm: HashMap<&'static str, f64>,
    circuits: HashMap<&'static str, CircuitFact>,
    country_continent: HashMap<&'static str, &'static str>,
    eu_members: HashSet<&'static str>,
    classic_movies: HashSet<&'static str>,
    company_verticals: HashMap<&'static str, &'static str>,
}

/// Facts about one Formula 1 circuit.
#[derive(Debug, Clone)]
pub struct CircuitFact {
    /// Host city.
    pub city: &'static str,
    /// Host country.
    pub country: &'static str,
    /// Grand Prix name usually held there.
    pub grand_prix: &'static str,
    /// Street circuit (vs purpose-built track)?
    pub street: bool,
}

impl Default for KnowledgeBase {
    fn default() -> Self {
        Self::new(KnowledgeConfig::default())
    }
}

impl KnowledgeBase {
    /// Build the knowledge base with the given recall configuration.
    pub fn new(config: KnowledgeConfig) -> Self {
        let mut regions: HashMap<&'static str, HashSet<&'static str>> = HashMap::new();
        regions.insert(
            "bay area",
            [
                "San Francisco",
                "Oakland",
                "San Jose",
                "Berkeley",
                "Palo Alto",
                "Fremont",
                "Hayward",
                "Sunnyvale",
                "Santa Clara",
                "Richmond",
                "Daly City",
                "San Mateo",
                "Redwood City",
                "Mountain View",
                "Alameda",
                "Vallejo",
                "Concord",
                "Walnut Creek",
                "Cupertino",
                "Milpitas",
                "Menlo Park",
                "Los Altos",
            ]
            .into_iter()
            .collect(),
        );
        regions.insert(
            "silicon valley",
            [
                "San Jose",
                "Palo Alto",
                "Mountain View",
                "Sunnyvale",
                "Santa Clara",
                "Cupertino",
                "Menlo Park",
                "Redwood City",
                "Milpitas",
                "Los Altos",
                "Campbell",
                "Saratoga",
                "Los Gatos",
            ]
            .into_iter()
            .collect(),
        );
        regions.insert(
            "southern california",
            [
                "Los Angeles",
                "San Diego",
                "Long Beach",
                "Anaheim",
                "Santa Ana",
                "Riverside",
                "Irvine",
                "Pasadena",
                "Glendale",
                "Torrance",
                "Burbank",
                "Santa Monica",
            ]
            .into_iter()
            .collect(),
        );
        regions.insert(
            "central valley",
            [
                "Fresno",
                "Sacramento",
                "Stockton",
                "Modesto",
                "Bakersfield",
                "Visalia",
                "Merced",
            ]
            .into_iter()
            .collect(),
        );

        let heights_cm: HashMap<&'static str, f64> = [
            ("Stephen Curry", 188.0),
            ("LeBron James", 206.0),
            ("Lionel Messi", 170.0),
            ("Cristiano Ronaldo", 187.0),
            ("Peter Crouch", 201.0),
            ("Kylian Mbappe", 178.0),
            ("Usain Bolt", 195.0),
            ("Kevin Durant", 208.0),
            ("Shaquille O'Neal", 216.0),
            ("Tom Cruise", 170.0),
        ]
        .into_iter()
        .collect();

        let circuits: HashMap<&'static str, CircuitFact> = [
            (
                "Sepang International Circuit",
                CircuitFact {
                    city: "Kuala Lumpur",
                    country: "Malaysia",
                    grand_prix: "Malaysian Grand Prix",
                    street: false,
                },
            ),
            (
                "Autodromo Nazionale di Monza",
                CircuitFact {
                    city: "Monza",
                    country: "Italy",
                    grand_prix: "Italian Grand Prix",
                    street: false,
                },
            ),
            (
                "Silverstone Circuit",
                CircuitFact {
                    city: "Silverstone",
                    country: "UK",
                    grand_prix: "British Grand Prix",
                    street: false,
                },
            ),
            (
                "Circuit de Monaco",
                CircuitFact {
                    city: "Monte-Carlo",
                    country: "Monaco",
                    grand_prix: "Monaco Grand Prix",
                    street: true,
                },
            ),
            (
                "Marina Bay Street Circuit",
                CircuitFact {
                    city: "Singapore",
                    country: "Singapore",
                    grand_prix: "Singapore Grand Prix",
                    street: true,
                },
            ),
            (
                "Suzuka Circuit",
                CircuitFact {
                    city: "Suzuka",
                    country: "Japan",
                    grand_prix: "Japanese Grand Prix",
                    street: false,
                },
            ),
            (
                "Shanghai International Circuit",
                CircuitFact {
                    city: "Shanghai",
                    country: "China",
                    grand_prix: "Chinese Grand Prix",
                    street: false,
                },
            ),
            (
                "Circuit de Spa-Francorchamps",
                CircuitFact {
                    city: "Spa",
                    country: "Belgium",
                    grand_prix: "Belgian Grand Prix",
                    street: false,
                },
            ),
            (
                "Circuit Gilles Villeneuve",
                CircuitFact {
                    city: "Montreal",
                    country: "Canada",
                    grand_prix: "Canadian Grand Prix",
                    street: true,
                },
            ),
            (
                "Bahrain International Circuit",
                CircuitFact {
                    city: "Sakhir",
                    country: "Bahrain",
                    grand_prix: "Bahrain Grand Prix",
                    street: false,
                },
            ),
            (
                "Autodromo Jose Carlos Pace",
                CircuitFact {
                    city: "Sao Paulo",
                    country: "Brazil",
                    grand_prix: "Brazilian Grand Prix",
                    street: false,
                },
            ),
            (
                "Yas Marina Circuit",
                CircuitFact {
                    city: "Abu Dhabi",
                    country: "UAE",
                    grand_prix: "Abu Dhabi Grand Prix",
                    street: false,
                },
            ),
        ]
        .into_iter()
        .collect();

        let country_continent: HashMap<&'static str, &'static str> = [
            ("Malaysia", "Asia"),
            ("Italy", "Europe"),
            ("UK", "Europe"),
            ("Monaco", "Europe"),
            ("Singapore", "Asia"),
            ("Japan", "Asia"),
            ("China", "Asia"),
            ("Belgium", "Europe"),
            ("Canada", "North America"),
            ("Bahrain", "Asia"),
            ("Brazil", "South America"),
            ("UAE", "Asia"),
            ("Germany", "Europe"),
            ("France", "Europe"),
            ("Spain", "Europe"),
            ("Netherlands", "Europe"),
            ("Poland", "Europe"),
            ("Austria", "Europe"),
            ("Czech Republic", "Europe"),
            ("Slovakia", "Europe"),
            ("Switzerland", "Europe"),
            ("Norway", "Europe"),
            ("USA", "North America"),
        ]
        .into_iter()
        .collect();

        let eu_members: HashSet<&'static str> = [
            "Italy",
            "Belgium",
            "Germany",
            "France",
            "Spain",
            "Netherlands",
            "Poland",
            "Austria",
            "Czech Republic",
            "Slovakia",
        ]
        .into_iter()
        .collect();

        let classic_movies: HashSet<&'static str> = [
            "Titanic",
            "Casablanca",
            "Gone with the Wind",
            "Roman Holiday",
            "Doctor Zhivago",
            "An Affair to Remember",
            "West Side Story",
            "Breakfast at Tiffany's",
            "Ghost",
            "Dirty Dancing",
        ]
        .into_iter()
        .collect();

        let company_verticals: HashMap<&'static str, &'static str> = [
            ("NorthMart", "retail"),
            ("ShopRight", "retail"),
            ("Cartwheel Stores", "retail"),
            ("Basket & Co", "retail"),
            ("Vertex Systems", "technology"),
            ("CloudNine Software", "technology"),
            ("Quanta Devices", "technology"),
            ("First Meridian Bank", "finance"),
            ("Argent Capital", "finance"),
            ("Helix Pharma", "healthcare"),
            ("CarePoint Clinics", "healthcare"),
            ("TransGlobal Freight", "logistics"),
        ]
        .into_iter()
        .collect();

        KnowledgeBase {
            config,
            regions,
            heights_cm,
            circuits,
            country_continent,
            eu_members,
            classic_movies,
            company_verticals,
        }
    }

    /// Deterministic per-fact *recognition*: can the model confirm this
    /// fact when asked about it directly?
    pub fn recalls(&self, fact_key: &str) -> bool {
        self.fact_fraction(fact_key) < self.config.coverage
    }

    /// Deterministic per-fact *free recall*: does this fact surface when
    /// the model must enumerate from memory (e.g. inline an IN-list into
    /// SQL)? Uses the same per-fact draw, so everything enumerable is
    /// also recognizable.
    pub fn recalls_enumerated(&self, fact_key: &str) -> bool {
        self.fact_fraction(fact_key) < self.config.enumeration_coverage
    }

    fn fact_fraction(&self, fact_key: &str) -> f64 {
        let mut h = DefaultHasher::new();
        self.config.seed.hash(&mut h);
        fact_key.to_ascii_lowercase().hash(&mut h);
        (h.finish() % 10_000) as f64 / 10_000.0
    }

    /// Region names the model knows about.
    pub fn known_regions(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.regions.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Is `city` in `region`? `None` when the model can't recall the fact.
    pub fn is_city_in_region(&self, city: &str, region: &str) -> Option<bool> {
        let set = self.regions.get(region.to_ascii_lowercase().as_str())?;
        let key = format!("region:{region}:{city}");
        if !self.recalls(&key) {
            return None;
        }
        Some(set.iter().any(|c| c.eq_ignore_ascii_case(city)))
    }

    /// The cities the model can *enumerate* for `region` (free recall —
    /// a strict subset of what it can recognize).
    pub fn recalled_cities_in_region(&self, region: &str) -> Vec<&'static str> {
        let Some(set) = self.regions.get(region.to_ascii_lowercase().as_str()) else {
            return Vec::new();
        };
        let mut v: Vec<&'static str> = set
            .iter()
            .copied()
            .filter(|c| self.recalls_enumerated(&format!("region:{region}:{c}")))
            .collect();
        v.sort_unstable();
        v
    }

    /// Ground-truth city list for a region (oracle use only).
    pub fn true_cities_in_region(&self, region: &str) -> Vec<&'static str> {
        let Some(set) = self.regions.get(region.to_ascii_lowercase().as_str()) else {
            return Vec::new();
        };
        let mut v: Vec<&'static str> = set.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// A famous person's height in cm, if recalled.
    pub fn person_height_cm(&self, name: &str) -> Option<f64> {
        let (key, height) = self
            .heights_cm
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))?;
        if self.recalls(&format!("height:{key}")) {
            Some(*height)
        } else {
            None
        }
    }

    /// Ground-truth height (oracle use only).
    pub fn true_person_height_cm(&self, name: &str) -> Option<f64> {
        self.heights_cm
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, h)| *h)
    }

    /// Facts about a circuit, if recalled.
    pub fn circuit_fact(&self, circuit: &str) -> Option<&CircuitFact> {
        let (key, fact) = self
            .circuits
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(circuit))?;
        if self.recalls(&format!("circuit:{key}")) {
            Some(fact)
        } else {
            None
        }
    }

    /// Ground-truth circuit fact (oracle use only).
    pub fn true_circuit_fact(&self, circuit: &str) -> Option<&CircuitFact> {
        self.circuits
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(circuit))
            .map(|(_, f)| f)
    }

    /// All circuit names in the knowledge base.
    pub fn circuit_names(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.circuits.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The continent of a country, if recalled.
    pub fn country_continent(&self, country: &str) -> Option<&'static str> {
        let (key, cont) = self
            .country_continent
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(country))?;
        if self.recalls(&format!("continent:{key}")) {
            Some(cont)
        } else {
            None
        }
    }

    /// Ground-truth continent (oracle use only).
    pub fn true_country_continent(&self, country: &str) -> Option<&'static str> {
        self.country_continent
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(country))
            .map(|(_, c)| *c)
    }

    /// Is the country an EU member? `None` if not recalled.
    pub fn is_eu_member(&self, country: &str) -> Option<bool> {
        if !self
            .country_continent
            .keys()
            .any(|k| k.eq_ignore_ascii_case(country))
        {
            return None;
        }
        if !self.recalls(&format!("eu:{}", country.to_ascii_lowercase())) {
            return None;
        }
        Some(
            self.eu_members
                .iter()
                .any(|c| c.eq_ignore_ascii_case(country)),
        )
    }

    /// Ground-truth EU membership (oracle use only).
    pub fn true_is_eu_member(&self, country: &str) -> bool {
        self.eu_members
            .iter()
            .any(|c| c.eq_ignore_ascii_case(country))
    }

    /// Is this film considered a classic? `None` if not recalled.
    pub fn is_classic_movie(&self, title: &str) -> Option<bool> {
        if !self.recalls(&format!("classic:{}", title.to_ascii_lowercase())) {
            return None;
        }
        Some(
            self.classic_movies
                .iter()
                .any(|m| m.eq_ignore_ascii_case(title)),
        )
    }

    /// Ground-truth classic flag (oracle use only).
    pub fn true_is_classic_movie(&self, title: &str) -> bool {
        self.classic_movies
            .iter()
            .any(|m| m.eq_ignore_ascii_case(title))
    }

    /// A company's business vertical, if recalled.
    pub fn company_vertical(&self, company: &str) -> Option<&'static str> {
        let (key, vertical) = self
            .company_verticals
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(company))?;
        if self.recalls(&format!("vertical:{key}")) {
            Some(vertical)
        } else {
            None
        }
    }

    /// Ground-truth vertical (oracle use only).
    pub fn true_company_vertical(&self, company: &str) -> Option<&'static str> {
        self.company_verticals
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(company))
            .map(|(_, v)| *v)
    }

    /// EU member countries the model can recall (for SQL inlining).
    pub fn recalled_eu_members(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self
            .eu_members
            .iter()
            .copied()
            .filter(|c| self.recalls_enumerated(&format!("eu:{}", c.to_ascii_lowercase())))
            .collect();
        v.sort_unstable();
        v
    }

    /// Circuits the model believes are on `continent` (subject to recall).
    pub fn recalled_circuits_in_continent(&self, continent: &str) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self
            .circuits
            .iter()
            .filter(|(name, fact)| {
                self.recalls_enumerated(&format!("circuit:{name}"))
                    && self
                        .country_continent
                        .get(fact.country)
                        .map(|c| c.eq_ignore_ascii_case(continent))
                        .unwrap_or(false)
            })
            .map(|(name, _)| *name)
            .collect();
        v.sort_unstable();
        v
    }

    /// Ground-truth circuits on a continent (oracle use only).
    pub fn true_circuits_in_continent(&self, continent: &str) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self
            .circuits
            .iter()
            .filter(|(_, fact)| {
                self.country_continent
                    .get(fact.country)
                    .map(|c| c.eq_ignore_ascii_case(continent))
                    .unwrap_or(false)
            })
            .map(|(name, _)| *name)
            .collect();
        v.sort_unstable();
        v
    }

    /// Classic films the model can recall (for SQL inlining).
    pub fn recalled_classics(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self
            .classic_movies
            .iter()
            .copied()
            .filter(|m| self.recalls_enumerated(&format!("classic:{}", m.to_ascii_lowercase())))
            .collect();
        v.sort_unstable();
        v
    }

    /// Companies the model believes are in `vertical` (subject to recall).
    pub fn recalled_companies_in_vertical(&self, vertical: &str) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self
            .company_verticals
            .iter()
            .filter(|(name, v0)| {
                v0.eq_ignore_ascii_case(vertical)
                    && self.recalls_enumerated(&format!("vertical:{name}"))
            })
            .map(|(name, _)| *name)
            .collect();
        v.sort_unstable();
        v
    }

    /// Ground-truth companies in a vertical (oracle use only).
    pub fn true_companies_in_vertical(&self, vertical: &str) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self
            .company_verticals
            .iter()
            .filter(|(_, v0)| v0.eq_ignore_ascii_case(vertical))
            .map(|(name, _)| *name)
            .collect();
        v.sort_unstable();
        v
    }

    /// Ground-truth EU members (oracle use only).
    pub fn true_eu_members(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.eu_members.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Ground-truth classics (oracle use only).
    pub fn true_classics(&self) -> Vec<&'static str> {
        let mut v: Vec<&'static str> = self.classic_movies.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// The configured coverage.
    pub fn coverage(&self) -> f64 {
        self.config.coverage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full() -> KnowledgeBase {
        KnowledgeBase::new(KnowledgeConfig {
            coverage: 1.0,
            enumeration_coverage: 1.0,
            seed: 1,
        })
    }

    #[test]
    fn regions_with_full_coverage() {
        let kb = full();
        assert_eq!(
            kb.is_city_in_region("Palo Alto", "Silicon Valley"),
            Some(true)
        );
        assert_eq!(
            kb.is_city_in_region("Fresno", "silicon valley"),
            Some(false)
        );
        assert_eq!(kb.is_city_in_region("Palo Alto", "Atlantis"), None);
        assert!(kb
            .recalled_cities_in_region("bay area")
            .contains(&"Berkeley"));
    }

    #[test]
    fn partial_coverage_drops_some_facts() {
        let kb = KnowledgeBase::new(KnowledgeConfig {
            coverage: 0.5,
            enumeration_coverage: 0.5,
            seed: 42,
        });
        let recalled = kb.recalled_cities_in_region("bay area");
        let all = kb.true_cities_in_region("bay area");
        assert!(recalled.len() < all.len());
        assert!(!recalled.is_empty());
        // Determinism: same config, same result.
        let kb2 = KnowledgeBase::new(KnowledgeConfig {
            coverage: 0.5,
            enumeration_coverage: 0.5,
            seed: 42,
        });
        assert_eq!(recalled, kb2.recalled_cities_in_region("bay area"));
    }

    #[test]
    fn heights() {
        let kb = full();
        assert_eq!(kb.person_height_cm("stephen curry"), Some(188.0));
        assert_eq!(kb.person_height_cm("Nobody Famous"), None);
        assert_eq!(kb.true_person_height_cm("Peter Crouch"), Some(201.0));
    }

    #[test]
    fn circuits_and_continents() {
        let kb = full();
        let sepang = kb.circuit_fact("Sepang International Circuit").unwrap();
        assert_eq!(sepang.country, "Malaysia");
        assert_eq!(sepang.grand_prix, "Malaysian Grand Prix");
        assert_eq!(kb.country_continent("Malaysia"), Some("Asia"));
        assert_eq!(kb.country_continent("Italy"), Some("Europe"));
        assert!(kb.circuit_names().len() >= 10);
    }

    #[test]
    fn eu_membership() {
        let kb = full();
        assert_eq!(kb.is_eu_member("Italy"), Some(true));
        assert_eq!(kb.is_eu_member("UK"), Some(false));
        assert_eq!(kb.is_eu_member("Narnia"), None);
    }

    #[test]
    fn classics_and_verticals() {
        let kb = full();
        assert_eq!(kb.is_classic_movie("Titanic"), Some(true));
        assert_eq!(kb.is_classic_movie("Sharknado"), Some(false));
        assert_eq!(kb.company_vertical("NorthMart"), Some("retail"));
        assert_eq!(kb.company_vertical("Unknown Corp"), None);
    }

    #[test]
    fn recall_is_deterministic_and_seed_sensitive() {
        let a = KnowledgeBase::new(KnowledgeConfig {
            coverage: 0.5,
            enumeration_coverage: 0.5,
            seed: 1,
        });
        let b = KnowledgeBase::new(KnowledgeConfig {
            coverage: 0.5,
            enumeration_coverage: 0.5,
            seed: 2,
        });
        let keys: Vec<String> = (0..200).map(|i| format!("fact{i}")).collect();
        let ra: Vec<bool> = keys.iter().map(|k| a.recalls(k)).collect();
        let ra2: Vec<bool> = keys.iter().map(|k| a.recalls(k)).collect();
        let rb: Vec<bool> = keys.iter().map(|k| b.recalls(k)).collect();
        assert_eq!(ra, ra2);
        assert_ne!(ra, rb);
        let frac = ra.iter().filter(|x| **x).count() as f64 / ra.len() as f64;
        assert!((0.35..0.65).contains(&frac), "got {frac}");
    }
}
