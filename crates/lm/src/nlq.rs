//! Natural-language query templates: structured form, renderer, parser.
//!
//! TAG-Bench builds its questions by *modifying BIRD queries with
//! knowledge or reasoning clauses* (§4.1). We reproduce that pipeline
//! with an explicit structured query form ([`NlQuery`]): the benchmark
//! constructs a structure, renders it to canonical English, and hands
//! only the English to the methods under test. The simulated LM parses
//! the English back into the structure — standing in for an instruction-
//! tuned model's (reliable) reading comprehension — while its *knowledge*
//! and *computation* remain imperfect, which is where the paper's
//! failure modes live.
//!
//! `parse(render(q)) == q` is property-tested below.

use std::fmt::Write as _;

/// Comparison operators appearing in questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// strictly greater than
    Over,
    /// strictly less than
    Under,
}

/// Semantic (reasoning) properties of text the benchmark asks about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemProperty {
    /// Positive sentiment.
    Positive,
    /// Negative sentiment.
    Negative,
    /// Sarcastic tone.
    Sarcastic,
    /// Technical content.
    Technical,
}

impl SemProperty {
    fn word(self) -> &'static str {
        match self {
            SemProperty::Positive => "positive",
            SemProperty::Negative => "negative",
            SemProperty::Sarcastic => "sarcastic",
            SemProperty::Technical => "technical",
        }
    }

    fn from_word(w: &str) -> Option<SemProperty> {
        match w {
            "positive" => Some(SemProperty::Positive),
            "negative" => Some(SemProperty::Negative),
            "sarcastic" => Some(SemProperty::Sarcastic),
            "technical" => Some(SemProperty::Technical),
            _ => None,
        }
    }
}

/// One filter clause in a question.
#[derive(Debug, Clone, PartialEq)]
pub enum NlFilter {
    /// `with {attr} over/under {value}` — plain relational predicate.
    NumCmp {
        /// Column name.
        attr: String,
        /// Direction.
        op: CmpOp,
        /// Threshold.
        value: f64,
    },
    /// `with {attr} equal to '{value}'` — plain relational predicate.
    TextEq {
        /// Column name.
        attr: String,
        /// Required value.
        value: String,
    },
    /// `located in the {region} region` — world knowledge (cities).
    InRegion {
        /// Region name, e.g. "Silicon Valley".
        region: String,
    },
    /// `taller than {person}` — world knowledge (heights).
    TallerThan {
        /// The person to compare against.
        person: String,
    },
    /// `from European Union countries` — world knowledge.
    EuCountry,
    /// `held at circuits in {continent}` — world knowledge (geography).
    CircuitContinent {
        /// Continent name.
        continent: String,
    },
    /// `held on {circuit}` — plain predicate used by aggregation queries.
    AtCircuit {
        /// Circuit name.
        circuit: String,
    },
    /// `considered a classic` — world knowledge (film canon).
    ClassicMovie,
    /// `in the {vertical} vertical` — world knowledge (business).
    VerticalIs {
        /// Vertical name, e.g. "retail".
        vertical: String,
    },
    /// `whose {attr} is {property}` — semantic reasoning over text.
    Semantic {
        /// Text column the property applies to.
        attr: String,
        /// The property.
        property: SemProperty,
    },
}

impl NlFilter {
    /// Does this filter require world knowledge (vs. data or reasoning)?
    pub fn needs_knowledge(&self) -> bool {
        matches!(
            self,
            NlFilter::InRegion { .. }
                | NlFilter::TallerThan { .. }
                | NlFilter::EuCountry
                | NlFilter::CircuitContinent { .. }
                | NlFilter::ClassicMovie
                | NlFilter::VerticalIs { .. }
        )
    }

    /// Does this filter require semantic reasoning over text?
    pub fn needs_reasoning(&self) -> bool {
        matches!(self, NlFilter::Semantic { .. })
    }

    /// Is this expressible in plain relational algebra?
    pub fn is_relational(&self) -> bool {
        !self.needs_knowledge() && !self.needs_reasoning()
    }

    fn render(&self) -> String {
        match self {
            NlFilter::NumCmp { attr, op, value } => {
                let dir = match op {
                    CmpOp::Over => "over",
                    CmpOp::Under => "under",
                };
                format!("with {attr} {dir} {}", fmt_num(*value))
            }
            NlFilter::TextEq { attr, value } => {
                format!("with {attr} equal to '{value}'")
            }
            NlFilter::InRegion { region } => format!("located in the {region} region"),
            NlFilter::TallerThan { person } => format!("taller than {person}"),
            NlFilter::EuCountry => "from European Union countries".to_owned(),
            NlFilter::CircuitContinent { continent } => {
                format!("held at circuits in {continent}")
            }
            NlFilter::AtCircuit { circuit } => format!("held on {circuit}"),
            NlFilter::ClassicMovie => "considered a classic".to_owned(),
            NlFilter::VerticalIs { vertical } => format!("in the {vertical} vertical"),
            NlFilter::Semantic { attr, property } => {
                format!("whose {attr} is {}", property.word())
            }
        }
    }

    fn parse(text: &str) -> Option<NlFilter> {
        let t = text.trim();
        if let Some(rest) = t.strip_prefix("with ") {
            if let Some((attr, value)) = split_once_str(rest, " equal to '") {
                let value = value.strip_suffix('\'')?;
                return Some(NlFilter::TextEq {
                    attr: attr.to_owned(),
                    value: value.to_owned(),
                });
            }
            if let Some((attr, v)) = split_once_str(rest, " over ") {
                return Some(NlFilter::NumCmp {
                    attr: attr.to_owned(),
                    op: CmpOp::Over,
                    value: v.parse().ok()?,
                });
            }
            if let Some((attr, v)) = split_once_str(rest, " under ") {
                return Some(NlFilter::NumCmp {
                    attr: attr.to_owned(),
                    op: CmpOp::Under,
                    value: v.parse().ok()?,
                });
            }
            return None;
        }
        if let Some(rest) = t.strip_prefix("located in the ") {
            let region = rest.strip_suffix(" region")?;
            return Some(NlFilter::InRegion {
                region: region.to_owned(),
            });
        }
        if let Some(person) = t.strip_prefix("taller than ") {
            return Some(NlFilter::TallerThan {
                person: person.to_owned(),
            });
        }
        if t == "from European Union countries" {
            return Some(NlFilter::EuCountry);
        }
        if let Some(continent) = t.strip_prefix("held at circuits in ") {
            return Some(NlFilter::CircuitContinent {
                continent: continent.to_owned(),
            });
        }
        if let Some(circuit) = t.strip_prefix("held on ") {
            return Some(NlFilter::AtCircuit {
                circuit: circuit.to_owned(),
            });
        }
        if t == "considered a classic" {
            return Some(NlFilter::ClassicMovie);
        }
        if let Some(rest) = t.strip_prefix("in the ") {
            let vertical = rest.strip_suffix(" vertical")?;
            return Some(NlFilter::VerticalIs {
                vertical: vertical.to_owned(),
            });
        }
        if let Some(rest) = t.strip_prefix("whose ") {
            let (attr, word) = split_once_str(rest, " is ")?;
            let property = SemProperty::from_word(word)?;
            return Some(NlFilter::Semantic {
                attr: attr.to_owned(),
                property,
            });
        }
        None
    }
}

/// A structured TAG-Bench question.
#[derive(Debug, Clone, PartialEq)]
pub enum NlQuery {
    /// Match-based: one attribute of the single best row under filters.
    /// "What is the `{select_attr}` of the `{entity}` with the
    /// highest/lowest `{rank_attr}` among those `{filters}`?"
    Superlative {
        /// Entity noun = table name (plural), e.g. "schools".
        entity: String,
        /// Attribute to return.
        select_attr: String,
        /// Attribute ranked on.
        rank_attr: String,
        /// highest (true) or lowest (false).
        highest: bool,
        /// Filter clauses.
        filters: Vec<NlFilter>,
    },
    /// Comparison: "How many `{entity}` `{filters}` are there?"
    Count {
        /// Entity noun = table name.
        entity: String,
        /// Filter clauses.
        filters: Vec<NlFilter>,
    },
    /// Match-based list: "List the `{select_attr}` of `{entity}` `{filters}`."
    List {
        /// Entity noun = table name.
        entity: String,
        /// Attribute to return (one per matching row).
        select_attr: String,
        /// Filter clauses.
        filters: Vec<NlFilter>,
    },
    /// Ranking with relational pre-cut and semantic ordering:
    /// "Of the `{k}` `{entity}` with the highest `{rank_attr}`, list their
    /// `{select_attr}` in order of most `{property}` `{on_attr}` to least
    /// `{property}` `{on_attr}`."
    SemanticRank {
        /// Entity noun = table name.
        entity: String,
        /// Attribute to return, in semantic order.
        select_attr: String,
        /// Pre-cut ranking attribute.
        rank_attr: String,
        /// Pre-cut size.
        k: usize,
        /// The ordering property.
        property: SemProperty,
        /// Text attribute the property is judged on.
        on_attr: String,
    },
    /// Ranking by a plain attribute under (possibly non-relational)
    /// filters: "List the top `{k}` `{entity}` by `{rank_attr}`: give
    /// their `{select_attr}` among those `{filters}`."
    TopK {
        /// Entity noun = table name.
        entity: String,
        /// Attribute to return.
        select_attr: String,
        /// Ranking attribute.
        rank_attr: String,
        /// Number of rows.
        k: usize,
        /// highest (true) or lowest (false).
        highest: bool,
        /// Filter clauses.
        filters: Vec<NlFilter>,
    },
    /// Aggregation: "Summarize the `{topic}` of `{entity}` `{filters}`."
    Summarize {
        /// Entity noun = table name.
        entity: String,
        /// What to summarize, e.g. "comments" (display only).
        topic: String,
        /// Filter clauses.
        filters: Vec<NlFilter>,
    },
    /// Aggregation (Figure 2 form): "Provide information about the
    /// `{entity}` `{filters}`."
    ProvideInfo {
        /// Entity noun = table name.
        entity: String,
        /// Filter clauses.
        filters: Vec<NlFilter>,
    },
}

impl NlQuery {
    /// All filters of the query.
    pub fn filters(&self) -> &[NlFilter] {
        match self {
            NlQuery::Superlative { filters, .. }
            | NlQuery::Count { filters, .. }
            | NlQuery::List { filters, .. }
            | NlQuery::TopK { filters, .. }
            | NlQuery::Summarize { filters, .. }
            | NlQuery::ProvideInfo { filters, .. } => filters,
            NlQuery::SemanticRank { .. } => &[],
        }
    }

    /// Does answering require world knowledge?
    pub fn needs_knowledge(&self) -> bool {
        self.filters().iter().any(NlFilter::needs_knowledge)
    }

    /// Does answering require semantic reasoning?
    pub fn needs_reasoning(&self) -> bool {
        matches!(
            self,
            NlQuery::SemanticRank { .. } | NlQuery::Summarize { .. }
        ) || self.filters().iter().any(NlFilter::needs_reasoning)
    }

    /// The Summarize topic column, if this is a Summarize query.
    pub fn topic(&self) -> Option<&str> {
        match self {
            NlQuery::Summarize { topic, .. } => Some(topic),
            _ => None,
        }
    }

    /// The entity noun (= table name).
    pub fn entity(&self) -> &str {
        match self {
            NlQuery::Superlative { entity, .. }
            | NlQuery::Count { entity, .. }
            | NlQuery::List { entity, .. }
            | NlQuery::SemanticRank { entity, .. }
            | NlQuery::TopK { entity, .. }
            | NlQuery::Summarize { entity, .. }
            | NlQuery::ProvideInfo { entity, .. } => entity,
        }
    }

    /// Render to canonical English.
    pub fn render(&self) -> String {
        match self {
            NlQuery::Superlative {
                entity,
                select_attr,
                rank_attr,
                highest,
                filters,
            } => {
                let dir = if *highest { "highest" } else { "lowest" };
                let mut s =
                    format!("What is the {select_attr} of the {entity} with the {dir} {rank_attr}");
                if !filters.is_empty() {
                    let _ = write!(s, " among those {}", render_filters(filters));
                }
                s.push('?');
                s
            }
            NlQuery::Count { entity, filters } => {
                if filters.is_empty() {
                    format!("How many {entity} are there?")
                } else {
                    format!("How many {entity} {} are there?", render_filters(filters))
                }
            }
            NlQuery::List {
                entity,
                select_attr,
                filters,
            } => {
                if filters.is_empty() {
                    format!("List the {select_attr} of {entity}.")
                } else {
                    format!(
                        "List the {select_attr} of {entity} {}.",
                        render_filters(filters)
                    )
                }
            }
            NlQuery::SemanticRank {
                entity,
                select_attr,
                rank_attr,
                k,
                property,
                on_attr,
            } => format!(
                "Of the {k} {entity} with the highest {rank_attr}, list their \
                 {select_attr} in order of most {p} {on_attr} to least {p} {on_attr}.",
                p = property.word()
            ),
            NlQuery::TopK {
                entity,
                select_attr,
                rank_attr,
                k,
                highest,
                filters,
            } => {
                let dir = if *highest { "top" } else { "bottom" };
                let mut s =
                    format!("List the {dir} {k} {entity} by {rank_attr}: give their {select_attr}");
                if !filters.is_empty() {
                    let _ = write!(s, " among those {}", render_filters(filters));
                }
                s.push('.');
                s
            }
            NlQuery::Summarize {
                entity,
                topic,
                filters,
            } => {
                if filters.is_empty() {
                    format!("Summarize the {topic} of {entity}.")
                } else {
                    format!(
                        "Summarize the {topic} of {entity} {}.",
                        render_filters(filters)
                    )
                }
            }
            NlQuery::ProvideInfo { entity, filters } => {
                if filters.is_empty() {
                    format!("Provide information about the {entity}.")
                } else {
                    format!(
                        "Provide information about the {entity} {}.",
                        render_filters(filters)
                    )
                }
            }
        }
    }

    /// Parse canonical English back to the structure.
    pub fn parse(text: &str) -> Option<NlQuery> {
        let t = text.trim();
        if let Some(rest) = t.strip_prefix("What is the ") {
            let rest = rest.strip_suffix('?')?;
            let (select_attr, rest) = split_once_str(rest, " of the ")?;
            let (entity, rest) = split_once_str(rest, " with the ")?;
            let (dir, rest) = split_once_str(rest, " ")?;
            let highest = match dir {
                "highest" => true,
                "lowest" => false,
                _ => return None,
            };
            let (rank_attr, filters) = match split_once_str(rest, " among those ") {
                Some((r, f)) => (r, parse_filters(f)?),
                None => (rest, Vec::new()),
            };
            return Some(NlQuery::Superlative {
                entity: entity.to_owned(),
                select_attr: select_attr.to_owned(),
                rank_attr: rank_attr.to_owned(),
                highest,
                filters,
            });
        }
        if let Some(rest) = t.strip_prefix("How many ") {
            let rest = rest.strip_suffix(" are there?")?;
            let (entity, filters) = match split_entity_filters(rest) {
                Some((e, f)) => (e, f),
                None => (rest, Vec::new()),
            };
            return Some(NlQuery::Count {
                entity: entity.to_owned(),
                filters,
            });
        }
        if let Some(rest) = t.strip_prefix("Of the ") {
            let rest = rest.strip_suffix('.')?;
            let (k, rest) = split_once_str(rest, " ")?;
            let (entity, rest) = split_once_str(rest, " with the highest ")?;
            let (rank_attr, rest) = split_once_str(rest, ", list their ")?;
            let (select_attr, rest) = split_once_str(rest, " in order of most ")?;
            let (p1, p2) = split_once_str(rest, " to least ")?;
            if p1 != p2 {
                return None;
            }
            let (word, on_attr) = split_once_str(p1, " ")?;
            return Some(NlQuery::SemanticRank {
                entity: entity.to_owned(),
                select_attr: select_attr.to_owned(),
                rank_attr: rank_attr.to_owned(),
                k: k.parse().ok()?,
                property: SemProperty::from_word(word)?,
                on_attr: on_attr.to_owned(),
            });
        }
        if let Some(rest) = t.strip_prefix("List the ") {
            let rest = rest.strip_suffix('.')?;
            // TopK form?
            for (dir_word, highest) in [("top ", true), ("bottom ", false)] {
                if let Some(r) = rest.strip_prefix(dir_word) {
                    let (k, r) = split_once_str(r, " ")?;
                    let (entity, r) = split_once_str(r, " by ")?;
                    let (rank_attr, r) = split_once_str(r, ": give their ")?;
                    let (select_attr, filters) = match split_once_str(r, " among those ") {
                        Some((s, f)) => (s, parse_filters(f)?),
                        None => (r, Vec::new()),
                    };
                    return Some(NlQuery::TopK {
                        entity: entity.to_owned(),
                        select_attr: select_attr.to_owned(),
                        rank_attr: rank_attr.to_owned(),
                        k: k.parse().ok()?,
                        highest,
                        filters,
                    });
                }
            }
            let (select_attr, rest) = split_once_str(rest, " of ")?;
            let (entity, filters) = match split_entity_filters(rest) {
                Some((e, f)) => (e, f),
                None => (rest, Vec::new()),
            };
            return Some(NlQuery::List {
                entity: entity.to_owned(),
                select_attr: select_attr.to_owned(),
                filters,
            });
        }
        if let Some(rest) = t.strip_prefix("Summarize the ") {
            let rest = rest.strip_suffix('.')?;
            let (topic, rest) = split_once_str(rest, " of ")?;
            let (entity, filters) = match split_entity_filters(rest) {
                Some((e, f)) => (e, f),
                None => (rest, Vec::new()),
            };
            return Some(NlQuery::Summarize {
                entity: entity.to_owned(),
                topic: topic.to_owned(),
                filters,
            });
        }
        if let Some(rest) = t.strip_prefix("Provide information about the ") {
            let rest = rest.strip_suffix('.')?;
            let (entity, filters) = match split_entity_filters(rest) {
                Some((e, f)) => (e, f),
                None => (rest, Vec::new()),
            };
            return Some(NlQuery::ProvideInfo {
                entity: entity.to_owned(),
                filters,
            });
        }
        None
    }
}

/// Join filters as "f1, f2, and f3" (Oxford style; single filter plain).
fn render_filters(filters: &[NlFilter]) -> String {
    let parts: Vec<String> = filters.iter().map(NlFilter::render).collect();
    match parts.len() {
        0 => String::new(),
        1 => parts.into_iter().next().expect("one part"),
        2 => format!("{} and {}", parts[0], parts[1]),
        _ => {
            let (last, init) = parts.split_last().expect("nonempty");
            format!("{}, and {last}", init.join(", "))
        }
    }
}

fn parse_filters(text: &str) -> Option<Vec<NlFilter>> {
    // Undo the "a, b, and c" / "a and b" joining. Commas inside quoted
    // values are protected by splitting only on ", " outside quotes.
    let mut chunks: Vec<String> = Vec::new();
    for piece in split_outside_quotes(text, ", ") {
        chunks.push(piece);
    }
    // The final chunk may carry "and " prefixes; also a two-filter join
    // has no comma at all.
    let mut flat: Vec<String> = Vec::new();
    for (i, chunk) in chunks.iter().enumerate() {
        let c = chunk.trim();
        let c = c.strip_prefix("and ").unwrap_or(c);
        if i == chunks.len() - 1 && chunks.len() == 1 {
            // maybe "x and y" with no comma
            if let Some((a, b)) = try_split_and(c) {
                flat.push(a);
                flat.push(b);
                continue;
            }
        }
        flat.push(c.to_owned());
    }
    let mut out = Vec::with_capacity(flat.len());
    for c in &flat {
        out.push(NlFilter::parse(c)?);
    }
    Some(out)
}

/// Try to split "x and y" such that both halves parse as filters.
fn try_split_and(text: &str) -> Option<(String, String)> {
    let mut start = 0;
    while let Some(pos) = text[start..].find(" and ") {
        let idx = start + pos;
        let (a, b) = (&text[..idx], &text[idx + 5..]);
        if NlFilter::parse(a).is_some() && NlFilter::parse(b).is_some() {
            return Some((a.to_owned(), b.to_owned()));
        }
        start = idx + 5;
    }
    None
}

/// Split "entity filter-string" at the first space such that the
/// remainder parses as a filter list. Entities are single nouns.
fn split_entity_filters(text: &str) -> Option<(&str, Vec<NlFilter>)> {
    let (entity, rest) = split_once_str(text, " ")?;
    let filters = parse_filters(rest)?;
    Some((entity, filters))
}

/// Split on a separator, ignoring separators inside single quotes.
fn split_outside_quotes(text: &str, sep: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut in_quote = false;
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            in_quote = !in_quote;
        }
        if !in_quote && text[i..].starts_with(sep) {
            out.push(std::mem::take(&mut current));
            i += sep.len();
            continue;
        }
        let ch_len = text[i..].chars().next().map(char::len_utf8).unwrap_or(1);
        current.push_str(&text[i..i + ch_len]);
        i += ch_len;
    }
    out.push(current);
    out
}

fn split_once_str<'a>(text: &'a str, sep: &str) -> Option<(&'a str, &'a str)> {
    let idx = text.find(sep)?;
    Some((&text[..idx], &text[idx + sep.len()..]))
}

fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.is_finite() {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(q: NlQuery) {
        let text = q.render();
        let parsed = NlQuery::parse(&text).unwrap_or_else(|| panic!("failed to parse: {text}"));
        assert_eq!(parsed, q, "text was: {text}");
    }

    #[test]
    fn superlative_round_trip() {
        round_trip(NlQuery::Superlative {
            entity: "schools".into(),
            select_attr: "GSoffered".into(),
            rank_attr: "Longitude".into(),
            highest: true,
            filters: vec![NlFilter::InRegion {
                region: "Silicon Valley".into(),
            }],
        });
    }

    #[test]
    fn count_round_trip_multi_filter() {
        round_trip(NlQuery::Count {
            entity: "players".into(),
            filters: vec![
                NlFilter::NumCmp {
                    attr: "height".into(),
                    op: CmpOp::Over,
                    value: 180.0,
                },
                NlFilter::NumCmp {
                    attr: "volley".into(),
                    op: CmpOp::Over,
                    value: 70.0,
                },
                NlFilter::TallerThan {
                    person: "Stephen Curry".into(),
                },
            ],
        });
    }

    #[test]
    fn count_no_filters() {
        round_trip(NlQuery::Count {
            entity: "races".into(),
            filters: vec![],
        });
        assert_eq!(
            NlQuery::parse("How many races are there?").unwrap(),
            NlQuery::Count {
                entity: "races".into(),
                filters: vec![]
            }
        );
    }

    #[test]
    fn semantic_rank_round_trip() {
        round_trip(NlQuery::SemanticRank {
            entity: "posts".into(),
            select_attr: "Title".into(),
            rank_attr: "ViewCount".into(),
            k: 5,
            property: SemProperty::Technical,
            on_attr: "Title".into(),
        });
    }

    #[test]
    fn topk_round_trip() {
        round_trip(NlQuery::TopK {
            entity: "schools".into(),
            select_attr: "School".into(),
            rank_attr: "AvgScrMath".into(),
            k: 3,
            highest: true,
            filters: vec![NlFilter::InRegion {
                region: "Bay Area".into(),
            }],
        });
    }

    #[test]
    fn summarize_round_trip_with_quoted_value() {
        round_trip(NlQuery::Summarize {
            entity: "comments".into(),
            topic: "Text".into(),
            filters: vec![NlFilter::TextEq {
                attr: "PostTitle".into(),
                value: "How does gentle boosting differ from AdaBoost?".into(),
            }],
        });
    }

    #[test]
    fn provide_info_round_trip() {
        round_trip(NlQuery::ProvideInfo {
            entity: "races".into(),
            filters: vec![NlFilter::AtCircuit {
                circuit: "Sepang International Circuit".into(),
            }],
        });
    }

    #[test]
    fn two_filters_and_join() {
        round_trip(NlQuery::List {
            entity: "customers".into(),
            select_attr: "CustomerID".into(),
            filters: vec![
                NlFilter::EuCountry,
                NlFilter::NumCmp {
                    attr: "Consumption".into(),
                    op: CmpOp::Under,
                    value: 500.5,
                },
            ],
        });
    }

    #[test]
    fn semantic_filter_round_trip() {
        round_trip(NlQuery::Count {
            entity: "comments".into(),
            filters: vec![NlFilter::Semantic {
                attr: "Text".into(),
                property: SemProperty::Sarcastic,
            }],
        });
    }

    #[test]
    fn classification_flags() {
        let knowledge = NlQuery::Superlative {
            entity: "schools".into(),
            select_attr: "GSoffered".into(),
            rank_attr: "Longitude".into(),
            highest: true,
            filters: vec![NlFilter::InRegion {
                region: "Silicon Valley".into(),
            }],
        };
        assert!(knowledge.needs_knowledge());
        assert!(!knowledge.needs_reasoning());
        let reasoning = NlQuery::SemanticRank {
            entity: "posts".into(),
            select_attr: "Title".into(),
            rank_attr: "ViewCount".into(),
            k: 5,
            property: SemProperty::Technical,
            on_attr: "Title".into(),
        };
        assert!(reasoning.needs_reasoning());
        assert!(!reasoning.needs_knowledge());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(NlQuery::parse("Tell me a joke").is_none());
        assert!(NlQuery::parse("How many").is_none());
        assert!(NlQuery::parse("").is_none());
    }

    #[test]
    fn exact_paper_like_strings() {
        let q = NlQuery::Superlative {
            entity: "schools".into(),
            select_attr: "GSoffered".into(),
            rank_attr: "Longitude".into(),
            highest: true,
            filters: vec![NlFilter::InRegion {
                region: "Silicon Valley".into(),
            }],
        };
        assert_eq!(
            q.render(),
            "What is the GSoffered of the schools with the highest Longitude \
             among those located in the Silicon Valley region?"
        );
        let q = NlQuery::ProvideInfo {
            entity: "races".into(),
            filters: vec![NlFilter::AtCircuit {
                circuit: "Sepang International Circuit".into(),
            }],
        };
        assert_eq!(
            q.render(),
            "Provide information about the races held on Sepang International Circuit."
        );
    }
}
