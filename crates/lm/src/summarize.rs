//! Extractive summarization.
//!
//! Stands in for the LM's free-form generation on aggregation queries
//! (e.g. "Summarize the comments…", "Provide information about the races
//! held on Sepang International Circuit"). Sentences are scored by term
//! frequency and position, then stitched together; structured rows are
//! summarized field-by-field so the output provably covers every row it
//! was given — which is exactly the property Figure 2 contrasts across
//! methods.

use std::collections::HashMap;

/// Stop words excluded from term-frequency scoring.
const STOP_WORDS: &[&str] = &[
    "the", "a", "an", "and", "or", "of", "to", "in", "on", "is", "are", "was", "were", "it",
    "this", "that", "for", "with", "as", "at", "by", "be", "from", "has", "have",
];

fn words(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric() && c != '\'')
        .filter(|w| !w.is_empty())
        .map(|w| w.to_ascii_lowercase())
        .collect()
}

/// Split text into sentences (`.`, `!`, `?` boundaries).
pub fn sentences(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = 0;
    for (i, c) in text.char_indices() {
        if matches!(c, '.' | '!' | '?') {
            let s = text[start..=i].trim();
            if !s.is_empty() {
                out.push(s);
            }
            start = i + c.len_utf8();
        }
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        out.push(tail);
    }
    out
}

/// Extractively summarize free text to at most `max_sentences` sentences,
/// keeping original order among the selected sentences.
pub fn summarize_text(text: &str, max_sentences: usize) -> String {
    let sents = sentences(text);
    if sents.len() <= max_sentences {
        return sents.join(" ");
    }
    // Term frequencies over the whole document.
    let mut tf: HashMap<String, f64> = HashMap::new();
    for w in words(text) {
        if !STOP_WORDS.contains(&w.as_str()) {
            *tf.entry(w).or_default() += 1.0;
        }
    }
    let mut scored: Vec<(usize, f64)> = sents
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let ws = words(s);
            let score: f64 = ws
                .iter()
                .map(|w| tf.get(w).copied().unwrap_or(0.0))
                .sum::<f64>()
                / (ws.len().max(1) as f64)
                // Mild lead bias: earlier sentences carry context.
                + 0.25 / (i + 1) as f64;
            (i, score)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut keep: Vec<usize> = scored.iter().take(max_sentences).map(|(i, _)| *i).collect();
    keep.sort_unstable();
    keep.iter().map(|&i| sents[i]).collect::<Vec<_>>().join(" ")
}

/// Summarize structured rows (each row = `(field, value)` pairs) into a
/// compact report: a count line plus one clause per row built from the
/// lead fields. Every input row contributes, so coverage is total.
pub fn summarize_rows(subject: &str, rows: &[Vec<(String, String)>], max_fields: usize) -> String {
    if rows.is_empty() {
        return format!("No {subject} were found in the provided data.");
    }
    let mut out = format!("Found {} {subject}. ", rows.len());
    let clauses: Vec<String> = rows
        .iter()
        .map(|row| {
            row.iter()
                .take(max_fields)
                .map(|(k, v)| format!("{k} {v}"))
                .collect::<Vec<_>>()
                .join(", ")
        })
        .collect();
    out.push_str(&clauses.join("; "));
    out.push('.');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentence_splitting() {
        let s = sentences("One. Two! Three? Four");
        assert_eq!(s, vec!["One.", "Two!", "Three?", "Four"]);
        assert!(sentences("").is_empty());
    }

    #[test]
    fn short_text_returned_whole() {
        let text = "Short text. Nothing to cut.";
        assert_eq!(summarize_text(text, 5), text);
    }

    #[test]
    fn long_text_is_shortened_and_ordered() {
        let text = "Boosting combines weak learners. The weather was nice. \
                    Boosting iterates on residuals. Lunch was pasta. \
                    Gentle boosting uses smaller steps than AdaBoost boosting.";
        let summary = summarize_text(text, 2);
        assert_eq!(sentences(&summary).len(), 2);
        // The boosting sentences dominate term frequency.
        assert!(summary.to_lowercase().contains("boosting"));
        // Selected sentences keep document order.
        if let (Some(a), Some(b)) = (
            summary.find("combines").or(summary.find("iterates")),
            summary.find("Gentle"),
        ) {
            assert!(a < b);
        }
    }

    #[test]
    fn rows_summary_covers_every_row() {
        let rows: Vec<Vec<(String, String)>> = (1999..=2017)
            .map(|y| {
                vec![
                    ("year".to_owned(), y.to_string()),
                    ("round".to_owned(), "2".to_owned()),
                ]
            })
            .collect();
        let s = summarize_rows("races", &rows, 2);
        assert!(s.starts_with("Found 19 races."));
        for y in 1999..=2017 {
            assert!(s.contains(&y.to_string()), "missing year {y}");
        }
    }

    #[test]
    fn empty_rows() {
        let s = summarize_rows("races", &[], 2);
        assert!(s.contains("No races"));
    }

    #[test]
    fn deterministic() {
        let text = "Alpha beta gamma. Delta epsilon zeta. Eta theta iota. Kappa lambda mu.";
        assert_eq!(summarize_text(text, 2), summarize_text(text, 2));
    }
}
