//! Byte-stable golden test for the Prometheus exposition format.
//!
//! The hub is built on a mock clock with a fixed set of instruments,
//! observations, exemplars, and collector samples; the rendered text
//! must match `tests/golden_expo.txt` byte for byte. Any intentional
//! format change must update the golden file in the same commit.

use std::time::Duration;
use tag_metrics::{Clock, MetricsHub, MockClock, Sample};

fn build_hub() -> (MetricsHub, MockClock) {
    let (clock, handle) = Clock::mock();
    let hub = MetricsHub::with_clock(clock);

    let ok = hub.counter(
        "tag_serve_requests_total",
        "Requests by outcome.",
        &[("outcome", "ok")],
    );
    ok.add(3);
    let err = hub.counter(
        "tag_serve_requests_total",
        "Requests by outcome.",
        &[("outcome", "err")],
    );
    err.inc();

    let occ = hub.gauge(
        "tag_semops_round_occupancy",
        "Prompts per LM batch round over the configured batch size.",
        &[("domain", "bird_f1")],
    );
    occ.set(0.75);

    let stage = hub.histogram(
        "tag_serve_stage_seconds",
        "Per-stage wall time.",
        &[("stage", "exec")],
    );
    stage.observe(Duration::from_millis(2));
    stage.observe(Duration::from_millis(2));
    stage.observe_with_exemplar(Duration::from_millis(250), 42);
    stage.observe_with_exemplar(Duration::from_secs(30), 43);

    // Shard-labeled serving instruments, as registered by the sharded
    // server: pipeline busy time is always the coordinator series, and
    // answer-cache traffic carries its internal cache-shard index.
    let pipeline = hub.histogram(
        "tag_serve_pipeline_busy_seconds",
        "Worker busy time per handled item by pipeline stage.",
        &[("stage", "exec"), ("shard", "coord")],
    );
    pipeline.observe(Duration::from_millis(4));
    hub.register_collector(|out| {
        for (shard, hits) in [("0", 2u64), ("1", 7)] {
            out.push(Sample::counter(
                "tag_serve_answer_cache_total",
                "Answer-cache lookups and evictions by event and cache shard.",
                &[("event", "hit"), ("shard", shard)],
                hits,
            ));
        }
        out.push(Sample::counter(
            "tag_serve_scatter_total",
            "Scatter-gather plan executions by outcome.",
            &[("domain", "bird_f1"), ("outcome", "pruned")],
            4,
        ));
        out.push(Sample::gauge(
            "tag_serve_shard_rows",
            "Partitioned-table rows resident on each data shard.",
            &[("domain", "bird_f1"), ("shard", "1")],
            128.0,
        ));
    });

    // The chunked-executor morsel instruments, as registered by
    // tag_sql::metrics::ExecMetrics::record_morsels / workers_gauge.
    let morsels = hub.counter(
        "tag_sqlengine_exec_morsels_total",
        "Chunk batches processed by the chunked executor, per operator.",
        &[("op", "TableScan")],
    );
    morsels.add(3);
    let chunk_rows = hub.histogram(
        "tag_sqlengine_exec_chunk_rows",
        "Rows per processed chunk batch, per operator (1 row = 1ms).",
        &[("op", "TableScan")],
    );
    chunk_rows.observe(Duration::from_millis(8192));
    let busy = hub.gauge(
        "tag_sqlengine_exec_workers_busy",
        "Morsel worker threads currently executing a task.",
        &[],
    );
    busy.set(2.0);

    hub.register_collector(|out| {
        out.push(Sample::counter(
            "tag_sqlengine_plan_cache_hits_total",
            "Plan-cache hits by domain.",
            &[("domain", "bird_f1")],
            5,
        ));
        out.push(Sample::counter(
            "tag_sqlengine_plan_cache_hits_total",
            "Plan-cache hits by domain.",
            &[("domain", "bird_codebase")],
            2,
        ));
    });

    (hub, handle)
}

#[test]
fn exposition_is_byte_stable() {
    let (hub, handle) = build_hub();
    // Observations landed in second 0; scrape five seconds later so
    // both rolling windows still cover them.
    handle.set_millis(5_000);
    let actual = hub.render();
    // Regenerate with:
    //   TAG_METRICS_UPDATE_GOLDEN=1 cargo test -p tag-metrics --test golden
    if std::env::var_os("TAG_METRICS_UPDATE_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_expo.txt");
        std::fs::write(path, &actual).expect("write golden file");
        return;
    }
    let expected = include_str!("golden_expo.txt");
    assert_eq!(
        actual, expected,
        "exposition format drifted from tests/golden_expo.txt;\n\
         if the change is intentional, update the golden file"
    );
}

#[test]
fn render_is_idempotent() {
    let (hub, handle) = build_hub();
    handle.set_millis(5_000);
    assert_eq!(hub.render(), hub.render());
}
