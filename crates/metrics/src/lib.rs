//! Workspace-wide telemetry for the TAG serving stack.
//!
//! The serve crate grew cumulative-since-start counters; this crate
//! promotes observability to a shared subsystem the whole workspace can
//! feed:
//!
//! - [`Counter`] / [`Gauge`]: single relaxed atomics, safe on hot paths.
//! - [`WindowedHistogram`]: the serve latency bucket layout plus a
//!   per-second ring of slots, so callers read *rolling* 10s/60s rates
//!   and p50/p95/p99 alongside the cumulative view. Buckets carry
//!   last-write-wins trace-id exemplars so a p99 spike links to a
//!   `TRACE <id>` lookup.
//! - [`MetricsHub`]: a registry of named instruments plus scrape-time
//!   collectors for subsystems that already keep their own counters
//!   (plan cache, semantic-op stats, batch rounds). `MetricsHub::noop()`
//!   is the null registry used by the `obs-bench` overhead gate: every
//!   instrument it hands out drops observations after one branch.
//! - [`MetricsHub::render`]: deterministic Prometheus-text exposition
//!   (`# HELP`/`# TYPE`, `_bucket{le=...}`/`_sum`/`_count`, rolling
//!   quantiles as a `<name>_window_seconds` gauge family, OpenMetrics
//!   `# {trace_id="..."}` exemplars on bucket lines).
//!
//! Naming scheme: `tag_<crate>_<subsystem>_<name>{label="..."}` —
//! see DESIGN.md §12 for the full policy.
//!
//! Clocks are injectable ([`Clock::mock`]) so window rotation is
//! deterministic under test.

#![warn(missing_docs)]

mod clock;
mod expo;
mod hub;
mod instruments;
mod window;

pub use clock::{Clock, MockClock};
pub use hub::{InstrumentKind, MetricsHub, Sample};
pub use instruments::{Counter, Gauge};
pub use window::{Quantile, WindowSnapshot, WindowedHistogram, BOUNDS, WINDOWS};
