//! Scalar instruments: counters and gauges.
//!
//! Both are a single relaxed atomic plus an `active` flag. Instruments
//! handed out by a no-op hub carry `active = false`, so the hot path
//! pays one predictable branch and no memory traffic — that is the
//! "null registry" arm of the obs-bench overhead gate.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    active: bool,
    value: AtomicU64,
}

impl Counter {
    /// An active counter starting at zero.
    pub fn new() -> Counter {
        Counter {
            active: true,
            value: AtomicU64::new(0),
        }
    }

    /// A counter that drops every increment (null-registry arm).
    pub fn noop() -> Counter {
        Counter {
            active: false,
            value: AtomicU64::new(0),
        }
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        if self.active {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// A gauge holding the latest `f64` (stored as bits in an atomic).
#[derive(Debug)]
pub struct Gauge {
    active: bool,
    bits: AtomicU64,
}

impl Gauge {
    /// An active gauge starting at 0.0.
    pub fn new() -> Gauge {
        Gauge {
            active: true,
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// A gauge that drops every set (null-registry arm).
    pub fn noop() -> Gauge {
        Gauge {
            active: false,
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Set the gauge.
    pub fn set(&self, v: f64) {
        if self.active {
            self.bits.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn noop_counter_stays_zero() {
        let c = Counter::noop();
        c.inc();
        c.add(100);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_holds_latest() {
        let g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set(-1.0);
        assert_eq!(g.get(), -1.0);
    }

    #[test]
    fn noop_gauge_stays_zero() {
        let g = Gauge::noop();
        g.set(9.0);
        assert_eq!(g.get(), 0.0);
    }
}
