//! The instrument registry shared across the workspace.
//!
//! A [`MetricsHub`] hands out named counters/gauges/histograms (idempotent
//! per name+labels, so callers can re-request instead of threading Arcs),
//! adopts pre-built histograms (the serve stage metrics construct their
//! own and register them), and runs scrape-time *collectors* — closures
//! that sample subsystems which already keep their own counters (plan
//! cache, semantic-op stats, batch rounds) without adding hot-path work.
//!
//! [`MetricsHub::noop`] is the null registry: it hands out inactive
//! instruments and renders nothing. The obs-bench overhead gate replays
//! TAG-Bench against both hubs and fails CI when the active hub costs
//! more than the threshold.

use crate::clock::Clock;
use crate::expo;
use crate::instruments::{Counter, Gauge};
use crate::window::WindowedHistogram;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// What a metric family measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrumentKind {
    /// Monotone count.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl InstrumentKind {
    pub(crate) fn type_str(&self) -> &'static str {
        match self {
            InstrumentKind::Counter => "counter",
            InstrumentKind::Gauge => "gauge",
            InstrumentKind::Histogram => "histogram",
        }
    }
}

/// One scrape-time sample produced by a collector.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric family name (`tag_<crate>_<subsystem>_<name>`).
    pub name: String,
    /// One-line family help text.
    pub help: String,
    /// Counter or gauge (collectors never emit histograms).
    pub kind: InstrumentKind,
    /// Label pairs; sorted at render time.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl Sample {
    /// A counter sample.
    pub fn counter(
        name: impl Into<String>,
        help: impl Into<String>,
        labels: &[(&str, &str)],
        value: u64,
    ) -> Sample {
        Sample {
            name: name.into(),
            help: help.into(),
            kind: InstrumentKind::Counter,
            labels: own_labels(labels),
            value: value as f64,
        }
    }

    /// A gauge sample.
    pub fn gauge(
        name: impl Into<String>,
        help: impl Into<String>,
        labels: &[(&str, &str)],
        value: f64,
    ) -> Sample {
        Sample {
            name: name.into(),
            help: help.into(),
            kind: InstrumentKind::Gauge,
            labels: own_labels(labels),
            value,
        }
    }
}

fn own_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Canonical series key: labels sorted by key, rendered `k="v"`.
pub(crate) fn label_key(labels: &[(String, String)]) -> String {
    let mut pairs: Vec<&(String, String)> = labels.iter().collect();
    pairs.sort();
    pairs
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", expo::escape_label(v)))
        .collect::<Vec<_>>()
        .join(",")
}

#[derive(Debug, Clone)]
pub(crate) enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<WindowedHistogram>),
}

#[derive(Debug)]
pub(crate) struct Family {
    pub(crate) help: String,
    pub(crate) kind: InstrumentKind,
    /// Series keyed by canonical label string.
    pub(crate) series: BTreeMap<String, Instrument>,
}

type Collector = Box<dyn Fn(&mut Vec<Sample>) + Send + Sync>;

/// Registry of named instruments plus scrape-time collectors.
pub struct MetricsHub {
    enabled: bool,
    clock: Clock,
    families: Mutex<BTreeMap<String, Family>>,
    collectors: Mutex<Vec<Collector>>,
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHub")
            .field("enabled", &self.enabled)
            .field("families", &self.families.lock().len())
            .field("collectors", &self.collectors.lock().len())
            .finish()
    }
}

impl MetricsHub {
    /// An enabled hub on the real clock.
    pub fn new() -> MetricsHub {
        MetricsHub::with_clock(Clock::real())
    }

    /// An enabled hub on the given clock (tests pass a mock).
    pub fn with_clock(clock: Clock) -> MetricsHub {
        MetricsHub {
            enabled: true,
            clock,
            families: Mutex::new(BTreeMap::new()),
            collectors: Mutex::new(Vec::new()),
        }
    }

    /// The null registry: instruments are inactive, render is empty.
    pub fn noop() -> MetricsHub {
        MetricsHub {
            enabled: false,
            clock: Clock::real(),
            families: Mutex::new(BTreeMap::new()),
            collectors: Mutex::new(Vec::new()),
        }
    }

    /// True when this hub records and renders.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Get or create a counter series. Idempotent per name+labels.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        if !self.enabled {
            return Arc::new(Counter::noop());
        }
        let owned = own_labels(labels);
        let key = label_key(&owned);
        let mut families = self.families.lock();
        let fam = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: InstrumentKind::Counter,
            series: BTreeMap::new(),
        });
        if fam.kind != InstrumentKind::Counter {
            return Arc::new(Counter::new());
        }
        match fam
            .series
            .entry(key)
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::new())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::new()),
        }
    }

    /// Get or create a gauge series. Idempotent per name+labels.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        if !self.enabled {
            return Arc::new(Gauge::noop());
        }
        let owned = own_labels(labels);
        let key = label_key(&owned);
        let mut families = self.families.lock();
        let fam = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: InstrumentKind::Gauge,
            series: BTreeMap::new(),
        });
        if fam.kind != InstrumentKind::Gauge {
            return Arc::new(Gauge::new());
        }
        match fam
            .series
            .entry(key)
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::new())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Get or create a windowed histogram series (hub clock).
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<WindowedHistogram> {
        if !self.enabled {
            return Arc::new(WindowedHistogram::noop());
        }
        let hist = Arc::new(WindowedHistogram::with_clock(self.clock.clone()));
        self.adopt_histogram(name, help, labels, hist)
    }

    /// Register a pre-built histogram under a name, or return the series
    /// that already owns the name+labels. On a no-op hub the histogram
    /// is returned unregistered (and should itself be no-op).
    pub fn adopt_histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: Arc<WindowedHistogram>,
    ) -> Arc<WindowedHistogram> {
        if !self.enabled {
            return hist;
        }
        let owned = own_labels(labels);
        let key = label_key(&owned);
        let mut families = self.families.lock();
        let fam = families.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind: InstrumentKind::Histogram,
            series: BTreeMap::new(),
        });
        if fam.kind != InstrumentKind::Histogram {
            return hist;
        }
        match fam
            .series
            .entry(key)
            .or_insert_with(|| Instrument::Histogram(Arc::clone(&hist)))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            _ => hist,
        }
    }

    /// Register a scrape-time collector. No-op on a disabled hub.
    pub fn register_collector(&self, collector: impl Fn(&mut Vec<Sample>) + Send + Sync + 'static) {
        if !self.enabled {
            return;
        }
        self.collectors.lock().push(Box::new(collector));
    }

    /// Render the Prometheus-text exposition: registered families plus
    /// collector samples, deterministically ordered. Empty on a no-op
    /// hub.
    pub fn render(&self) -> String {
        if !self.enabled {
            return String::new();
        }
        let mut collected = Vec::new();
        for c in self.collectors.lock().iter() {
            c(&mut collected);
        }
        let families = self.families.lock();
        expo::render(&families, collected)
    }
}

impl Default for MetricsHub {
    fn default() -> Self {
        MetricsHub::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn instruments_are_idempotent_per_series() {
        let hub = MetricsHub::new();
        let a = hub.counter("tag_test_hits_total", "hits", &[("shard", "0")]);
        let b = hub.counter("tag_test_hits_total", "hits", &[("shard", "0")]);
        a.inc();
        assert_eq!(b.get(), 1, "same series must share storage");
        let c = hub.counter("tag_test_hits_total", "hits", &[("shard", "1")]);
        c.add(5);
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn noop_hub_hands_out_inactive_instruments() {
        let hub = MetricsHub::noop();
        let c = hub.counter("tag_test_x_total", "x", &[]);
        c.inc();
        assert_eq!(c.get(), 0);
        let h = hub.histogram("tag_test_y_seconds", "y", &[]);
        h.observe(Duration::from_secs(1));
        assert_eq!(h.count(), 0);
        hub.register_collector(|out| out.push(Sample::counter("tag_test_z", "z", &[], 1)));
        assert_eq!(hub.render(), "");
    }

    #[test]
    fn adopted_histograms_render_under_their_name() {
        let hub = MetricsHub::new();
        let own = Arc::new(WindowedHistogram::new());
        let shared = hub.adopt_histogram("tag_test_lat_seconds", "latency", &[], own.clone());
        shared.observe(Duration::from_millis(2));
        assert_eq!(own.count(), 1);
        assert!(hub.render().contains("tag_test_lat_seconds_count 1"));
    }

    #[test]
    fn collectors_feed_render() {
        let hub = MetricsHub::new();
        hub.register_collector(|out| {
            out.push(Sample::counter(
                "tag_test_pulled_total",
                "pulled",
                &[("domain", "bird_f1")],
                3,
            ))
        });
        let text = hub.render();
        assert!(text.contains("# TYPE tag_test_pulled_total counter"));
        assert!(text.contains("tag_test_pulled_total{domain=\"bird_f1\"} 3"));
    }
}
