//! Injectable time source so window rotation is testable.
//!
//! Production code uses [`Clock::real`] (monotonic, anchored at clock
//! creation). Tests use [`Clock::mock`] and drive time by hand, which
//! makes per-second slot rotation deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Clone, Debug)]
enum Inner {
    Real(Instant),
    Mock(Arc<AtomicU64>),
}

/// A millisecond clock: real (monotonic) or mock (test-driven).
#[derive(Clone, Debug)]
pub struct Clock(Inner);

impl Clock {
    /// A monotonic clock anchored at creation time.
    pub fn real() -> Clock {
        Clock(Inner::Real(Instant::now()))
    }

    /// A mock clock starting at 0 ms, plus the handle that advances it.
    pub fn mock() -> (Clock, MockClock) {
        let cell = Arc::new(AtomicU64::new(0));
        (Clock(Inner::Mock(cell.clone())), MockClock(cell))
    }

    /// Milliseconds since the clock's epoch.
    pub fn now_millis(&self) -> u64 {
        match &self.0 {
            Inner::Real(epoch) => epoch.elapsed().as_millis() as u64,
            Inner::Mock(cell) => cell.load(Ordering::Acquire),
        }
    }

    /// Whole seconds since the clock's epoch.
    pub fn now_seconds(&self) -> u64 {
        self.now_millis() / 1000
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::real()
    }
}

/// Handle that drives a mock [`Clock`] forward.
#[derive(Clone, Debug)]
pub struct MockClock(Arc<AtomicU64>);

impl MockClock {
    /// Advance the clock by `ms` milliseconds.
    pub fn advance_millis(&self, ms: u64) {
        self.0.fetch_add(ms, Ordering::Release);
    }

    /// Set the clock to an absolute millisecond timestamp.
    pub fn set_millis(&self, ms: u64) {
        self.0.store(ms, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_clock_advances() {
        let (clock, handle) = Clock::mock();
        assert_eq!(clock.now_seconds(), 0);
        handle.advance_millis(1500);
        assert_eq!(clock.now_millis(), 1500);
        assert_eq!(clock.now_seconds(), 1);
        handle.set_millis(61_000);
        assert_eq!(clock.now_seconds(), 61);
    }

    #[test]
    fn real_clock_is_monotone() {
        let clock = Clock::real();
        let a = clock.now_millis();
        let b = clock.now_millis();
        assert!(b >= a);
    }
}
