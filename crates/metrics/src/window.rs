//! Fixed-bucket latency histogram with sliding-window aggregation.
//!
//! The bucket layout matches the serve crate's cumulative histogram
//! (16 bounds from 100µs to 10s plus an implicit +inf overflow bucket),
//! so cumulative views stay comparable across the workspace. On top of
//! that, every observation also lands in a per-second ring of
//! [`SLOTS`] slots; reading a window merges the slots stamped within
//! the last N seconds, which yields *rolling* 10s/60s counts, rates and
//! quantiles without any background thread.
//!
//! Slot rotation is lazy: the writer that first touches a slot in a new
//! second CASes the slot's stamp and zeroes it. A writer racing across
//! the ring period (64s apart) can smear a handful of observations into
//! a freshly claimed slot; windows tolerate that — the cumulative view
//! is never reset and stays exact.
//!
//! Quantiles are bucket upper bounds. When the rank lands in the +inf
//! bucket the true value is unknown, so the result is flagged as a
//! lower bound ([`Quantile::lower_bound`]) instead of silently clamping
//! to 10s.

use crate::clock::Clock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds in seconds (le semantics); an implicit
/// +inf bucket catches overflow. Mirrors the serve latency layout.
pub const BOUNDS: [f64; 16] = [
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
    5.0, 10.0,
];

/// Bucket count including the +inf overflow bucket.
const NBUCKETS: usize = BOUNDS.len() + 1;

/// Ring size in seconds; must exceed the widest window.
const SLOTS: usize = 64;

/// The rolling windows reported everywhere, in seconds.
pub const WINDOWS: [u64; 2] = [10, 60];

/// One second's worth of observations. `stamp` is the second index + 1
/// (0 = never used), so a slot can tell a live second from a stale lap.
#[derive(Debug)]
struct Slot {
    stamp: AtomicU64,
    buckets: [AtomicU64; NBUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }
}

/// A quantile estimate: the bucket upper bound covering the rank. When
/// the rank falls in the +inf bucket the estimate is only a lower bound
/// on the true latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantile {
    /// Bucket upper bound in seconds (the largest finite bound when
    /// `lower_bound` is set).
    pub seconds: f64,
    /// True when the rank landed in the +inf overflow bucket: the true
    /// value is *at least* `seconds`.
    pub lower_bound: bool,
}

impl Quantile {
    /// Render as milliseconds, with a `+` suffix when only a lower bound.
    pub fn display_ms(&self) -> String {
        let ms = self.seconds * 1e3;
        if self.lower_bound {
            format!("{ms:.1}+")
        } else {
            format!("{ms:.1}")
        }
    }
}

fn quantile_from(buckets: &[u64; NBUCKETS], count: u64, q: f64) -> Quantile {
    if count == 0 {
        return Quantile {
            seconds: 0.0,
            lower_bound: false,
        };
    }
    let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
    let mut seen = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= rank {
            if i == NBUCKETS - 1 {
                return Quantile {
                    seconds: BOUNDS[BOUNDS.len() - 1],
                    lower_bound: true,
                };
            }
            return Quantile {
                seconds: BOUNDS[i],
                lower_bound: false,
            };
        }
    }
    Quantile {
        seconds: BOUNDS[BOUNDS.len() - 1],
        lower_bound: true,
    }
}

fn bucket_index(seconds: f64) -> usize {
    BOUNDS
        .iter()
        .position(|&b| seconds <= b)
        .unwrap_or(NBUCKETS - 1)
}

/// Merged view of the slots inside one rolling window.
#[derive(Debug, Clone)]
pub struct WindowSnapshot {
    window_secs: u64,
    buckets: [u64; NBUCKETS],
    count: u64,
    sum_nanos: u64,
}

impl WindowSnapshot {
    /// The window width in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// Observations inside the window.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observations per second over the window.
    pub fn rate(&self) -> f64 {
        self.count as f64 / self.window_secs as f64
    }

    /// Mean observation in seconds (0.0 when empty).
    pub fn mean_seconds(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_nanos as f64 / 1e9 / self.count as f64
        }
    }

    /// Observations above the largest finite bound.
    pub fn overflow(&self) -> u64 {
        self.buckets[NBUCKETS - 1]
    }

    /// Quantile estimate over the window.
    pub fn quantile(&self, q: f64) -> Quantile {
        quantile_from(&self.buckets, self.count, q)
    }
}

/// A histogram with a cumulative view plus per-second slots for rolling
/// windows and per-bucket trace exemplars.
#[derive(Debug)]
pub struct WindowedHistogram {
    active: bool,
    clock: Clock,
    buckets: [AtomicU64; NBUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    slots: Vec<Slot>,
    exemplar_ids: [AtomicU64; NBUCKETS],
    exemplar_bits: [AtomicU64; NBUCKETS],
}

impl WindowedHistogram {
    /// An active histogram on a real clock.
    pub fn new() -> WindowedHistogram {
        WindowedHistogram::with_clock(Clock::real())
    }

    /// An active histogram on the given clock (tests use a mock).
    pub fn with_clock(clock: Clock) -> WindowedHistogram {
        WindowedHistogram {
            active: true,
            clock,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            slots: (0..SLOTS).map(|_| Slot::new()).collect(),
            exemplar_ids: std::array::from_fn(|_| AtomicU64::new(0)),
            exemplar_bits: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// A histogram that drops every observation (null-registry arm).
    pub fn noop() -> WindowedHistogram {
        let mut h = WindowedHistogram::with_clock(Clock::real());
        h.active = false;
        h.slots = Vec::new();
        h
    }

    /// True when observations are recorded.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Record one observation.
    pub fn observe(&self, d: Duration) {
        self.record(d, None);
    }

    /// Record one observation carrying a trace-id exemplar. The bucket
    /// the observation lands in remembers the id (last write wins), so
    /// exposition can link a slow bucket to a resident trace.
    pub fn observe_with_exemplar(&self, d: Duration, trace_id: u64) {
        self.record(d, Some(trace_id));
    }

    fn record(&self, d: Duration, trace_id: Option<u64>) {
        if !self.active {
            return;
        }
        let secs = d.as_secs_f64();
        let nanos = d.as_nanos().min(u64::MAX as u128) as u64;
        let idx = bucket_index(secs);

        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);

        if let Some(id) = trace_id {
            // Value first, id second: a torn pair can mismatch value
            // and id briefly; exemplars are diagnostics, not ledgers.
            self.exemplar_bits[idx].store(secs.to_bits(), Ordering::Relaxed);
            self.exemplar_ids[idx].store(id, Ordering::Relaxed);
        }

        let now = self.clock.now_seconds();
        let slot = &self.slots[now as usize % SLOTS];
        let stamp = now + 1;
        let cur = slot.stamp.load(Ordering::Acquire);
        if cur != stamp {
            // First writer of this second claims the slot and zeroes
            // the previous lap; losers just add to the claimed slot.
            if slot
                .stamp
                .compare_exchange(cur, stamp, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                for b in &slot.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                slot.count.store(0, Ordering::Relaxed);
                slot.sum_nanos.store(0, Ordering::Relaxed);
            }
        }
        slot.buckets[idx].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Total observations (cumulative; never reset).
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Cumulative sum of observations in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Observations above the largest finite bound (cumulative).
    pub fn overflow(&self) -> u64 {
        self.buckets[NBUCKETS - 1].load(Ordering::Relaxed)
    }

    /// Cumulative per-bucket counts (not le-cumulative), +inf last.
    pub fn bucket_counts(&self) -> [u64; NBUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Cumulative quantile estimate.
    pub fn quantile(&self, q: f64) -> Quantile {
        quantile_from(&self.bucket_counts(), self.count(), q)
    }

    /// Merge the slots stamped within the last `window_secs` seconds.
    pub fn window(&self, window_secs: u64) -> WindowSnapshot {
        let window_secs = window_secs.clamp(1, SLOTS as u64 - 1);
        let mut snap = WindowSnapshot {
            window_secs,
            buckets: [0; NBUCKETS],
            count: 0,
            sum_nanos: 0,
        };
        if !self.active {
            return snap;
        }
        let now = self.clock.now_seconds();
        let lo = now.saturating_sub(window_secs - 1);
        for slot in &self.slots {
            let stamp = slot.stamp.load(Ordering::Acquire);
            if stamp == 0 {
                continue;
            }
            let sec = stamp - 1;
            if sec < lo || sec > now {
                continue;
            }
            for (i, b) in slot.buckets.iter().enumerate() {
                snap.buckets[i] += b.load(Ordering::Relaxed);
            }
            snap.count += slot.count.load(Ordering::Relaxed);
            snap.sum_nanos += slot.sum_nanos.load(Ordering::Relaxed);
        }
        snap
    }

    /// Per-bucket exemplars as `(bucket_index, trace_id, seconds)`,
    /// ascending by bucket.
    pub fn exemplars(&self) -> Vec<(usize, u64, f64)> {
        (0..NBUCKETS)
            .filter_map(|i| {
                let id = self.exemplar_ids[i].load(Ordering::Relaxed);
                if id == 0 {
                    return None;
                }
                let secs = f64::from_bits(self.exemplar_bits[i].load(Ordering::Relaxed));
                Some((i, id, secs))
            })
            .collect()
    }

    /// The exemplar from the slowest populated bucket, if any.
    pub fn slowest_exemplar(&self) -> Option<(u64, f64)> {
        self.exemplars().pop().map(|(_, id, secs)| (id, secs))
    }
}

impl Default for WindowedHistogram {
    fn default() -> Self {
        WindowedHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cumulative_quantiles_match_fixed_layout() {
        let h = WindowedHistogram::new();
        for _ in 0..98 {
            h.observe(Duration::from_millis(3));
        }
        h.observe(Duration::from_millis(400));
        h.observe(Duration::from_secs(2));
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5);
        assert_eq!(p50.seconds, 0.005);
        assert!(!p50.lower_bound);
        let p99 = h.quantile(0.99);
        assert_eq!(p99.seconds, 0.5);
    }

    #[test]
    fn overflow_is_counted_and_flagged() {
        let h = WindowedHistogram::new();
        h.observe(Duration::from_secs(30));
        assert_eq!(h.overflow(), 1);
        let q = h.quantile(0.5);
        assert_eq!(q.seconds, 10.0);
        assert!(q.lower_bound, "+inf rank must be flagged as a lower bound");
        assert_eq!(q.display_ms(), "10000.0+");
    }

    #[test]
    fn window_rotation_under_mock_clock() {
        let (clock, handle) = Clock::mock();
        let h = WindowedHistogram::with_clock(clock);

        // Three observations in second 0.
        for _ in 0..3 {
            h.observe(Duration::from_millis(2));
        }
        assert_eq!(h.window(10).count(), 3);

        // Five seconds later: still inside the 10s window.
        handle.advance_millis(5_000);
        h.observe(Duration::from_millis(8));
        let w10 = h.window(10);
        assert_eq!(w10.count(), 4);
        assert!((w10.rate() - 0.4).abs() < 1e-9);

        // Twelve seconds in: second-0 slots have aged out of the 10s
        // window but remain in the 60s window.
        handle.set_millis(12_000);
        assert_eq!(h.window(10).count(), 1);
        assert_eq!(h.window(60).count(), 4);

        // After 70s everything has aged out of both windows, but the
        // cumulative view is intact.
        handle.set_millis(70_000);
        assert_eq!(h.window(10).count(), 0);
        assert_eq!(h.window(60).count(), 0);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn ring_lap_reclaims_slots() {
        let (clock, handle) = Clock::mock();
        let h = WindowedHistogram::with_clock(clock);
        h.observe(Duration::from_millis(1));
        // One full ring lap later the same slot index is reclaimed for
        // the new second; the old second must not leak into the window.
        handle.set_millis(64_000);
        h.observe(Duration::from_millis(1));
        assert_eq!(h.window(10).count(), 1);
        assert_eq!(h.count(), 2);
    }

    #[test]
    fn window_quantiles_see_only_recent_load() {
        let (clock, handle) = Clock::mock();
        let h = WindowedHistogram::with_clock(clock);
        // Old slow traffic...
        for _ in 0..50 {
            h.observe(Duration::from_secs(2));
        }
        handle.set_millis(30_000);
        // ...recent fast traffic.
        for _ in 0..50 {
            h.observe(Duration::from_millis(1));
        }
        assert_eq!(h.window(10).quantile(0.99).seconds, 0.001);
        // The 60s window still sees both phases.
        assert_eq!(h.window(60).quantile(0.99).seconds, 2.5);
        assert_eq!(h.quantile(0.99).seconds, 2.5);
    }

    #[test]
    fn exemplars_attach_to_buckets() {
        let h = WindowedHistogram::new();
        h.observe_with_exemplar(Duration::from_millis(2), 7);
        h.observe_with_exemplar(Duration::from_secs(4), 42);
        let ex = h.exemplars();
        assert_eq!(ex.len(), 2);
        assert_eq!(h.slowest_exemplar(), Some((42, 4.0)));
    }

    #[test]
    fn noop_histogram_records_nothing() {
        let h = WindowedHistogram::noop();
        h.observe(Duration::from_secs(1));
        h.observe_with_exemplar(Duration::from_secs(1), 9);
        assert_eq!(h.count(), 0);
        assert_eq!(h.window(10).count(), 0);
        assert!(h.exemplars().is_empty());
    }

    #[test]
    fn concurrent_observe_rotate_quantile_race() {
        // Writers hammer observations while the clock advances and a
        // reader folds windows + quantiles. The cumulative count must
        // be exact; windows must never exceed the cumulative total.
        let (clock, handle) = Clock::mock();
        let h = Arc::new(WindowedHistogram::with_clock(clock));
        let writers = 4u64;
        let per_writer = 5_000u64;
        let total = writers * per_writer;

        let mut threads = Vec::new();
        for t in 0..writers {
            let h = Arc::clone(&h);
            threads.push(std::thread::spawn(move || {
                for i in 0..per_writer {
                    h.observe_with_exemplar(Duration::from_micros(50 + (i % 900)), t * 1000 + i);
                }
            }));
        }
        let ticker = {
            let handle = handle.clone();
            std::thread::spawn(move || {
                for _ in 0..200 {
                    handle.advance_millis(500);
                    std::thread::yield_now();
                }
            })
        };
        let reader = {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let w = h.window(10);
                    assert!(w.count() <= total);
                    let q = w.quantile(0.99);
                    assert!(q.seconds >= 0.0);
                    std::thread::yield_now();
                }
            })
        };
        for t in threads {
            t.join().expect("writer panicked");
        }
        ticker.join().expect("ticker panicked");
        reader.join().expect("reader panicked");
        assert_eq!(h.count(), total);
    }
}
