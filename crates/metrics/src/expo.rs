//! Prometheus-text exposition.
//!
//! Deterministic by construction: families render in name order, series
//! in canonical-label order, and floats through Rust's shortest
//! round-trip `Display`. The same hub state always renders the same
//! bytes, which the golden test pins.
//!
//! Histogram families render the standard `_bucket{le=...}` /`_sum`/
//! `_count` triple (bucket counts are cumulative-in-le, per the text
//! format), with OpenMetrics-style `# {trace_id="..."} <value>`
//! exemplars appended to bucket lines that have one. Each histogram
//! family additionally yields two synthetic gauge families carrying the
//! rolling windows: `<base>_window_seconds{window=,quantile=}` and
//! `<base>_window_rate{window=}`, where `<base>` is the family name
//! with a trailing `_seconds` stripped.

use crate::hub::{Family, Instrument, InstrumentKind, Sample};
use crate::window::{WindowedHistogram, BOUNDS, WINDOWS};
use std::collections::BTreeMap;

/// Quantiles exposed for every rolling window.
pub(crate) const WINDOW_QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

/// Escape a label value per the exposition format.
pub(crate) fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// `name{key} value`, eliding empty braces.
fn line(name: &str, key: &str, value: &str) -> String {
    if key.is_empty() {
        format!("{name} {value}\n")
    } else {
        format!("{name}{{{key}}} {value}\n")
    }
}

/// Join a series key with extra `k="v"` pairs.
fn join_key(key: &str, extra: &str) -> String {
    if key.is_empty() {
        extra.to_string()
    } else if extra.is_empty() {
        key.to_string()
    } else {
        format!("{key},{extra}")
    }
}

#[derive(Default)]
struct Block {
    help: String,
    kind: Option<InstrumentKind>,
    lines: Vec<String>,
}

fn histogram_lines(name: &str, key: &str, hist: &WindowedHistogram) -> Vec<String> {
    let counts = hist.bucket_counts();
    let exemplars: BTreeMap<usize, (u64, f64)> = hist
        .exemplars()
        .into_iter()
        .map(|(i, id, secs)| (i, (id, secs)))
        .collect();
    let mut out = Vec::new();
    let mut cum = 0u64;
    for (i, c) in counts.iter().enumerate() {
        cum += c;
        let le = if i < BOUNDS.len() {
            fmt_f64(BOUNDS[i])
        } else {
            "+Inf".to_string()
        };
        let series = join_key(key, &format!("le=\"{le}\""));
        let mut l = format!("{name}_bucket{{{series}}} {cum}");
        if let Some((id, secs)) = exemplars.get(&i) {
            l.push_str(&format!(" # {{trace_id=\"{id}\"}} {}", fmt_f64(*secs)));
        }
        l.push('\n');
        out.push(l);
    }
    out.push(line(
        &format!("{name}_sum"),
        key,
        &fmt_f64(hist.sum_seconds()),
    ));
    out.push(line(
        &format!("{name}_count"),
        key,
        &hist.count().to_string(),
    ));
    out
}

fn window_blocks(
    name: &str,
    series: &BTreeMap<String, &WindowedHistogram>,
    blocks: &mut BTreeMap<String, Block>,
) {
    let base = name.strip_suffix("_seconds").unwrap_or(name);
    let qname = format!("{base}_window_seconds");
    let rname = format!("{base}_window_rate");
    let qblock = blocks.entry(qname.clone()).or_default();
    qblock.help = format!("Rolling-window quantiles of {name}.");
    qblock.kind = Some(InstrumentKind::Gauge);
    for (key, hist) in series {
        for w in WINDOWS {
            let snap = hist.window(w);
            for q in WINDOW_QUANTILES {
                let extra = format!("window=\"{w}s\",quantile=\"{}\"", fmt_f64(q));
                qblock.lines.push(line(
                    &qname,
                    &join_key(key, &extra),
                    &fmt_f64(snap.quantile(q).seconds),
                ));
            }
        }
    }
    let rblock = blocks.entry(rname.clone()).or_default();
    rblock.help = format!("Rolling-window observation rate of {name} (1/s).");
    rblock.kind = Some(InstrumentKind::Gauge);
    for (key, hist) in series {
        for w in WINDOWS {
            let snap = hist.window(w);
            rblock.lines.push(line(
                &rname,
                &join_key(key, &format!("window=\"{w}s\"")),
                &fmt_f64(snap.rate()),
            ));
        }
    }
}

/// Render registered families plus collector samples.
pub(crate) fn render(families: &BTreeMap<String, Family>, collected: Vec<Sample>) -> String {
    let mut blocks: BTreeMap<String, Block> = BTreeMap::new();

    for (name, fam) in families {
        let block = blocks.entry(name.clone()).or_default();
        block.help = fam.help.clone();
        block.kind = Some(fam.kind);
        let mut hist_series: BTreeMap<String, &WindowedHistogram> = BTreeMap::new();
        for (key, inst) in &fam.series {
            match inst {
                Instrument::Counter(c) => block.lines.push(line(name, key, &c.get().to_string())),
                Instrument::Gauge(g) => block.lines.push(line(name, key, &fmt_f64(g.get()))),
                Instrument::Histogram(h) => {
                    block.lines.extend(histogram_lines(name, key, h));
                    hist_series.insert(key.clone(), h.as_ref());
                }
            }
        }
        if !hist_series.is_empty() {
            window_blocks(name, &hist_series, &mut blocks);
        }
    }

    // Collector samples: group under their family name, sorted within.
    let mut pulled: BTreeMap<String, Vec<Sample>> = BTreeMap::new();
    for s in collected {
        pulled.entry(s.name.clone()).or_default().push(s);
    }
    for (name, mut samples) in pulled {
        let block = blocks.entry(name.clone()).or_default();
        if block.kind.is_none() {
            block.help = samples[0].help.clone();
            block.kind = Some(samples[0].kind);
        }
        samples.sort_by_key(|s| crate::hub::label_key(&s.labels));
        for s in samples {
            block.lines.push(line(
                &name,
                &crate::hub::label_key(&s.labels),
                &fmt_f64(s.value),
            ));
        }
    }

    let mut out = String::new();
    for (name, block) in &blocks {
        let kind = block.kind.unwrap_or(InstrumentKind::Gauge);
        out.push_str(&format!("# HELP {name} {}\n", block.help));
        out.push_str(&format!("# TYPE {name} {}\n", kind.type_str()));
        for l in &block.lines {
            out.push_str(l);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label("x\ny"), "x\\ny");
    }

    #[test]
    fn float_formatting_is_shortest_roundtrip() {
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(0.0001), "0.0001");
        assert_eq!(fmt_f64(2.5), "2.5");
    }
}
