//! Tracing is observation only: replaying the whole benchmark with a
//! trace active must produce byte-identical answers to the untraced
//! serial baseline, and every captured span tree must be well-formed.

use std::collections::HashSet;
use tag_bench::{Harness, MethodId};
use tag_trace::{SpanRecord, Stage, Trace};

/// Direct children must fit inside their parent: each child's wall time
/// is bounded by the parent's, and sequential siblings sum to at most
/// the parent's duration (plus a little slack for timer granularity).
fn assert_durations_nest(spans: &[SpanRecord]) {
    let slack = std::time::Duration::from_micros(50);
    for parent in spans {
        let children: Vec<&SpanRecord> = spans
            .iter()
            .filter(|s| s.parent == Some(parent.id))
            .collect();
        let sum: std::time::Duration = children.iter().map(|c| c.wall).sum();
        assert!(
            sum <= parent.wall + slack,
            "children of span {} ({}) sum to {:?} > parent {:?}",
            parent.id,
            parent.label,
            sum,
            parent.wall
        );
    }
}

fn assert_well_formed(spans: &[SpanRecord]) {
    assert!(!spans.is_empty());
    let trace_id = spans[0].trace_id;
    let ids: HashSet<u64> = spans.iter().map(|s| s.id).collect();
    assert_eq!(ids.len(), spans.len(), "span ids are unique");
    let mut roots = 0usize;
    for s in spans {
        assert_eq!(s.trace_id, trace_id, "one trace per request");
        match s.parent {
            None => roots += 1,
            Some(p) => {
                assert!(ids.contains(&p), "parent {p} of span {} exists", s.id);
                assert_ne!(p, s.id, "no self-parenting");
            }
        }
    }
    assert_eq!(roots, 1, "exactly one root (the request span)");
    let root = spans.iter().find(|s| s.parent.is_none()).unwrap();
    assert_eq!(root.stage, Stage::Request);
    assert_durations_nest(spans);
}

#[test]
fn traced_benchmark_replay_is_byte_identical_and_well_formed() {
    let harness = Harness::small();
    let ids: Vec<usize> = harness.queries().iter().map(|q| q.id).collect();
    assert_eq!(ids.len(), 80, "TAG-Bench is 80 queries");
    let mut total_spans = 0usize;
    for method in MethodId::all() {
        for &id in &ids {
            let baseline = harness.run_one(method, id);
            let (trace, sink) = Trace::memory();
            let traced = tag_trace::with_trace(&trace, || {
                let _root = tag_trace::span(Stage::Request, method.label());
                harness.run_one(method, id)
            });
            // Byte identity, not just semantic equality.
            assert_eq!(
                format!("{:?}", traced.answer),
                format!("{:?}", baseline.answer),
                "{} query {id}: tracing changed the answer",
                method.label()
            );
            let spans = sink.take();
            assert_well_formed(&spans);
            total_spans += spans.len();
        }
    }
    assert!(
        total_spans > 400,
        "spans were actually captured: {total_spans}"
    );
}
