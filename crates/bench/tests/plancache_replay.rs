//! The plan cache is an optimization only: replaying the whole
//! benchmark with caching enabled must produce byte-identical answers
//! to a cache-disabled replay, while actually getting hits.

use tag_bench::{Harness, MethodId};
use tag_sql::PlanCacheStats;

fn domains(harness: &Harness) -> Vec<&'static str> {
    let mut out: Vec<&'static str> = harness.queries().iter().map(|q| q.domain).collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn aggregate_stats(harness: &Harness) -> PlanCacheStats {
    let mut total = PlanCacheStats::default();
    for d in domains(harness) {
        total.add(&harness.env(d).db.plan_cache_stats());
    }
    total
}

#[test]
fn cached_benchmark_replay_is_byte_identical_to_uncached() {
    let cached = Harness::small();
    let uncached = Harness::small();
    for d in domains(&uncached) {
        uncached.env(d).db.set_plan_cache_capacity(0);
    }

    let ids: Vec<usize> = cached.queries().iter().map(|q| q.id).collect();
    assert_eq!(ids.len(), 80, "TAG-Bench is 80 queries");
    for method in MethodId::all() {
        for &id in &ids {
            let with_cache = cached.run_one(method, id);
            let without = uncached.run_one(method, id);
            // Byte identity, not just semantic equality.
            assert_eq!(
                format!("{:?}", with_cache.answer),
                format!("{:?}", without.answer),
                "{} query {id}: plan caching changed the answer",
                method.label()
            );
        }
    }

    let on = aggregate_stats(&cached);
    assert!(
        on.hits > 0,
        "the cached replay must actually hit the plan cache: {on:?}"
    );
    let off = aggregate_stats(&uncached);
    assert_eq!(off.hits, 0, "a zero-capacity cache never hits: {off:?}");
    assert_eq!(off.entries, 0, "a zero-capacity cache stays empty: {off:?}");
}
