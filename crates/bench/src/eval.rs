//! The evaluation harness: run each method over each benchmark query,
//! recording exact-match correctness and simulated execution time.

use crate::oracle::Oracle;
use crate::queries::{build_benchmark, BenchQuery, QueryType};
use std::collections::HashMap;
use std::sync::Arc;
use tag_core::answer::{exact_match, Answer};
use tag_core::env::TagEnv;
use tag_core::methods::{HandWrittenTag, Rag, RetrievalLmRank, Text2Sql, Text2SqlLm};
use tag_core::model::TagMethod;
use tag_datagen::{generate_all, DomainData, Scale};
use tag_lm::sim::{SimConfig, SimLm};

/// The five methods of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodId {
    /// Vanilla Text2SQL.
    Text2Sql,
    /// Row-level RAG.
    Rag,
    /// Retrieval + LM Rank.
    Rerank,
    /// Text2SQL + LM generation.
    Text2SqlLm,
    /// Hand-written TAG over semantic operators.
    HandWritten,
}

impl MethodId {
    /// All methods in Table 1 order.
    pub fn all() -> [MethodId; 5] {
        [
            MethodId::Text2Sql,
            MethodId::Rag,
            MethodId::Rerank,
            MethodId::Text2SqlLm,
            MethodId::HandWritten,
        ]
    }

    /// Display name as printed in the tables.
    pub fn label(self) -> &'static str {
        match self {
            MethodId::Text2Sql => "Text2SQL",
            MethodId::Rag => "RAG",
            MethodId::Rerank => "Retrieval + LM Rank",
            MethodId::Text2SqlLm => "Text2SQL + LM",
            MethodId::HandWritten => "Hand-written TAG",
        }
    }
}

/// One (query, method) evaluation record.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Benchmark query id.
    pub query_id: usize,
    /// Which method produced this.
    pub method: MethodId,
    /// Exact match vs the oracle; `None` for aggregation queries.
    pub correct: Option<bool>,
    /// Simulated execution seconds (LM inference on the virtual clock).
    pub seconds: f64,
    /// The produced answer.
    pub answer: Answer,
}

/// The benchmark harness: generated domains, the 80 queries, per-domain
/// environments sharing one simulated LM, and the oracle's labels.
pub struct Harness {
    queries: Vec<BenchQuery>,
    envs: HashMap<&'static str, TagEnv>,
    truths: HashMap<usize, Option<Vec<String>>>,
}

impl Harness {
    /// Build the standard harness (default scale / default LM).
    pub fn standard() -> Self {
        Self::new(42, Scale::default(), SimConfig::default())
    }

    /// A smaller harness for fast tests.
    pub fn small() -> Self {
        Self::new(
            42,
            Scale {
                schools: 120,
                players: 150,
                posts: 60,
                customers: 120,
                drivers: 10,
            },
            SimConfig::default(),
        )
    }

    /// Build from explicit seed, scale, and LM configuration.
    pub fn new(seed: u64, scale: Scale, lm_config: SimConfig) -> Self {
        let domains = generate_all(seed, scale);
        Self::from_domains(domains, lm_config)
    }

    /// Build over already-generated domains.
    pub fn from_domains(domains: Vec<DomainData>, lm_config: SimConfig) -> Self {
        let queries = build_benchmark(&domains);
        let oracle = Oracle::new();
        let mut truths = HashMap::new();
        for q in &queries {
            let domain = domains
                .iter()
                .find(|d| d.name == q.domain)
                .expect("query domain generated");
            truths.insert(q.id, oracle.answer(q, domain));
        }
        let lm = Arc::new(SimLm::new(lm_config));
        let mut envs = HashMap::new();
        for d in domains {
            envs.insert(d.name, TagEnv::new(d.db, lm.clone() as Arc<_>));
        }
        Harness {
            queries,
            envs,
            truths,
        }
    }

    /// The benchmark queries.
    pub fn queries(&self) -> &[BenchQuery] {
        &self.queries
    }

    /// The labelled truth for a query id.
    pub fn truth(&self, query_id: usize) -> Option<&[String]> {
        self.truths.get(&query_id).and_then(|t| t.as_deref())
    }

    /// Mutable access to a domain environment (ablations).
    pub fn env_mut(&mut self, domain: &str) -> &mut TagEnv {
        self.envs.get_mut(domain).expect("domain env")
    }

    /// Shared access to a domain environment.
    pub fn env(&self, domain: &str) -> &TagEnv {
        self.envs.get(domain).expect("domain env")
    }

    /// Move the per-domain environments out of the harness (the serving
    /// runtime wraps each in an `Arc` and shares it across workers).
    pub fn into_envs(self) -> HashMap<&'static str, TagEnv> {
        self.envs
    }

    /// Run one method on one query, with metrics isolated to this run.
    pub fn run_one(&self, method: MethodId, query_id: usize) -> Outcome {
        let query = self
            .queries
            .iter()
            .find(|q| q.id == query_id)
            .expect("query id")
            .clone();
        let env = self.envs.get(query.domain).expect("domain env");
        // Warm the retrieval index outside the measured window (the
        // paper's FAISS index is likewise built offline).
        if matches!(method, MethodId::Rag | MethodId::Rerank) {
            let _ = env.row_store();
        }
        env.reset_metrics();
        let aggregation = query.qtype == QueryType::Aggregation;
        let question = query.question();
        let answer = match method {
            MethodId::Text2Sql => Text2Sql.answer(&question, env),
            MethodId::Rag => {
                let m = if aggregation {
                    Rag::aggregation()
                } else {
                    Rag::default()
                };
                m.answer(&question, env)
            }
            MethodId::Rerank => {
                let m = if aggregation {
                    RetrievalLmRank::aggregation()
                } else {
                    RetrievalLmRank::default()
                };
                m.answer(&question, env)
            }
            MethodId::Text2SqlLm => {
                let m = if aggregation {
                    Text2SqlLm::aggregation()
                } else {
                    Text2SqlLm::default()
                };
                m.answer(&question, env)
            }
            // The hand-written pipelines are written against the
            // structured query, as the paper's per-query expert code is.
            MethodId::HandWritten => HandWrittenTag.answer_structured(&query.query, env),
        };
        let seconds = env.elapsed_seconds();
        let correct = self.truths[&query.id]
            .as_ref()
            .map(|truth| exact_match(&answer, truth, query.ordered()));
        Outcome {
            query_id: query.id,
            method,
            correct,
            seconds,
            answer,
        }
    }

    /// Run a set of methods over the full benchmark.
    pub fn run_all(&self, methods: &[MethodId]) -> Vec<Outcome> {
        let ids: Vec<usize> = self.queries.iter().map(|q| q.id).collect();
        let mut out = Vec::with_capacity(methods.len() * ids.len());
        for &m in methods {
            for &id in &ids {
                out.push(self.run_one(m, id));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_each_method_once() {
        let h = Harness::small();
        // One query per type, every method: must not panic and must
        // produce sensible records.
        let sample: Vec<usize> = [
            QueryType::MatchBased,
            QueryType::Comparison,
            QueryType::Ranking,
            QueryType::Aggregation,
        ]
        .iter()
        .map(|t| h.queries().iter().find(|q| q.qtype == *t).unwrap().id)
        .collect();
        for m in MethodId::all() {
            for &id in &sample {
                let o = h.run_one(m, id);
                assert_eq!(o.method, m);
                assert!(o.seconds >= 0.0);
                let q = h.queries().iter().find(|q| q.id == id).unwrap();
                if q.qtype == QueryType::Aggregation {
                    assert!(o.correct.is_none());
                } else {
                    assert!(o.correct.is_some());
                }
            }
        }
    }

    #[test]
    fn handwritten_beats_rag_on_a_knowledge_count() {
        let h = Harness::small();
        let id = h
            .queries()
            .iter()
            .find(|q| {
                q.question()
                    .contains("located in the Silicon Valley region")
                    && matches!(q.query, tag_lm::nlq::NlQuery::Count { .. })
            })
            .unwrap()
            .id;
        let tag = h.run_one(MethodId::HandWritten, id);
        let rag = h.run_one(MethodId::Rag, id);
        // RAG sees only 10 rows: it cannot count region membership over
        // the whole table.
        assert_eq!(rag.correct, Some(false), "rag answered {:?}", rag.answer);
        // Hand-written TAG filters every unique city.
        assert_eq!(tag.correct, Some(true), "tag answered {:?}", tag.answer);
    }
}
