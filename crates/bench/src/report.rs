//! Table and figure renderers: regenerate the paper's Table 1, Table 2,
//! and Figure 2 from harness outcomes.

use crate::eval::{Harness, MethodId, Outcome};
use crate::queries::{BenchQuery, QueryKind, QueryType};

/// Accuracy + execution-time aggregate for one method over one bucket.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cell {
    correct: usize,
    graded: usize,
    seconds: f64,
    runs: usize,
}

impl Cell {
    fn add(&mut self, o: &Outcome) {
        if let Some(c) = o.correct {
            self.graded += 1;
            if c {
                self.correct += 1;
            }
        }
        self.seconds += o.seconds;
        self.runs += 1;
    }

    /// Exact-match accuracy, `None` when nothing was graded (aggregation).
    pub fn accuracy(&self) -> Option<f64> {
        if self.graded == 0 {
            None
        } else {
            Some(self.correct as f64 / self.graded as f64)
        }
    }

    /// Mean execution time in (simulated) seconds.
    pub fn mean_seconds(&self) -> f64 {
        if self.runs == 0 {
            0.0
        } else {
            self.seconds / self.runs as f64
        }
    }

    fn fmt_accuracy(&self) -> String {
        match self.accuracy() {
            Some(a) => format!("{a:.2}"),
            None => "N/A".to_owned(),
        }
    }
}

fn bucket<'a>(
    outcomes: &'a [Outcome],
    queries: &'a [BenchQuery],
    method: MethodId,
    pred: impl Fn(&BenchQuery) -> bool + 'a,
) -> Cell {
    let mut cell = Cell::default();
    for o in outcomes.iter().filter(|o| o.method == method) {
        let q = queries
            .iter()
            .find(|q| q.id == o.query_id)
            .expect("outcome query");
        if pred(q) {
            cell.add(o);
        }
    }
    cell
}

/// Render Table 1: accuracy and execution time per method × query type.
pub fn table1(outcomes: &[Outcome], queries: &[BenchQuery]) -> String {
    let types = [
        QueryType::MatchBased,
        QueryType::Comparison,
        QueryType::Ranking,
        QueryType::Aggregation,
    ];
    let mut out = String::new();
    out.push_str(
        "Table 1: Accuracy (exact match) and execution time (simulated s) per query type\n\n",
    );
    out.push_str(&format!(
        "{:<21} {:>8} {:>7} ",
        "Method", "Overall", "ET(s)"
    ));
    for t in types {
        out.push_str(&format!("| {:>12} {:>7} ", t.label(), "ET(s)"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(21 + 17 + types.len() * 24));
    out.push('\n');
    for m in MethodId::all() {
        let overall = bucket(outcomes, queries, m, |_| true);
        out.push_str(&format!(
            "{:<21} {:>8} {:>7.2} ",
            m.label(),
            overall.fmt_accuracy(),
            overall.mean_seconds()
        ));
        for t in types {
            let c = bucket(outcomes, queries, m, |q| q.qtype == t);
            out.push_str(&format!(
                "| {:>12} {:>7.2} ",
                c.fmt_accuracy(),
                c.mean_seconds()
            ));
        }
        out.push('\n');
    }
    out.push_str(
        "\nNote: exact match excludes aggregation queries (graded qualitatively), as in the paper.\n",
    );
    out
}

/// Render Table 2: accuracy and execution time per method × query kind.
pub fn table2(outcomes: &[Outcome], queries: &[BenchQuery]) -> String {
    let kinds = [QueryKind::Knowledge, QueryKind::Reasoning];
    let mut out = String::new();
    out.push_str("Table 2: results averaged over queries requiring Knowledge or Reasoning\n\n");
    out.push_str(&format!("{:<21} ", "Method"));
    for k in kinds {
        out.push_str(&format!("| {:>10} {:>7} ", k.label(), "ET(s)"));
    }
    out.push('\n');
    out.push_str(&"-".repeat(21 + kinds.len() * 22));
    out.push('\n');
    for m in MethodId::all() {
        out.push_str(&format!("{:<21} ", m.label()));
        for k in kinds {
            let c = bucket(outcomes, queries, m, |q| q.kind == k);
            out.push_str(&format!(
                "| {:>10} {:>7.2} ",
                c.fmt_accuracy(),
                c.mean_seconds()
            ));
        }
        out.push('\n');
    }
    out
}

/// Reproduce Figure 2: qualitative aggregation answers for the Sepang
/// query across RAG, Text2SQL + LM, and hand-written TAG.
pub fn figure2(harness: &Harness) -> String {
    let sepang_id = harness
        .queries()
        .iter()
        .find(|q| q.qtype == QueryType::Aggregation && q.question().contains("Sepang"))
        .expect("Sepang aggregation query in benchmark")
        .id;
    let question = harness
        .queries()
        .iter()
        .find(|q| q.id == sepang_id)
        .unwrap()
        .question();
    let mut out = String::new();
    out.push_str(&format!("Figure 2 — Query: {question}\n\n"));
    for m in [MethodId::Rag, MethodId::Text2SqlLm, MethodId::HandWritten] {
        let o = harness.run_one(m, sepang_id);
        out.push_str(&format!("== {} ==\n{}\n\n", m.label(), o.answer));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tag_core::answer::Answer;

    fn fake_queries() -> Vec<BenchQuery> {
        use tag_lm::nlq::NlQuery;
        vec![
            BenchQuery {
                id: 1,
                domain: "x",
                qtype: QueryType::MatchBased,
                kind: QueryKind::Knowledge,
                query: NlQuery::Count {
                    entity: "t".into(),
                    filters: vec![],
                },
            },
            BenchQuery {
                id: 2,
                domain: "x",
                qtype: QueryType::Aggregation,
                kind: QueryKind::Reasoning,
                query: NlQuery::ProvideInfo {
                    entity: "t".into(),
                    filters: vec![],
                },
            },
        ]
    }

    #[test]
    fn cells_aggregate_and_format() {
        let queries = fake_queries();
        let outcomes = vec![
            Outcome {
                query_id: 1,
                method: MethodId::Rag,
                correct: Some(true),
                seconds: 2.0,
                answer: Answer::List(vec!["1".into()]),
            },
            Outcome {
                query_id: 2,
                method: MethodId::Rag,
                correct: None,
                seconds: 4.0,
                answer: Answer::Text("summary".into()),
            },
        ];
        let t1 = table1(&outcomes, &queries);
        assert!(t1.contains("RAG"));
        assert!(t1.contains("N/A"), "{t1}");
        assert!(t1.contains("1.00"), "{t1}");
        let t2 = table2(&outcomes, &queries);
        assert!(t2.contains("Knowledge"));
        assert!(t2.contains("Reasoning"));
    }
}
