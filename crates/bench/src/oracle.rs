//! Ground-truth computation.
//!
//! Stands in for the paper's human labelling: every query's correct
//! answer is computed from the generated data, the *full-coverage*
//! knowledge base (ground-truth world facts), and the labels *planted at
//! generation time* — never from the simulated LM's own judgments.

use crate::queries::{BenchQuery, QueryType};
use tag_datagen::{DomainData, Labels};
use tag_lm::knowledge::{KnowledgeBase, KnowledgeConfig};
use tag_lm::nlq::{CmpOp, NlFilter, NlQuery, SemProperty};
use tag_sql::{Row, Schema, Value};

/// The oracle: ground-truth facts + planted labels for one domain.
pub struct Oracle {
    kb: KnowledgeBase,
}

impl Default for Oracle {
    fn default() -> Self {
        Self::new()
    }
}

impl Oracle {
    /// Build an oracle (full-coverage knowledge).
    pub fn new() -> Self {
        Oracle {
            kb: KnowledgeBase::new(KnowledgeConfig {
                coverage: 1.0,
                enumeration_coverage: 1.0,
                seed: 0,
            }),
        }
    }

    /// The labelled correct answer for a query, or `None` for aggregation
    /// queries (graded qualitatively, as in §4.1).
    ///
    /// # Panics
    /// Panics when the query is ill-posed over the data (ambiguous
    /// superlative, tied ranking); the benchmark test-suite validates
    /// every query against this.
    pub fn answer(&self, query: &BenchQuery, domain: &DomainData) -> Option<Vec<String>> {
        if query.qtype == QueryType::Aggregation {
            return None;
        }
        let table = domain
            .db
            .catalog()
            .table(query.query.entity())
            .expect("benchmark entity table exists");
        let schema = table.schema();
        let rows: Vec<&Row> = table
            .rows()
            .iter()
            .filter(|r| {
                query
                    .query
                    .filters()
                    .iter()
                    .all(|f| self.filter_truth(f, schema, r, &domain.labels))
            })
            .collect();

        let col = |name: &str| -> usize { schema.index_of(name).expect("benchmark column exists") };

        Some(match &query.query {
            NlQuery::Count { .. } => vec![rows.len().to_string()],
            NlQuery::Superlative {
                select_attr,
                rank_attr,
                highest,
                ..
            } => {
                let ri = col(rank_attr);
                let si = col(select_attr);
                let best = rows.iter().max_by(|a, b| {
                    let ord = a[ri].total_cmp(&b[ri]);
                    if *highest {
                        ord
                    } else {
                        ord.reverse()
                    }
                });
                let Some(best) = best else {
                    return Some(Vec::new());
                };
                // Well-posedness: the extreme rank value must be unique.
                let ties = rows.iter().filter(|r| r[ri] == best[ri]).count();
                assert_eq!(
                    ties, 1,
                    "query {} has an ambiguous superlative ({} ties)",
                    query.id, ties
                );
                vec![best[si].to_string()]
            }
            NlQuery::List { select_attr, .. } => {
                let si = col(select_attr);
                rows.iter().map(|r| r[si].to_string()).collect()
            }
            NlQuery::TopK {
                select_attr,
                rank_attr,
                k,
                highest,
                ..
            } => {
                let ri = col(rank_attr);
                let si = col(select_attr);
                let mut sorted = rows.clone();
                sorted.sort_by(|a, b| {
                    let ord = a[ri].total_cmp(&b[ri]);
                    if *highest {
                        ord.reverse()
                    } else {
                        ord
                    }
                });
                // Well-posedness: no tie across the k-boundary and the
                // kept keys are distinct (order is the answer).
                let cut: Vec<&&Row> = sorted.iter().take(*k).collect();
                if sorted.len() > *k {
                    assert_ne!(
                        sorted[*k - 1][ri],
                        sorted[*k][ri],
                        "query {} has a tie at the top-k boundary",
                        query.id
                    );
                }
                for w in cut.windows(2) {
                    assert_ne!(
                        w[0][ri], w[1][ri],
                        "query {} has tied ranking keys",
                        query.id
                    );
                }
                cut.iter().map(|r| r[si].to_string()).collect()
            }
            NlQuery::SemanticRank {
                select_attr,
                rank_attr,
                k,
                property,
                ..
            } => {
                let ri = col(rank_attr);
                let si = col(select_attr);
                let mut sorted = rows.clone();
                sorted.sort_by(|a, b| b[ri].total_cmp(&a[ri]));
                let mut cut: Vec<&&Row> = sorted.iter().take(*k).collect();
                let grade = |r: &Row| -> i64 {
                    self.semantic_grade(query.query.entity(), schema, r, *property, &domain.labels)
                };
                cut.sort_by_key(|r| std::cmp::Reverse(grade(r)));
                for w in cut.windows(2) {
                    assert_ne!(
                        grade(w[0]),
                        grade(w[1]),
                        "query {} has tied semantic grades",
                        query.id
                    );
                }
                cut.iter().map(|r| r[si].to_string()).collect()
            }
            NlQuery::Summarize { .. } | NlQuery::ProvideInfo { .. } => unreachable!(),
        })
    }

    /// Ground truth of one filter clause for one row.
    fn filter_truth(&self, f: &NlFilter, schema: &Schema, row: &Row, labels: &Labels) -> bool {
        let field = |names: &[&str]| -> Option<&Value> {
            names
                .iter()
                .find_map(|n| schema.index_of(n))
                .map(|i| &row[i])
        };
        match f {
            NlFilter::NumCmp { attr, op, value } => field(&[attr])
                .and_then(Value::as_f64)
                .map(|x| match op {
                    CmpOp::Over => x > *value,
                    CmpOp::Under => x < *value,
                })
                .unwrap_or(false),
            NlFilter::TextEq { attr, value } => field(&[attr])
                .map(|v| v.to_string().eq_ignore_ascii_case(value))
                .unwrap_or(false),
            NlFilter::AtCircuit { circuit } => field(&["Circuit"])
                .map(|v| v.to_string().eq_ignore_ascii_case(circuit))
                .unwrap_or(false),
            NlFilter::InRegion { region } => field(&["City"])
                .map(|v| {
                    self.kb
                        .true_cities_in_region(region)
                        .iter()
                        .any(|c| c.eq_ignore_ascii_case(&v.to_string()))
                })
                .unwrap_or(false),
            NlFilter::TallerThan { person } => {
                let h = field(&["height", "Height"]).and_then(Value::as_f64);
                let ref_h = self.kb.true_person_height_cm(person);
                matches!((h, ref_h), (Some(a), Some(b)) if a > b)
            }
            NlFilter::EuCountry => field(&["Country"])
                .map(|v| self.kb.true_is_eu_member(&v.to_string()))
                .unwrap_or(false),
            NlFilter::CircuitContinent { continent } => field(&["Circuit"])
                .and_then(|v| {
                    let fact = self.kb.true_circuit_fact(&v.to_string())?;
                    let c = self.kb.true_country_continent(fact.country)?;
                    Some(c.eq_ignore_ascii_case(continent))
                })
                .unwrap_or(false),
            NlFilter::ClassicMovie => field(&["movie_title", "title", "Title"])
                .map(|v| self.kb.true_is_classic_movie(&v.to_string()))
                .unwrap_or(false),
            NlFilter::VerticalIs { vertical } => field(&["account_name", "Company"])
                .and_then(|v| self.kb.true_company_vertical(&v.to_string()))
                .map(|x| x.eq_ignore_ascii_case(vertical))
                .unwrap_or(false),
            NlFilter::Semantic { attr, property } => {
                self.semantic_truth(schema, row, attr, *property, labels)
            }
        }
    }

    /// Planted truth of a semantic property on one row.
    fn semantic_truth(
        &self,
        schema: &Schema,
        row: &Row,
        attr: &str,
        property: SemProperty,
        labels: &Labels,
    ) -> bool {
        // Resolve the row's identity for label lookup.
        let id = schema.index_of("Id").and_then(|i| row[i].as_i64());
        let title = schema.index_of("movie_title").map(|i| row[i].to_string());
        match (attr, property) {
            ("Text", SemProperty::Sarcastic) => id
                .and_then(|i| labels.comment_sarcastic.get(&i).copied())
                .unwrap_or(false),
            ("Text", SemProperty::Positive) => id
                .and_then(|i| labels.comment_sentiment.get(&i).copied())
                .map(|s| s > 0)
                .unwrap_or(false),
            ("Text", SemProperty::Negative) => id
                .and_then(|i| labels.comment_sentiment.get(&i).copied())
                .map(|s| s < 0)
                .unwrap_or(false),
            ("Title", SemProperty::Technical) => id
                .and_then(|i| labels.post_technicality.get(&i).copied())
                .map(|lvl| lvl >= 2)
                .unwrap_or(false),
            ("review", SemProperty::Positive) => title
                .and_then(|t| labels.review_sentiment.get(&t).copied())
                .map(|s| s > 0)
                .unwrap_or(false),
            ("review", SemProperty::Negative) => title
                .and_then(|t| labels.review_sentiment.get(&t).copied())
                .map(|s| s < 0)
                .unwrap_or(false),
            _ => false,
        }
    }

    /// Planted graded score used for semantic-ranking truth.
    fn semantic_grade(
        &self,
        entity: &str,
        schema: &Schema,
        row: &Row,
        property: SemProperty,
        labels: &Labels,
    ) -> i64 {
        match (entity, property) {
            ("posts", SemProperty::Technical) => schema
                .index_of("Id")
                .and_then(|i| row[i].as_i64())
                .and_then(|id| labels.post_technicality.get(&id).copied())
                .map(i64::from)
                .unwrap_or(0),
            ("movies", SemProperty::Positive) => schema
                .index_of("movie_title")
                .and_then(|i| labels.review_sentiment.get(&row[i].to_string()).copied())
                .map(i64::from)
                .unwrap_or(0),
            ("movies", SemProperty::Negative) => schema
                .index_of("movie_title")
                .and_then(|i| labels.review_sentiment.get(&row[i].to_string()).copied())
                .map(|s| -i64::from(s))
                .unwrap_or(0),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::build_benchmark;
    use tag_datagen::{generate_all, Scale};

    fn setup() -> (Vec<DomainData>, Vec<BenchQuery>) {
        let domains = generate_all(
            42,
            Scale {
                schools: 120,
                players: 150,
                posts: 60,
                customers: 120,
                drivers: 10,
            },
        );
        let queries = build_benchmark(&domains);
        (domains, queries)
    }

    #[test]
    fn every_query_has_well_posed_ground_truth() {
        let (domains, queries) = setup();
        let oracle = Oracle::new();
        for q in &queries {
            let domain = domains.iter().find(|d| d.name == q.domain).unwrap();
            let truth = oracle.answer(q, domain); // panics if ill-posed
            match q.qtype {
                QueryType::Aggregation => assert!(truth.is_none()),
                _ => {
                    let t = truth.expect("non-aggregation has truth");
                    assert!(
                        !t.is_empty(),
                        "query {} ({}) has an empty answer",
                        q.id,
                        q.question()
                    );
                    assert!(
                        t.len() <= 40,
                        "query {} answer too large ({})",
                        q.id,
                        t.len()
                    );
                }
            }
        }
    }

    #[test]
    fn known_truths_spot_checks() {
        let (domains, queries) = setup();
        let oracle = Oracle::new();
        // Paper query: players over 180 with volley over 70 taller than
        // Curry — the truth must equal a direct computation.
        let q = queries
            .iter()
            .find(|q| {
                q.question().contains("taller than Stephen Curry")
                    && matches!(q.query, NlQuery::Count { .. })
            })
            .unwrap();
        let domain = domains.iter().find(|d| d.name == q.domain).unwrap();
        let truth: i64 = oracle.answer(q, domain).unwrap()[0].parse().unwrap();
        let players = domain.db.catalog().table("players").unwrap();
        let hi = players.schema().index_of("height").unwrap();
        let vi = players.schema().index_of("volley").unwrap();
        let expect = players
            .rows()
            .iter()
            .filter(|r| {
                r[hi].as_f64().unwrap() > 188.0
                    && r[hi].as_f64().unwrap() > 180.0
                    && r[vi].as_f64().unwrap() > 70.0
            })
            .count() as i64;
        assert_eq!(truth, expect);
    }

    #[test]
    fn sepang_aggregation_has_no_labelled_truth() {
        let (domains, queries) = setup();
        let oracle = Oracle::new();
        let q = queries
            .iter()
            .find(|q| q.question().contains("Sepang"))
            .unwrap();
        let domain = domains.iter().find(|d| d.name == q.domain).unwrap();
        assert!(oracle.answer(q, domain).is_none());
    }
}
