//! TAG-Bench: the 80 modified queries (§4.1).
//!
//! 20 of each BIRD query type (match-based, comparison, ranking,
//! aggregation); within each type, half require **world knowledge** and
//! half require **semantic reasoning** — 40/40 overall, exactly the
//! paper's construction. Text parameters (post titles) are drawn from
//! the generated data, mirroring how the paper's queries reference
//! concrete BIRD rows.

use tag_datagen::DomainData;
use tag_lm::nlq::{CmpOp, NlFilter, NlQuery, SemProperty};

/// BIRD query type (Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryType {
    /// Point lookups of attribute values.
    MatchBased,
    /// Counting under comparisons.
    Comparison,
    /// Ordered top-k lists.
    Ranking,
    /// Free-form summarization (accuracy N/A, as in the paper).
    Aggregation,
}

impl QueryType {
    /// Display name as in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            QueryType::MatchBased => "Match-based",
            QueryType::Comparison => "Comparison",
            QueryType::Ranking => "Ranking",
            QueryType::Aggregation => "Aggregation",
        }
    }
}

/// What the modification demands of the system (Table 2 split).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Requires LM world knowledge not present in the data.
    Knowledge,
    /// Requires LM semantic reasoning over text fields.
    Reasoning,
}

impl QueryKind {
    /// Display name as in Table 2.
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Knowledge => "Knowledge",
            QueryKind::Reasoning => "Reasoning",
        }
    }
}

/// One benchmark query.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Stable id (1..=80).
    pub id: usize,
    /// Domain name (matches `DomainData::name`).
    pub domain: &'static str,
    /// BIRD query type.
    pub qtype: QueryType,
    /// Knowledge vs reasoning.
    pub kind: QueryKind,
    /// The structured query (rendered to English for the methods).
    pub query: NlQuery,
}

impl BenchQuery {
    /// The natural-language question handed to methods under test.
    pub fn question(&self) -> String {
        self.query.render()
    }

    /// Is the answer order-sensitive (ranking queries)?
    pub fn ordered(&self) -> bool {
        self.qtype == QueryType::Ranking
    }
}

fn num(attr: &str, op: CmpOp, value: f64) -> NlFilter {
    NlFilter::NumCmp {
        attr: attr.into(),
        op,
        value,
    }
}

fn region(r: &str) -> NlFilter {
    NlFilter::InRegion { region: r.into() }
}

fn taller(p: &str) -> NlFilter {
    NlFilter::TallerThan { person: p.into() }
}

fn sem(attr: &str, p: SemProperty) -> NlFilter {
    NlFilter::Semantic {
        attr: attr.into(),
        property: p,
    }
}

fn title_eq(title: &str) -> NlFilter {
    NlFilter::TextEq {
        attr: "PostTitle".into(),
        value: title.into(),
    }
}

/// Pick `n` post titles (by ascending post id, starting at `from`) whose
/// posts exist in the generated community domain.
fn post_titles(community: &DomainData, from: i64, n: usize) -> Vec<String> {
    let posts = community.db.catalog().table("posts").expect("posts table");
    let title_idx = posts.schema().index_of("Title").expect("Title column");
    let id_idx = posts.schema().index_of("Id").expect("Id column");
    let mut rows: Vec<(i64, String)> = posts
        .rows()
        .iter()
        .map(|r| (r[id_idx].as_i64().unwrap_or(0), r[title_idx].to_string()))
        .collect();
    rows.sort_by_key(|(id, _)| *id);
    rows.into_iter()
        .filter(|(id, _)| *id >= from)
        .take(n)
        .map(|(_, t)| t)
        .collect()
}

/// Build the full 80-query benchmark over generated domains.
///
/// `domains` must contain the six datasets from
/// [`tag_datagen::generate_all`].
pub fn build_benchmark(domains: &[DomainData]) -> Vec<BenchQuery> {
    let community = domains
        .iter()
        .find(|d| d.name == "codebase_community")
        .expect("community domain present");
    // Titles for aggregation (ids 1..=10) and for match/comparison
    // reasoning queries (ids 11..).
    let agg_titles = post_titles(community, 1, 10);
    let reason_titles = post_titles(community, 11, 10);

    let mut queries = Vec::with_capacity(80);
    let mut id = 0usize;
    let mut push = |domain: &'static str, qtype: QueryType, kind: QueryKind, query: NlQuery| {
        id += 1;
        queries.push(BenchQuery {
            id,
            domain,
            qtype,
            kind,
            query,
        });
    };

    use QueryKind::{Knowledge, Reasoning};
    use QueryType::{Aggregation, Comparison, MatchBased, Ranking};

    // ---- Match-based: 10 knowledge ------------------------------------
    push(
        "california_schools",
        MatchBased,
        Knowledge,
        NlQuery::Superlative {
            entity: "schools".into(),
            select_attr: "GSoffered".into(),
            rank_attr: "Longitude".into(),
            highest: true,
            filters: vec![region("Silicon Valley")],
        },
    );
    push(
        "california_schools",
        MatchBased,
        Knowledge,
        NlQuery::Superlative {
            entity: "schools".into(),
            select_attr: "School".into(),
            rank_attr: "Longitude".into(),
            highest: false,
            filters: vec![region("Bay Area")],
        },
    );
    push(
        "california_schools",
        MatchBased,
        Knowledge,
        NlQuery::Superlative {
            entity: "schools".into(),
            select_attr: "School".into(),
            rank_attr: "Latitude".into(),
            highest: false,
            filters: vec![region("Southern California")],
        },
    );
    push(
        "california_schools",
        MatchBased,
        Knowledge,
        NlQuery::List {
            entity: "schools".into(),
            select_attr: "School".into(),
            filters: vec![num("AvgScrMath", CmpOp::Over, 700.0), region("Bay Area")],
        },
    );
    push(
        "california_schools",
        MatchBased,
        Knowledge,
        NlQuery::List {
            entity: "schools".into(),
            select_attr: "School".into(),
            filters: vec![
                num("AvgScrMath", CmpOp::Over, 705.0),
                region("Central Valley"),
            ],
        },
    );
    push(
        "debit_card_specializing",
        MatchBased,
        Knowledge,
        NlQuery::Superlative {
            entity: "customers".into(),
            select_attr: "Segment".into(),
            rank_attr: "Consumption".into(),
            highest: true,
            filters: vec![NlFilter::EuCountry],
        },
    );
    push(
        "debit_card_specializing",
        MatchBased,
        Knowledge,
        NlQuery::List {
            entity: "customers".into(),
            select_attr: "CustomerID".into(),
            filters: vec![NlFilter::EuCountry, num("Consumption", CmpOp::Over, 8800.0)],
        },
    );
    push(
        "european_football_2",
        MatchBased,
        Knowledge,
        NlQuery::Superlative {
            entity: "players".into(),
            select_attr: "player_name".into(),
            rank_attr: "height".into(),
            highest: true,
            filters: vec![taller("Kevin Durant")],
        },
    );
    push(
        "european_football_2",
        MatchBased,
        Knowledge,
        NlQuery::List {
            entity: "players".into(),
            select_attr: "player_name".into(),
            filters: vec![num("volley", CmpOp::Over, 85.0), taller("Stephen Curry")],
        },
    );
    push(
        "formula_1",
        MatchBased,
        Knowledge,
        NlQuery::List {
            entity: "races".into(),
            select_attr: "name".into(),
            filters: vec![
                NlFilter::CircuitContinent {
                    continent: "South America".into(),
                },
                num("year", CmpOp::Over, 2015.0),
            ],
        },
    );

    // ---- Match-based: 10 reasoning ------------------------------------
    push(
        "movies",
        MatchBased,
        Reasoning,
        NlQuery::Superlative {
            entity: "movies".into(),
            select_attr: "movie_title".into(),
            rank_attr: "revenue".into(),
            highest: true,
            filters: vec![sem("review", SemProperty::Positive)],
        },
    );
    push(
        "movies",
        MatchBased,
        Reasoning,
        NlQuery::Superlative {
            entity: "movies".into(),
            select_attr: "movie_title".into(),
            rank_attr: "revenue".into(),
            highest: false,
            filters: vec![sem("review", SemProperty::Negative)],
        },
    );
    push(
        "movies",
        MatchBased,
        Reasoning,
        NlQuery::List {
            entity: "movies".into(),
            select_attr: "movie_title".into(),
            filters: vec![
                NlFilter::TextEq {
                    attr: "genre".into(),
                    value: "Romance".into(),
                },
                sem("review", SemProperty::Negative),
            ],
        },
    );
    push(
        "movies",
        MatchBased,
        Reasoning,
        NlQuery::List {
            entity: "movies".into(),
            select_attr: "movie_title".into(),
            filters: vec![
                NlFilter::TextEq {
                    attr: "genre".into(),
                    value: "SciFi".into(),
                },
                sem("review", SemProperty::Positive),
            ],
        },
    );
    for t in reason_titles.iter().take(4) {
        push(
            "codebase_community",
            MatchBased,
            Reasoning,
            NlQuery::List {
                entity: "comments".into(),
                select_attr: "Id".into(),
                filters: vec![title_eq(t), sem("Text", SemProperty::Positive)],
            },
        );
    }
    push(
        "codebase_community",
        MatchBased,
        Reasoning,
        NlQuery::Superlative {
            entity: "posts".into(),
            select_attr: "Title".into(),
            rank_attr: "ViewCount".into(),
            highest: true,
            filters: vec![sem("Title", SemProperty::Technical)],
        },
    );
    push(
        "codebase_community",
        MatchBased,
        Reasoning,
        NlQuery::Superlative {
            entity: "posts".into(),
            select_attr: "Id".into(),
            rank_attr: "ViewCount".into(),
            highest: false,
            filters: vec![sem("Title", SemProperty::Technical)],
        },
    );

    // ---- Comparison: 10 knowledge -------------------------------------
    push(
        "european_football_2",
        Comparison,
        Knowledge,
        NlQuery::Count {
            entity: "players".into(),
            filters: vec![
                num("height", CmpOp::Over, 180.0),
                num("volley", CmpOp::Over, 70.0),
                taller("Stephen Curry"),
            ],
        },
    );
    push(
        "european_football_2",
        Comparison,
        Knowledge,
        NlQuery::Count {
            entity: "players".into(),
            filters: vec![
                num("height", CmpOp::Over, 175.0),
                taller("Cristiano Ronaldo"),
            ],
        },
    );
    push(
        "european_football_2",
        Comparison,
        Knowledge,
        NlQuery::Count {
            entity: "players".into(),
            filters: vec![num("dribbling", CmpOp::Over, 80.0), taller("Lionel Messi")],
        },
    );
    push(
        "california_schools",
        Comparison,
        Knowledge,
        NlQuery::Count {
            entity: "schools".into(),
            filters: vec![num("AvgScrMath", CmpOp::Over, 560.0), region("Bay Area")],
        },
    );
    push(
        "california_schools",
        Comparison,
        Knowledge,
        NlQuery::Count {
            entity: "schools".into(),
            filters: vec![region("Silicon Valley")],
        },
    );
    push(
        "california_schools",
        Comparison,
        Knowledge,
        NlQuery::Count {
            entity: "schools".into(),
            filters: vec![
                num("Enrollment", CmpOp::Over, 2000.0),
                region("Central Valley"),
            ],
        },
    );
    push(
        "debit_card_specializing",
        Comparison,
        Knowledge,
        NlQuery::Count {
            entity: "customers".into(),
            filters: vec![NlFilter::EuCountry],
        },
    );
    push(
        "debit_card_specializing",
        Comparison,
        Knowledge,
        NlQuery::Count {
            entity: "customers".into(),
            filters: vec![
                NlFilter::EuCountry,
                num("Consumption", CmpOp::Under, 1000.0),
            ],
        },
    );
    push(
        "formula_1",
        Comparison,
        Knowledge,
        NlQuery::Count {
            entity: "races".into(),
            filters: vec![
                NlFilter::CircuitContinent {
                    continent: "Asia".into(),
                },
                num("year", CmpOp::Over, 2010.0),
            ],
        },
    );
    push(
        "formula_1",
        Comparison,
        Knowledge,
        NlQuery::Count {
            entity: "races".into(),
            filters: vec![
                NlFilter::CircuitContinent {
                    continent: "Europe".into(),
                },
                num("year", CmpOp::Over, 2016.0),
            ],
        },
    );

    // ---- Comparison: 10 reasoning -------------------------------------
    for t in reason_titles.iter().take(4) {
        push(
            "codebase_community",
            Comparison,
            Reasoning,
            NlQuery::Count {
                entity: "comments".into(),
                filters: vec![title_eq(t), sem("Text", SemProperty::Sarcastic)],
            },
        );
    }
    for t in reason_titles.iter().skip(4).take(2) {
        push(
            "codebase_community",
            Comparison,
            Reasoning,
            NlQuery::Count {
                entity: "comments".into(),
                filters: vec![title_eq(t), sem("Text", SemProperty::Positive)],
            },
        );
    }
    push(
        "movies",
        Comparison,
        Reasoning,
        NlQuery::Count {
            entity: "movies".into(),
            filters: vec![
                NlFilter::TextEq {
                    attr: "genre".into(),
                    value: "Romance".into(),
                },
                sem("review", SemProperty::Positive),
            ],
        },
    );
    push(
        "movies",
        Comparison,
        Reasoning,
        NlQuery::Count {
            entity: "movies".into(),
            filters: vec![sem("review", SemProperty::Negative)],
        },
    );
    push(
        "codebase_community",
        Comparison,
        Reasoning,
        NlQuery::Count {
            entity: "posts".into(),
            filters: vec![
                num("ViewCount", CmpOp::Over, 9000.0),
                sem("Title", SemProperty::Technical),
            ],
        },
    );
    push(
        "codebase_community",
        Comparison,
        Reasoning,
        NlQuery::Count {
            entity: "comments".into(),
            filters: vec![
                num("Score", CmpOp::Over, 20.0),
                sem("Text", SemProperty::Sarcastic),
            ],
        },
    );

    // ---- Ranking: 10 knowledge ----------------------------------------
    push(
        "california_schools",
        Ranking,
        Knowledge,
        NlQuery::TopK {
            entity: "schools".into(),
            select_attr: "School".into(),
            rank_attr: "Longitude".into(),
            k: 3,
            highest: true,
            filters: vec![region("Bay Area")],
        },
    );
    push(
        "california_schools",
        Ranking,
        Knowledge,
        NlQuery::TopK {
            entity: "schools".into(),
            select_attr: "School".into(),
            rank_attr: "Latitude".into(),
            k: 4,
            highest: true,
            filters: vec![region("Southern California")],
        },
    );
    push(
        "california_schools",
        Ranking,
        Knowledge,
        NlQuery::TopK {
            entity: "schools".into(),
            select_attr: "School".into(),
            rank_attr: "Latitude".into(),
            k: 3,
            highest: false,
            filters: vec![region("Central Valley")],
        },
    );
    push(
        "european_football_2",
        Ranking,
        Knowledge,
        NlQuery::TopK {
            entity: "players".into(),
            select_attr: "player_name".into(),
            rank_attr: "height".into(),
            k: 5,
            highest: true,
            filters: vec![taller("Stephen Curry")],
        },
    );
    push(
        "european_football_2",
        Ranking,
        Knowledge,
        NlQuery::TopK {
            entity: "players".into(),
            select_attr: "player_name".into(),
            rank_attr: "height".into(),
            k: 3,
            highest: true,
            filters: vec![taller("Kevin Durant")],
        },
    );
    push(
        "european_football_2",
        Ranking,
        Knowledge,
        NlQuery::TopK {
            entity: "players".into(),
            select_attr: "player_name".into(),
            rank_attr: "height".into(),
            k: 4,
            highest: true,
            filters: vec![taller("Usain Bolt")],
        },
    );
    push(
        "debit_card_specializing",
        Ranking,
        Knowledge,
        NlQuery::TopK {
            entity: "customers".into(),
            select_attr: "CustomerID".into(),
            rank_attr: "Consumption".into(),
            k: 3,
            highest: true,
            filters: vec![NlFilter::EuCountry],
        },
    );
    push(
        "debit_card_specializing",
        Ranking,
        Knowledge,
        NlQuery::TopK {
            entity: "customers".into(),
            select_attr: "CustomerID".into(),
            rank_attr: "Consumption".into(),
            k: 5,
            highest: false,
            filters: vec![NlFilter::EuCountry],
        },
    );
    push(
        "formula_1",
        Ranking,
        Knowledge,
        NlQuery::TopK {
            entity: "races".into(),
            select_attr: "name".into(),
            rank_attr: "year".into(),
            k: 3,
            highest: true,
            filters: vec![NlFilter::CircuitContinent {
                continent: "North America".into(),
            }],
        },
    );
    push(
        "formula_1",
        Ranking,
        Knowledge,
        NlQuery::TopK {
            entity: "races".into(),
            select_attr: "name".into(),
            rank_attr: "year".into(),
            k: 4,
            highest: true,
            filters: vec![NlFilter::CircuitContinent {
                continent: "South America".into(),
            }],
        },
    );

    // ---- Ranking: 10 reasoning ----------------------------------------
    for (k, select) in [
        (5usize, "Title"),
        (4, "Title"),
        (3, "Title"),
        (5, "Id"),
        (4, "Id"),
    ] {
        push(
            "codebase_community",
            Ranking,
            Reasoning,
            NlQuery::SemanticRank {
                entity: "posts".into(),
                select_attr: select.into(),
                rank_attr: "ViewCount".into(),
                k,
                property: SemProperty::Technical,
                on_attr: "Title".into(),
            },
        );
    }
    for (k, property) in [
        (4usize, SemProperty::Positive),
        (3, SemProperty::Positive),
        (4, SemProperty::Negative),
        (3, SemProperty::Negative),
        (2, SemProperty::Positive),
    ] {
        push(
            "movies",
            Ranking,
            Reasoning,
            NlQuery::SemanticRank {
                entity: "movies".into(),
                select_attr: "movie_title".into(),
                rank_attr: "revenue".into(),
                k,
                property,
                on_attr: "review".into(),
            },
        );
    }

    // ---- Aggregation: 10 knowledge (Figure 2 family) -------------------
    for circuit in [
        "Sepang International Circuit",
        "Autodromo Nazionale di Monza",
        "Silverstone Circuit",
        "Circuit de Monaco",
        "Marina Bay Street Circuit",
        "Suzuka Circuit",
        "Shanghai International Circuit",
        "Circuit de Spa-Francorchamps",
        "Circuit Gilles Villeneuve",
        "Bahrain International Circuit",
    ] {
        push(
            "formula_1",
            Aggregation,
            Knowledge,
            NlQuery::ProvideInfo {
                entity: "races".into(),
                filters: vec![NlFilter::AtCircuit {
                    circuit: circuit.into(),
                }],
            },
        );
    }

    // ---- Aggregation: 10 reasoning -------------------------------------
    for t in &agg_titles {
        push(
            "codebase_community",
            Aggregation,
            Reasoning,
            NlQuery::Summarize {
                entity: "comments".into(),
                topic: "Text".into(),
                filters: vec![title_eq(t)],
            },
        );
    }

    assert_eq!(queries.len(), 80, "benchmark must have exactly 80 queries");
    queries
}

#[cfg(test)]
mod tests {
    use super::*;
    use tag_datagen::{generate_all, Scale};

    fn small_domains() -> Vec<DomainData> {
        generate_all(
            42,
            Scale {
                schools: 120,
                players: 150,
                posts: 60,
                customers: 120,
                drivers: 10,
            },
        )
    }

    #[test]
    fn composition_matches_the_paper() {
        let qs = build_benchmark(&small_domains());
        assert_eq!(qs.len(), 80);
        for t in [
            QueryType::MatchBased,
            QueryType::Comparison,
            QueryType::Ranking,
            QueryType::Aggregation,
        ] {
            let of_type: Vec<_> = qs.iter().filter(|q| q.qtype == t).collect();
            assert_eq!(of_type.len(), 20, "{t:?}");
            let knowledge = of_type
                .iter()
                .filter(|q| q.kind == QueryKind::Knowledge)
                .count();
            assert_eq!(knowledge, 10, "{t:?}");
        }
        let knowledge_total = qs.iter().filter(|q| q.kind == QueryKind::Knowledge).count();
        assert_eq!(knowledge_total, 40);
    }

    #[test]
    fn all_questions_render_and_parse_back() {
        for q in build_benchmark(&small_domains()) {
            let text = q.question();
            let parsed = NlQuery::parse(&text);
            assert_eq!(parsed.as_ref(), Some(&q.query), "query {}: {text}", q.id);
        }
    }

    #[test]
    fn kind_flags_match_query_structure() {
        for q in build_benchmark(&small_domains()) {
            match q.kind {
                QueryKind::Knowledge => {
                    assert!(
                        q.query.needs_knowledge() || matches!(q.query, NlQuery::ProvideInfo { .. }),
                        "query {} marked knowledge but has no knowledge clause",
                        q.id
                    );
                }
                QueryKind::Reasoning => {
                    assert!(
                        q.query.needs_reasoning(),
                        "query {} marked reasoning but has no reasoning demand",
                        q.id
                    );
                }
            }
        }
    }

    #[test]
    fn ids_are_stable_and_unique() {
        let qs = build_benchmark(&small_domains());
        let ids: Vec<usize> = qs.iter().map(|q| q.id).collect();
        assert_eq!(ids, (1..=80).collect::<Vec<_>>());
    }
}
