//! # tag-bench — TAG-Bench and the evaluation harness
//!
//! Reconstructs the paper's benchmark (§4.1): 80 queries over 5 BIRD
//! domains — 20 per query type (match-based, comparison, ranking,
//! aggregation), split 40 knowledge / 40 reasoning — plus the harness
//! that reruns the evaluation and regenerates **Table 1**, **Table 2**,
//! and **Figure 2**. Ground truth comes from [`oracle::Oracle`]
//! (full-coverage world facts + labels planted at data-generation time).
//!
//! Binaries:
//!
//! - `table1`, `table2` — print the corresponding table;
//! - `figure2` — print the qualitative Sepang comparison;
//! - `ablations` — batch-size / retrieval-k / multi-hop ablations.

#![warn(missing_docs)]

pub mod eval;
pub mod oracle;
pub mod queries;
pub mod report;

pub use eval::{Harness, MethodId, Outcome};
pub use oracle::Oracle;
pub use queries::{build_benchmark, BenchQuery, QueryKind, QueryType};
