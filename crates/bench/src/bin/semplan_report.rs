//! `semplan-report`: LM-call and virtual-time accounting for the SemPlan
//! optimizer, per method, with the rewrite rules off vs on.
//!
//! Emits `BENCH_semplan.json` and fails (exit 1) if any answer diverges
//! between the optimizer-off and optimizer-on replays — the CI
//! `semplan-smoke` gate.

use std::collections::BTreeMap;
use tag_bench::{Harness, MethodId};
use tag_core::answer::Answer;

fn render_answer(a: &Answer) -> String {
    format!("{a:?}")
}

struct MethodRow {
    lm_calls_off: u64,
    lm_calls_on: u64,
    seconds_off: f64,
    seconds_on: f64,
    queries: usize,
}

fn run_side(harness: &Harness, optimize: bool) -> BTreeMap<&'static str, (Vec<String>, u64, f64)> {
    for q in harness.queries() {
        harness.env(q.domain).set_sem_opt(if optimize {
            tag_sql::SemOptOptions::all()
        } else {
            tag_sql::SemOptOptions::none()
        });
    }
    let mut out: BTreeMap<&'static str, (Vec<String>, u64, f64)> = BTreeMap::new();
    for method in MethodId::all() {
        let mut answers = Vec::new();
        let mut lm_calls = 0u64;
        let mut seconds = 0f64;
        for q in harness.queries() {
            let o = harness.run_one(method, q.id);
            // `run_one` resets metrics first, so the cumulative counters
            // now cover exactly this query.
            lm_calls += harness.env(q.domain).lm.calls();
            seconds += o.seconds;
            answers.push(render_answer(&o.answer));
        }
        out.insert(method.label(), (answers, lm_calls, seconds));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_semplan.json".to_owned();
    let mut smoke = false;
    let mut dump: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out_path = args.get(i).expect("--out needs a path").clone();
            }
            "--smoke" => smoke = true,
            "--dump-answers" => {
                i += 1;
                dump = Some(args.get(i).expect("--dump-answers needs a path").clone());
            }
            other => {
                eprintln!(
                    "unknown flag {other:?} (flags: --out <path>, --smoke, --dump-answers <path>)"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let build = || {
        if smoke {
            Harness::small()
        } else {
            Harness::standard()
        }
    };

    eprintln!("semplan-report: running optimizer-off replay ...");
    let off = run_side(&build(), false);
    eprintln!("semplan-report: running optimizer-on replay ...");
    let on = run_side(&build(), true);

    if let Some(path) = &dump {
        // One line per (method, query): the optimizer-on answers, for
        // offline byte-identity comparison against another build.
        let mut text = String::new();
        for (method, (answers, _, _)) in &on {
            for (i, a) in answers.iter().enumerate() {
                text.push_str(&format!("{method}\t{i}\t{a}\n"));
            }
        }
        std::fs::write(path, text).expect("write answer dump");
        eprintln!("semplan-report: wrote answer dump to {path}");
    }

    let mut divergent = 0usize;
    let mut rows: BTreeMap<&'static str, MethodRow> = BTreeMap::new();
    for (method, (answers_off, calls_off, secs_off)) in &off {
        let (answers_on, calls_on, secs_on) = &on[method];
        for (i, (a, b)) in answers_off.iter().zip(answers_on).enumerate() {
            if a != b {
                divergent += 1;
                eprintln!("DIVERGENCE {method} query #{i}:\n  off: {a}\n  on:  {b}");
            }
        }
        rows.insert(
            method,
            MethodRow {
                lm_calls_off: *calls_off,
                lm_calls_on: *calls_on,
                seconds_off: *secs_off,
                seconds_on: *secs_on,
                queries: answers_off.len(),
            },
        );
    }

    let mut json = String::from("{\n  \"benchmark\": \"TAG-Bench 80x5\",\n  \"methods\": {\n");
    let n = rows.len();
    for (i, (method, r)) in rows.iter().enumerate() {
        let reduction = if r.lm_calls_off > 0 {
            100.0 * (r.lm_calls_off.saturating_sub(r.lm_calls_on)) as f64 / r.lm_calls_off as f64
        } else {
            0.0
        };
        json.push_str(&format!(
            "    \"{method}\": {{\n      \"queries\": {},\n      \"lm_calls_off\": {},\n      \"lm_calls_on\": {},\n      \"lm_calls_per_query_off\": {:.3},\n      \"lm_calls_per_query_on\": {:.3},\n      \"lm_call_reduction_pct\": {:.1},\n      \"virtual_seconds_off\": {:.3},\n      \"virtual_seconds_on\": {:.3}\n    }}{}\n",
            r.queries,
            r.lm_calls_off,
            r.lm_calls_on,
            r.lm_calls_off as f64 / r.queries.max(1) as f64,
            r.lm_calls_on as f64 / r.queries.max(1) as f64,
            reduction,
            r.seconds_off,
            r.seconds_on,
            if i + 1 == n { "" } else { "," }
        ));
    }
    json.push_str(&format!(
        "  }},\n  \"divergent_answers\": {divergent}\n}}\n"
    ));
    std::fs::write(&out_path, &json).expect("write BENCH_semplan.json");
    print!("{json}");

    if divergent > 0 {
        eprintln!("semplan-report: {divergent} answers diverged between optimizer off/on");
        std::process::exit(1);
    }
}
