//! Regenerates Table 2 of the paper: accuracy and execution time split
//! by Knowledge vs Reasoning queries.

use tag_bench::{report, Harness, MethodId};

fn main() {
    let harness = Harness::standard();
    eprintln!("Running 5 methods x 80 queries...");
    let outcomes = harness.run_all(&MethodId::all());
    let queries = harness.queries().to_vec();
    println!("{}", report::table2(&outcomes, &queries));
}
