//! Ablation studies from DESIGN.md:
//!
//! - `batch` — execution time of hand-written TAG vs the semantic
//!   engine's LM batch size (the §4.3 batched-inference claim behind the
//!   3.1× win);
//! - `retrieval-k` — RAG exact match vs retrieved rows `k` (§3 design
//!   space: how far can pure retrieval get?);
//! - `multihop` — compositional two-hop queries: single-hop TAG vs the
//!   §2/§5 multi-hop extension;
//! - `gen-pattern` — §2.3 generation patterns: hierarchical fold vs
//!   sequential refinement on a large aggregation;
//! - `coverage` — knowledge-coverage sweep: the recognition (TAG) vs
//!   free-recall (Text2SQL) gap as parametric knowledge degrades.
//!
//! Run all with no argument, or name one.

use std::sync::Arc;
use tag_bench::{Harness, MethodId, QueryType};
use tag_core::answer::{exact_match, Answer};
use tag_core::env::TagEnv;
use tag_core::methods::{HandWrittenTag, Rag};
use tag_core::model::TagMethod;
use tag_core::multihop::{run_two_hop, TwoHopQuery};
use tag_datagen::{generate_all, Scale};
use tag_lm::model::LanguageModel;
use tag_lm::nlq::{NlFilter, NlQuery, SemProperty};
use tag_lm::sim::{SimConfig, SimLm};
use tag_semops::SemEngine;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    match which.as_str() {
        "batch" => batch_ablation(),
        "retrieval-k" => retrieval_k_ablation(),
        "multihop" => multihop_ablation(),
        "gen-pattern" => gen_pattern_ablation(),
        "coverage" => coverage_ablation(),
        "all" => {
            batch_ablation();
            println!();
            retrieval_k_ablation();
            println!();
            multihop_ablation();
            println!();
            gen_pattern_ablation();
            println!();
            coverage_ablation();
        }
        other => {
            eprintln!(
                "unknown ablation {other:?}; expected one of: batch, retrieval-k, \
                 multihop, gen-pattern, coverage, all"
            );
            std::process::exit(2);
        }
    }
}

/// Ablation A: TAG execution time vs LM batch size.
fn batch_ablation() {
    println!("Ablation A: hand-written TAG execution time vs LM batch size");
    println!(
        "(mean simulated seconds over the 20 knowledge + reasoning match/comparison queries)\n"
    );
    println!("{:>10} {:>12} {:>12}", "batch", "mean ET(s)", "accuracy");
    for batch in [1usize, 4, 16, 64] {
        let mut harness = Harness::standard();
        // Swap every domain's engine for one with the ablated batch size.
        let domains: Vec<&'static str> = harness
            .queries()
            .iter()
            .map(|q| q.domain)
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        for d in domains {
            let env = harness.env_mut(d);
            let lm = Arc::clone(&env.lm);
            env.engine = SemEngine::with_batch_size(lm, batch);
        }
        let ids: Vec<usize> = harness
            .queries()
            .iter()
            .filter(|q| matches!(q.qtype, QueryType::MatchBased | QueryType::Comparison))
            .map(|q| q.id)
            .collect();
        let mut secs = 0.0;
        let mut correct = 0usize;
        let mut graded = 0usize;
        for &id in &ids {
            let o = harness.run_one(MethodId::HandWritten, id);
            secs += o.seconds;
            if let Some(c) = o.correct {
                graded += 1;
                correct += usize::from(c);
            }
        }
        println!(
            "{batch:>10} {:>12.2} {:>12.2}",
            secs / ids.len() as f64,
            correct as f64 / graded.max(1) as f64
        );
    }
    println!("\nSmaller batches serialize the per-row LM judgments; accuracy is unchanged.");
}

/// Ablation B: RAG accuracy vs retrieval depth k.
fn retrieval_k_ablation() {
    println!("Ablation B: RAG exact match vs retrieved rows k");
    println!("(all 60 graded queries)\n");
    println!("{:>6} {:>12} {:>12}", "k", "accuracy", "mean ET(s)");
    for k in [1usize, 5, 10, 50, 100] {
        let mut harness = Harness::standard();
        let queries = harness.queries().to_vec();
        let mut correct = 0usize;
        let mut graded = 0usize;
        let mut secs = 0.0;
        let mut runs = 0usize;
        for q in &queries {
            if q.qtype == QueryType::Aggregation {
                continue;
            }
            let question = q.question();
            let truth = harness.truth(q.id).map(<[String]>::to_vec);
            let env = harness.env_mut(q.domain);
            let _ = env.row_store();
            env.reset_metrics();
            let answer = Rag {
                k,
                list_format: true,
            }
            .answer(&question, env);
            secs += env.elapsed_seconds();
            runs += 1;
            if let Some(t) = truth {
                graded += 1;
                correct += usize::from(exact_match(&answer, &t, q.ordered()));
            }
        }
        println!(
            "{k:>6} {:>12.2} {:>12.2}",
            correct as f64 / graded.max(1) as f64,
            secs / runs.max(1) as f64
        );
    }
    println!("\nMore rows help until the context fills; exact computation never emerges.");
}

/// Ablation D: §2.3 generation patterns — batched hierarchical fold vs
/// serial sequential refinement on one large aggregation input.
fn gen_pattern_ablation() {
    use tag_semops::{sem_agg, sem_agg_refine, DataFrame};
    println!("Ablation D: LM generation patterns for aggregation (§2.3)\n");
    let domains = generate_all(42, Scale::default());
    let community = domains
        .into_iter()
        .find(|d| d.name == "codebase_community")
        .expect("community domain");
    let mut db = community.db;
    let df = DataFrame::from_result(
        db.execute("SELECT Text FROM comments")
            .expect("comments scan"),
    );
    println!(
        "Input: {} comment texts (forced multi-round via a small window)\n",
        df.len()
    );
    println!(
        "{:<24} {:>10} {:>9} {:>9}",
        "pattern", "ET(s)", "calls", "batches"
    );
    for (name, refine) in [
        ("hierarchical fold", false),
        ("sequential refinement", true),
    ] {
        let lm = Arc::new(SimLm::new(SimConfig {
            context_window: 2048,
            ..SimConfig::default()
        }));
        let engine = SemEngine::new(lm.clone() as Arc<dyn tag_lm::model::LanguageModel>);
        let summary = if refine {
            sem_agg_refine(&engine, &df, "Summarize the comments", None)
        } else {
            sem_agg(&engine, &df, "Summarize the comments", None)
        }
        .expect("aggregation succeeds");
        assert!(!summary.is_empty());
        println!(
            "{name:<24} {:>10.2} {:>9} {:>9}",
            lm.elapsed_seconds(),
            lm.calls(),
            lm.batches()
        );
    }
    println!("\nThe fold batches each level's chunk summaries; refinement serializes them.");
}

/// Ablation E: knowledge-coverage sweep. TAG filters rows by per-fact
/// *recognition*; Text2SQL must *enumerate* facts into SQL. Sweeping the
/// model's coverage shows the gap directly.
fn coverage_ablation() {
    use tag_lm::KnowledgeConfig;
    println!("Ablation E: accuracy on knowledge queries vs parametric coverage\n");
    println!("{:>10} {:>12} {:>12}", "coverage", "Text2SQL", "TAG");
    for coverage in [0.5f64, 0.7, 0.9, 1.0] {
        let lm_config = SimConfig {
            knowledge: KnowledgeConfig {
                coverage,
                // Free recall stays systematically below recognition.
                enumeration_coverage: (coverage * 0.55).min(1.0),
                seed: 0x7A65,
            },
            ..SimConfig::default()
        };
        let harness = Harness::new(42, Scale::default(), lm_config);
        let ids: Vec<usize> = harness
            .queries()
            .iter()
            .filter(|q| {
                q.kind == tag_bench::QueryKind::Knowledge && q.qtype != QueryType::Aggregation
            })
            .map(|q| q.id)
            .collect();
        let acc = |h: &Harness, m: MethodId| -> f64 {
            let correct = ids
                .iter()
                .filter(|&&id| h.run_one(m, id).correct == Some(true))
                .count();
            correct as f64 / ids.len() as f64
        };
        let t2s = acc(&harness, MethodId::Text2Sql);
        let tag = acc(&harness, MethodId::HandWritten);
        println!("{coverage:>10.2} {t2s:>12.2} {tag:>12.2}");
    }
    println!(
        "\nRecognition (row-wise judgments) degrades gracefully; free recall \
         (IN-list enumeration) collapses much earlier."
    );
}

/// Ablation C: multi-hop TAG vs forcing the composition into one hop.
fn multihop_ablation() {
    println!("Ablation C: compositional queries — single-hop vs two-hop TAG\n");
    let domains = generate_all(42, Scale::default());
    let community = domains
        .into_iter()
        .find(|d| d.name == "codebase_community")
        .expect("community domain");
    let lm = Arc::new(SimLm::new(SimConfig::default()));

    // Ground truth from planted labels: sarcastic comments on technical
    // posts (level >= 2).
    let posts = community.db.catalog().table("posts").unwrap();
    let id_i = posts.schema().index_of("Id").unwrap();
    let technical_posts: std::collections::HashSet<i64> = posts
        .rows()
        .iter()
        .filter_map(|r| {
            let id = r[id_i].as_i64()?;
            (community.labels.post_technicality[&id] >= 2).then_some(id)
        })
        .collect();
    let comments = community.db.catalog().table("comments").unwrap();
    let cid_i = comments.schema().index_of("Id").unwrap();
    let pid_i = comments.schema().index_of("PostId").unwrap();
    let truth = comments
        .rows()
        .iter()
        .filter(|r| {
            let cid = r[cid_i].as_i64().unwrap_or(0);
            let pid = r[pid_i].as_i64().unwrap_or(0);
            technical_posts.contains(&pid) && community.labels.comment_sarcastic[&cid]
        })
        .count();

    let env = TagEnv::new(community.db.clone(), lm);

    let hop1 = NlQuery::List {
        entity: "posts".into(),
        select_attr: "Id".into(),
        filters: vec![NlFilter::Semantic {
            attr: "Title".into(),
            property: SemProperty::Technical,
        }],
    };
    let hop2 = NlQuery::Count {
        entity: "comments".into(),
        filters: vec![NlFilter::Semantic {
            attr: "Text".into(),
            property: SemProperty::Sarcastic,
        }],
    };
    let question = "How many sarcastic comments are there on technical posts?";

    // Single-hop attempt: the composition cannot be expressed over one
    // table, so the pipeline runs hop 2's filter alone.
    env.reset_metrics();
    let single = HandWrittenTag.answer_structured(&hop2, &env);
    let single_secs = env.elapsed_seconds();

    // Two-hop TAG.
    env.reset_metrics();
    let two = run_two_hop(
        &TwoHopQuery {
            hop1,
            join_attr: "PostId".into(),
            hop2,
        },
        &env,
    );
    let two_secs = env.elapsed_seconds();

    let as_count = |a: &Answer| -> Option<f64> {
        match a {
            Answer::List(v) => v.first()?.parse().ok(),
            _ => None,
        }
    };
    let rel_err = |a: &Answer| -> String {
        match as_count(a) {
            Some(x) => format!(
                "{:.0}% relative error",
                ((x - truth as f64) / truth as f64 * 100.0).abs()
            ),
            None => "no numeric answer".to_owned(),
        }
    };
    let fmt = |a: &Answer| match a {
        Answer::List(v) => v.join(", "),
        other => other.to_string(),
    };
    println!("Question: {question}");
    println!("Ground truth:           {truth}");
    println!(
        "Single-hop TAG:         {} ({}; ignores the post constraint entirely; {:.2}s)",
        fmt(&single),
        rel_err(&single),
        single_secs
    );
    println!(
        "Two-hop TAG:            {} ({}; residual error is semantic judgment noise; {:.2}s)",
        fmt(&two),
        rel_err(&two),
        two_secs
    );
    let _ = exact_match(&single, &[truth.to_string()], false);
}
