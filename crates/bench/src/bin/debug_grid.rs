//! Developer aid: per-query correctness grid (not part of the paper).

use tag_bench::{Harness, MethodId};

fn main() {
    let h = Harness::standard();
    let queries = h.queries().to_vec();
    println!(
        "{:>3} {:<12} {:<10} {:<9} t2s rag rrk t2l tag  question",
        "id", "type", "kind", "domain"
    );
    for q in &queries {
        let mut marks = Vec::new();
        for m in MethodId::all() {
            let o = h.run_one(m, q.id);
            marks.push(match o.correct {
                Some(true) => "Y",
                Some(false) => ".",
                None => "-",
            });
        }
        println!(
            "{:>3} {:<12} {:<10} {:<9} {:^3} {:^3} {:^3} {:^3} {:^3}  {}",
            q.id,
            q.qtype.label(),
            q.kind.label(),
            &q.domain[..q.domain.len().min(9)],
            marks[0],
            marks[1],
            marks[2],
            marks[3],
            marks[4],
            &q.question()[..q.question().len().min(80)]
        );
    }
}
