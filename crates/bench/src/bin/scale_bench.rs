//! `scale-bench` — the million-row scale sweep gating the chunked
//! executor.
//!
//! Two halves:
//!
//! 1. **Byte-identity replay.** The full TAG-Bench workload — 80
//!    queries × 5 methods — runs on two identically-seeded harnesses,
//!    one executing relational plans through the serial row-at-a-time
//!    path, one through the columnar chunked executor
//!    (`ExecPolicy::chunked`). Every answer must match exactly; any
//!    divergence is a correctness bug, not a tolerance. Runs at the
//!    `small` and `standard` generation scales.
//!
//! 2. **Throughput sweep.** Per-operator rows/s over the `schools`
//!    domain at three tiers (small / standard / huge = 10⁶ rows,
//!    generated through the bulk fast path), serial vs chunked with 1
//!    and 8 workers, plus the scan→filter→aggregate pipeline the
//!    acceptance gate measures. Results for every arm are compared
//!    row-for-row against the serial baseline.
//!
//! Output goes to `BENCH_scale.json`. Exit is non-zero on any mismatch,
//! or (full mode) when the huge-tier pipeline speedup at 8 workers
//! falls under the `--threshold` multiplier (default 3×).
//!
//! `--smoke` keeps CI fast: standard-scale replay + standard-tier
//! sweep, byte-identity enforced, the speedup gate skipped.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;
use tag_bench::{Harness, MethodId};
use tag_datagen::{schools, Scale};
use tag_lm::sim::SimConfig;
use tag_sql::{Database, ExecPolicy};

fn usage() -> ! {
    eprintln!("usage: scale-bench [--seed N] [--rounds N] [--threshold X] [--json PATH] [--smoke]");
    std::process::exit(2);
}

/// Replay the 80×5 benchmark on serial vs chunked harnesses; returns
/// (outcomes compared, mismatches).
fn replay_identity(seed: u64, scale: Scale, workers: usize) -> (usize, usize) {
    let serial = Harness::new(seed, scale, SimConfig::default());
    let chunked = Harness::new(seed, scale, SimConfig::default());
    let mut domains: Vec<&'static str> = chunked.queries().iter().map(|q| q.domain).collect();
    domains.sort_unstable();
    domains.dedup();
    for d in &domains {
        chunked
            .env(d)
            .db
            .set_exec_policy(ExecPolicy::chunked(workers));
    }
    let methods = MethodId::all();
    let key = |o: &tag_bench::Outcome| (o.query_id, o.method.label());
    let baseline: HashMap<_, String> = serial
        .run_all(&methods)
        .iter()
        .map(|o| (key(o), format!("{:?}", o.answer)))
        .collect();
    let candidate = chunked.run_all(&methods);
    let mut mismatches = 0;
    for o in &candidate {
        if baseline.get(&key(o)) != Some(&format!("{:?}", o.answer)) {
            mismatches += 1;
            eprintln!(
                "MISMATCH query {} method {}: {:?}",
                o.query_id,
                o.method.label(),
                o.answer
            );
        }
    }
    (candidate.len(), mismatches)
}

struct OpSpec {
    name: &'static str,
    sql: &'static str,
}

/// The per-operator suite. `rows/s` is input rows (table cardinality)
/// over wall time — a throughput basis that is comparable across
/// operators with different output cardinalities.
const OPS: &[OpSpec] = &[
    OpSpec {
        name: "scan",
        sql: "SELECT * FROM schools",
    },
    OpSpec {
        name: "filter",
        sql: "SELECT * FROM schools WHERE AvgScrMath > 640",
    },
    OpSpec {
        name: "project",
        sql: "SELECT CDSCode, AvgScrMath + AvgScrRead FROM schools",
    },
    OpSpec {
        name: "aggregate",
        sql: "SELECT City, COUNT(*), AVG(AvgScrMath) FROM schools GROUP BY City",
    },
    OpSpec {
        name: "sort",
        sql: "SELECT CDSCode FROM schools ORDER BY AvgScrMath, CDSCode",
    },
    OpSpec {
        name: "hash_join",
        sql: "SELECT COUNT(*) FROM schools s JOIN satscores t ON s.CDSCode = t.cds \
              WHERE t.AvgScrVerbal > s.AvgScrMath",
    },
    OpSpec {
        name: "scan_filter_aggregate",
        sql: "SELECT City, COUNT(*), AVG(AvgScrMath) FROM schools \
              WHERE AvgScrMath > 550 GROUP BY City",
    },
];

/// Minimum wall seconds over `rounds` runs of `sql` (answers returned
/// once for identity checks).
fn time_query(db: &Database, sql: &str, rounds: usize) -> (f64, Vec<Vec<tag_sql::Value>>) {
    let mut best = f64::INFINITY;
    let mut rows = Vec::new();
    for _ in 0..rounds.max(1) {
        let started = Instant::now();
        let rs = db.query(sql).expect("bench query");
        let wall = started.elapsed().as_secs_f64();
        if wall < best {
            best = wall;
        }
        rows = rs.rows;
    }
    (best, rows)
}

struct OpResult {
    name: &'static str,
    serial_rps: f64,
    w1_rps: f64,
    w8_rps: f64,
    speedup_w8: f64,
    mismatches: usize,
}

fn sweep_tier(seed: u64, n: usize, rounds: usize) -> Vec<OpResult> {
    let domain = schools::generate_bulk(seed, n);
    let db = domain.db;
    let basis = n as f64;
    let mut out = Vec::new();
    for op in OPS {
        db.set_exec_policy(ExecPolicy::default());
        let (serial_s, serial_rows) = time_query(&db, op.sql, rounds);
        db.set_exec_policy(ExecPolicy::chunked(1));
        let (w1_s, w1_rows) = time_query(&db, op.sql, rounds);
        db.set_exec_policy(ExecPolicy::chunked(8));
        let (w8_s, w8_rows) = time_query(&db, op.sql, rounds);
        let mismatches = usize::from(w1_rows != serial_rows) + usize::from(w8_rows != serial_rows);
        if mismatches > 0 {
            eprintln!("MISMATCH op {} at n={n}", op.name);
        }
        out.push(OpResult {
            name: op.name,
            serial_rps: basis / serial_s,
            w1_rps: basis / w1_s,
            w8_rps: basis / w8_s,
            speedup_w8: serial_s / w8_s,
            mismatches,
        });
    }
    out
}

fn main() {
    let mut seed = 42u64;
    let mut rounds = 3usize;
    let mut threshold = 3.0f64;
    let mut json_path = "BENCH_scale.json".to_owned();
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--rounds" => {
                rounds = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--threshold" => {
                threshold = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--json" => json_path = args.next().unwrap_or_else(|| usage()),
            "--smoke" => smoke = true,
            _ => usage(),
        }
    }

    // Replay scales: the byte-identity half of the gate.
    let replay_scales: &[(&str, Scale)] = if smoke {
        &[("standard", Scale::default())][..]
    } else {
        &[("small", Scale::small()), ("standard", Scale::default())][..]
    };
    let mut replay_json = String::new();
    let mut total_mismatches = 0usize;
    for (name, scale) in replay_scales {
        eprintln!("replaying 80x5 benchmark at scale {name} (serial vs chunked)...");
        let (outcomes, mismatches) = replay_identity(seed, *scale, 8);
        total_mismatches += mismatches;
        let _ = write!(
            replay_json,
            "{}{{\"scale\":\"{name}\",\"outcomes\":{outcomes},\"mismatches\":{mismatches}}}",
            if replay_json.is_empty() { "" } else { "," },
        );
        eprintln!("  {outcomes} outcomes, {mismatches} mismatches");
    }

    // Throughput tiers.
    let tiers: &[(&str, usize)] = if smoke {
        &[("standard", Scale::default().schools)][..]
    } else {
        &[
            ("small", Scale::small().schools),
            ("standard", Scale::default().schools),
            ("huge", Scale::huge().schools),
        ][..]
    };
    let mut tiers_json = String::new();
    let mut gate_speedup = f64::NAN;
    for (tier, n) in tiers {
        eprintln!("sweeping tier {tier} ({n} rows)...");
        let results = sweep_tier(seed, *n, rounds);
        let mut ops_json = String::new();
        for r in &results {
            total_mismatches += r.mismatches;
            if *tier == "huge" && r.name == "scan_filter_aggregate" {
                gate_speedup = r.speedup_w8;
            }
            let _ = write!(
                ops_json,
                "{}{{\"op\":\"{}\",\"serial_rows_per_s\":{:.0},\"chunked_w1_rows_per_s\":{:.0},\
                 \"chunked_w8_rows_per_s\":{:.0},\"speedup_w8\":{:.2},\"mismatches\":{}}}",
                if ops_json.is_empty() { "" } else { "," },
                r.name,
                r.serial_rps,
                r.w1_rps,
                r.w8_rps,
                r.speedup_w8,
                r.mismatches,
            );
            eprintln!(
                "  {:<22} serial {:>12.0} rows/s   w1 {:>12.0}   w8 {:>12.0}   x{:.2}",
                r.name, r.serial_rps, r.w1_rps, r.w8_rps, r.speedup_w8
            );
        }
        let _ = write!(
            tiers_json,
            "{}{{\"tier\":\"{tier}\",\"rows\":{n},\"ops\":[{ops_json}]}}",
            if tiers_json.is_empty() { "" } else { "," },
        );
    }

    let gate_ok = smoke || gate_speedup >= threshold;
    let json = format!(
        "{{\"bench\":\"scale-bench\",\"seed\":{seed},\"smoke\":{smoke},\"rounds\":{rounds},\
         \"replay\":[{replay_json}],\"tiers\":[{tiers_json}],\
         \"gate\":{{\"pipeline\":\"scan_filter_aggregate\",\"tier\":\"huge\",\"workers\":8,\
         \"threshold\":{threshold},\"speedup\":{},\"passed\":{}}},\
         \"total_mismatches\":{total_mismatches}}}",
        if gate_speedup.is_nan() {
            "null".to_owned()
        } else {
            format!("{gate_speedup:.2}")
        },
        gate_ok,
    );
    std::fs::write(&json_path, &json).expect("write json");
    eprintln!("wrote {json_path}");

    if total_mismatches > 0 {
        eprintln!("FAIL: {total_mismatches} byte-identity mismatches");
        std::process::exit(1);
    }
    if !gate_ok {
        eprintln!("FAIL: huge-tier pipeline speedup {gate_speedup:.2} < {threshold}");
        std::process::exit(1);
    }
    eprintln!("ok");
}
