//! `trace-report` — replay TAG-Bench with end-to-end tracing on and
//! print the per-method / per-query-type stage and cost breakdown.
//!
//! Every (method, query) pair runs twice: once untraced (the baseline)
//! and once inside a `tag-trace` trace. The two answers must be
//! byte-identical — tracing is data collection only — and the process
//! exits non-zero if any pair diverges. The traced runs' spans are
//! aggregated into two tables: per method x stage, and per query type x
//! stage, each reporting span counts, wall-clock time, virtual LM
//! seconds, LM calls, prompt/completion tokens, and the plan-cache hit
//! rate over the cell's SQL executions (counted from the
//! `plan_cache: hit|miss` annotations on exec spans; `-` where the
//! stage never ran SQL).
//!
//! ```text
//! trace-report [--scale tiny|small|standard] [--seed N] [--smoke] [--jsonl]
//! ```
//!
//! `--smoke` runs one query per type instead of all 80 (the CI job).
//! `--jsonl` additionally dumps every captured span as JSONL on stdout.

use std::collections::BTreeMap;
use tag_analyze::plan_cost;
use tag_bench::{BenchQuery, Harness, MethodId, QueryType};
use tag_core::env::TagEnv;
use tag_core::{compile_generate_over, compile_nlq, compile_rag, compile_rerank};
use tag_datagen::Scale;
use tag_lm::sim::SimConfig;
use tag_sql::optimize_sem;
use tag_trace::{LmUsage, SpanRecord, Stage, Trace};

fn usage() -> ! {
    eprintln!("usage: trace-report [--scale tiny|small|standard] [--seed N] [--smoke] [--jsonl]");
    std::process::exit(2);
}

fn parse_scale(name: &str) -> Scale {
    match name {
        "standard" => Scale::default(),
        "small" => Scale {
            schools: 120,
            players: 150,
            posts: 60,
            customers: 120,
            drivers: 10,
        },
        "tiny" => Scale {
            schools: 40,
            players: 40,
            posts: 20,
            customers: 40,
            drivers: 6,
        },
        _ => usage(),
    }
}

/// Static upper bound on LM calls for one (method, query) pair, derived
/// from the semantic IR alone via [`tag_analyze::plan_cost`] — before
/// anything executes. The engine's prompt cache can only *lower* the
/// traced actuals, so `actual > bound` means the cost model (or the
/// optimizer) is wrong and the report fails.
fn static_bound(method: MethodId, q: &BenchQuery, env: &TagEnv) -> u64 {
    let opts = env.sem_opt();
    let list = q.qtype != QueryType::Aggregation;
    let question = q.question();
    match method {
        // One LM call writes the SQL; the engine answers relationally.
        MethodId::Text2Sql => 1,
        MethodId::Rag => {
            let plan = optimize_sem(compile_rag(&question, 10, list), &opts);
            plan_cost(&plan, &env.db).lm_calls
        }
        MethodId::Rerank => {
            let plan = optimize_sem(compile_rerank(&question, 30, 10, list), &opts);
            plan_cost(&plan, &env.db).lm_calls
        }
        // One call writes the retrieval SQL, then a generate plan over
        // the materialized rows (one call in either prompt format; the
        // bound does not depend on how many rows came back).
        MethodId::Text2SqlLm => {
            let gen = compile_generate_over(Vec::new(), Vec::new(), &question, list, "answer");
            1 + plan_cost(&optimize_sem(gen, &opts), &env.db).lm_calls
        }
        MethodId::HandWritten => {
            let plan = optimize_sem(compile_nlq(&q.query), &opts);
            plan_cost(&plan, &env.db).lm_calls
        }
    }
}

/// One row of an aggregate table: totals for a (group, stage) cell.
#[derive(Debug, Clone, Copy, Default)]
struct Agg {
    spans: u64,
    wall_us: u64,
    lm: LmUsage,
    pc_hits: u64,
    pc_lookups: u64,
}

impl Agg {
    fn add_span(&mut self, s: &SpanRecord) {
        self.spans += 1;
        self.wall_us += s.wall.as_micros().min(u128::from(u64::MAX)) as u64;
        self.lm.add(&s.lm);
        for a in &s.annotations {
            match a.as_str() {
                "plan_cache: hit" => {
                    self.pc_hits += 1;
                    self.pc_lookups += 1;
                }
                "plan_cache: miss" => self.pc_lookups += 1,
                _ => {}
            }
        }
    }

    /// Plan-cache hit rate over this cell's SQL executions, or `-` for
    /// cells that never touched the engine (no lookups recorded).
    fn pc_hit_pct(&self) -> String {
        if self.pc_lookups == 0 {
            "-".to_owned()
        } else {
            format!(
                "{:.0}%",
                self.pc_hits as f64 / self.pc_lookups as f64 * 100.0
            )
        }
    }
}

fn render_table<K: std::fmt::Display>(
    title: &str,
    groups: &[K],
    cells: &BTreeMap<(String, usize), Agg>,
) -> String {
    let mut out = format!("== {title} ==\n");
    out.push_str(&format!(
        "{:<22} {:<9} {:>6} {:>10} {:>9} {:>7} {:>14} {:>9}\n",
        "group", "stage", "spans", "wall(ms)", "virt(s)", "calls", "tok(in/out)", "pc hit%"
    ));
    for g in groups {
        let name = g.to_string();
        for stage in Stage::ALL {
            let Some(a) = cells.get(&(name.clone(), stage.index())) else {
                continue;
            };
            out.push_str(&format!(
                "{:<22} {:<9} {:>6} {:>10.2} {:>9.3} {:>7} {:>14} {:>9}\n",
                name,
                stage.as_str(),
                a.spans,
                a.wall_us as f64 / 1e3,
                a.lm.virtual_seconds,
                a.lm.calls,
                format!("{}/{}", a.lm.prompt_tokens, a.lm.completion_tokens),
                a.pc_hit_pct(),
            ));
        }
    }
    out
}

fn main() {
    let mut seed = 42u64;
    let mut scale = parse_scale("small");
    let mut smoke = false;
    let mut jsonl = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--scale" => scale = parse_scale(&val()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--smoke" => smoke = true,
            "--jsonl" => jsonl = true,
            _ => usage(),
        }
    }

    eprintln!("trace-report: generating domains (seed {seed})...");
    let harness = Harness::new(seed, scale, SimConfig::default());
    let ids: Vec<usize> = if smoke {
        // One query per type: enough to exercise every stage cheaply.
        [
            QueryType::MatchBased,
            QueryType::Comparison,
            QueryType::Ranking,
            QueryType::Aggregation,
        ]
        .iter()
        .map(|t| {
            harness
                .queries()
                .iter()
                .find(|q| q.qtype == *t)
                .expect("every type present")
                .id
        })
        .collect()
    } else {
        harness.queries().iter().map(|q| q.id).collect()
    };

    let methods = MethodId::all();
    eprintln!(
        "trace-report: replaying {} queries x {} methods, traced + untraced...",
        ids.len(),
        methods.len()
    );

    let mut by_method: BTreeMap<(String, usize), Agg> = BTreeMap::new();
    let mut by_qtype: BTreeMap<(String, usize), Agg> = BTreeMap::new();
    let mut all_spans: Vec<SpanRecord> = Vec::new();
    let mut mismatches = 0usize;
    let mut bound_violations = 0usize;
    // max(actual) / min(bound headroom) per method, for the summary.
    let mut bound_stats: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for &method in &methods {
        for &id in &ids {
            let query = harness
                .queries()
                .iter()
                .find(|q| q.id == id)
                .expect("known id")
                .clone();
            let env = harness.env(query.domain);
            let bound = static_bound(method, &query, env);
            let baseline = harness.run_one(method, id);
            // `run_one` resets metrics first, so the LM's call counter
            // now holds exactly this run's submissions.
            let actual = env.lm.usage().2;
            let entry = bound_stats.entry(method.label()).or_insert((0, u64::MAX));
            entry.0 = entry.0.max(actual);
            entry.1 = entry.1.min(bound);
            if actual > bound {
                bound_violations += 1;
                eprintln!(
                    "BOUND VIOLATION: {} query {id}: {actual} LM calls > static bound {bound}",
                    method.label()
                );
            }
            let (trace, sink) = Trace::memory();
            let traced = tag_trace::with_trace(&trace, || {
                let _root = tag_trace::span(Stage::Request, method.label());
                harness.run_one(method, id)
            });
            if traced.answer != baseline.answer {
                mismatches += 1;
                eprintln!(
                    "MISMATCH: {} query {id}: traced {:?} != untraced {:?}",
                    method.label(),
                    traced.answer,
                    baseline.answer
                );
            }
            let qtype = query.qtype;
            for span in sink.take() {
                by_method
                    .entry((method.label().to_owned(), span.stage.index()))
                    .or_default()
                    .add_span(&span);
                by_qtype
                    .entry((format!("{qtype:?}"), span.stage.index()))
                    .or_default()
                    .add_span(&span);
                if jsonl {
                    all_spans.push(span);
                }
            }
        }
    }

    let method_names: Vec<&str> = methods.iter().map(|m| m.label()).collect();
    print!(
        "{}",
        render_table("per-method stage breakdown", &method_names, &by_method)
    );
    println!();
    let qtype_names = ["MatchBased", "Comparison", "Ranking", "Aggregation"];
    print!(
        "{}",
        render_table("per-query-type stage breakdown", &qtype_names, &by_qtype)
    );
    if jsonl {
        println!();
        for s in &all_spans {
            println!("{}", s.to_json());
        }
    }
    println!();
    println!("== static LM-call bound vs traced actuals ==");
    println!("{:<22} {:>12} {:>11}", "method", "max actual", "min bound");
    for (label, (max_actual, min_bound)) in &bound_stats {
        println!("{:<22} {:>12} {:>11}", label, max_actual, min_bound);
    }
    if mismatches > 0 || bound_violations > 0 {
        if mismatches > 0 {
            eprintln!("trace-report: {mismatches} traced/untraced answer mismatches");
        }
        if bound_violations > 0 {
            eprintln!("trace-report: {bound_violations} run(s) exceeded the static LM-call bound");
        }
        std::process::exit(1);
    }
    eprintln!(
        "trace-report: all traced answers byte-identical to untraced baseline; \
         every run within its static LM-call bound"
    );
}
