//! Regenerates Figure 2 of the paper: qualitative aggregation answers
//! for "Provide information about the races held on Sepang International
//! Circuit." across RAG, Text2SQL + LM, and hand-written TAG.

use tag_bench::{report, Harness};

fn main() {
    let harness = Harness::standard();
    println!("{}", report::figure2(&harness));
}
