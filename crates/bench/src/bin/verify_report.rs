//! `verify-report` — sweep the SemPlan verifier over every TAG-Bench
//! plan under every optimizer-rule combination.
//!
//! For each of the 80 benchmark queries and each of the 8
//! [`SemOptOptions`] combinations, the compiled naive plan is optimized
//! and checked three ways: the optimized tree must be well-formed
//! against the domain catalog ([`tag_analyze::verify_plan`]), the
//! rewrite must preserve the naive plan's work and satisfy each enabled
//! rule's postcondition ([`tag_analyze::verify_rewrite`]), and the
//! static LM-call bound must not regress. The RAG and rerank baseline
//! plans go through the same sweep.
//!
//! The sweep then *mutates* one optimized plan two ways — fusing a cut
//! without marking the filter distinct, and dropping a predicate — and
//! requires the verifier to reject both. A sweep that can no longer
//! catch a broken rewrite fails even if every real plan passes.
//!
//! ```text
//! verify-report [--scale tiny|small|standard] [--seed N] [--json PATH]
//! ```
//!
//! `--json PATH` additionally writes a machine-readable summary (the CI
//! artifact). Exit code 0 when every check passes, 1 otherwise.

use std::collections::BTreeMap;
use tag_analyze::{plan_cost, verify_plan, verify_rewrite, SchemaSource};
use tag_bench::Harness;
use tag_core::{compile_nlq, compile_rag, compile_rerank};
use tag_datagen::Scale;
use tag_lm::sim::SimConfig;
use tag_sql::{optimize_sem, SemNode, SemOptOptions};

fn usage() -> ! {
    eprintln!("usage: verify-report [--scale tiny|small|standard] [--seed N] [--json PATH]");
    std::process::exit(2);
}

fn parse_scale(name: &str) -> Scale {
    match name {
        "standard" => Scale::default(),
        "small" => Scale {
            schools: 120,
            players: 150,
            posts: 60,
            customers: 120,
            drivers: 10,
        },
        "tiny" => Scale {
            schools: 40,
            players: 40,
            posts: 20,
            customers: 40,
            drivers: 6,
        },
        _ => usage(),
    }
}

/// All 8 rewrite-rule combinations.
fn all_opts() -> Vec<SemOptOptions> {
    let mut out = Vec::new();
    for pushdown in [false, true] {
        for distinct_rewrite in [false, true] {
            for precut in [false, true] {
                out.push(SemOptOptions {
                    pushdown,
                    distinct_rewrite,
                    precut,
                });
            }
        }
    }
    out
}

#[derive(Default)]
struct Tally {
    plans: usize,
    failures: usize,
}

/// Verify one naive plan under one rule set; returns rendered
/// diagnostics when anything fails.
fn check(naive: &SemNode, opts: &SemOptOptions, schema: &dyn SchemaSource) -> Option<String> {
    let optimized = optimize_sem(naive.clone(), opts);
    let plan = verify_plan(&optimized, schema);
    let rewrite = verify_rewrite(naive, &optimized, opts, schema);
    if plan.is_ok() && rewrite.is_ok() {
        return None;
    }
    Some(format!("{}{}", plan.render(), rewrite.render()))
}

/// Fuse-without-distinct mutation: find a fused early-stop filter and
/// clear its distinct flag (the exact bug `fuse_precut` would have if
/// it forgot the dedup obligation). Returns false when the plan has no
/// fused filter to corrupt.
fn break_fused_distinct(node: &mut SemNode) -> bool {
    if let SemNode::SemFilter {
        distinct,
        early_stop: Some(_),
        ..
    } = node
    {
        *distinct = false;
        return true;
    }
    match node {
        SemNode::Predicate { input, .. }
        | SemNode::SemFilter { input, .. }
        | SemNode::Cut { input, .. }
        | SemNode::SemTopK { input, .. }
        | SemNode::SemAgg { input, .. }
        | SemNode::SemMap { input, .. }
        | SemNode::Rerank { input, .. }
        | SemNode::Generate { input, .. } => break_fused_distinct(input),
        SemNode::SemJoin { left, right, .. } => {
            break_fused_distinct(left) || break_fused_distinct(right)
        }
        SemNode::Scan { .. } | SemNode::Input { .. } | SemNode::Retrieve { .. } => false,
    }
}

/// Drop-a-node mutation: splice the first predicate out of the tree
/// (a pushdown that loses the filter it was supposed to move).
fn break_drop_predicate(node: &mut SemNode) -> bool {
    if let SemNode::Predicate { input, .. } = node {
        *node = (**input).clone();
        return true;
    }
    match node {
        SemNode::Predicate { input, .. }
        | SemNode::SemFilter { input, .. }
        | SemNode::Cut { input, .. }
        | SemNode::SemTopK { input, .. }
        | SemNode::SemAgg { input, .. }
        | SemNode::SemMap { input, .. }
        | SemNode::Rerank { input, .. }
        | SemNode::Generate { input, .. } => break_drop_predicate(input),
        SemNode::SemJoin { left, right, .. } => {
            break_drop_predicate(left) || break_drop_predicate(right)
        }
        SemNode::Scan { .. } | SemNode::Input { .. } | SemNode::Retrieve { .. } => false,
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn main() {
    let mut seed = 42u64;
    let mut scale = parse_scale("small");
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--scale" => scale = parse_scale(&val()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--json" => json_path = Some(val()),
            _ => usage(),
        }
    }

    eprintln!("verify-report: generating domains (seed {seed})...");
    let harness = Harness::new(seed, scale, SimConfig::default());
    let combos = all_opts();
    eprintln!(
        "verify-report: sweeping {} queries x {} rule combos...",
        harness.queries().len(),
        combos.len()
    );

    let mut by_tag: BTreeMap<String, Tally> = BTreeMap::new();
    let mut by_family: BTreeMap<&'static str, Tally> = BTreeMap::new();
    let mut failures: Vec<String> = Vec::new();
    for q in harness.queries() {
        let db = &harness.env(q.domain).db;
        let question = q.question();
        let list = q.qtype != tag_bench::QueryType::Aggregation;
        let plans: [(&'static str, SemNode); 3] = [
            ("handwritten", compile_nlq(&q.query)),
            ("rag", compile_rag(&question, 10, list)),
            ("rerank", compile_rerank(&question, 30, 10, list)),
        ];
        for opts in &combos {
            for (family, naive) in &plans {
                let tag = by_tag.entry(opts.cache_tag()).or_default();
                let fam = by_family.entry(family).or_default();
                tag.plans += 1;
                fam.plans += 1;
                if let Some(diag) = check(naive, opts, db) {
                    tag.failures += 1;
                    fam.failures += 1;
                    failures.push(format!(
                        "query {} ({family}, rules={}):\n{diag}",
                        q.id,
                        opts.cache_tag()
                    ));
                }
            }
        }
    }

    // Mutation checks: the sweep must still be able to reject a broken
    // rewrite. Use benchmark plans that exercise the relevant shapes.
    let opts = SemOptOptions::default();
    let mutant_query = harness
        .queries()
        .iter()
        .find(|q| {
            let mut plan = optimize_sem(compile_nlq(&q.query), &opts);
            break_fused_distinct(&mut plan)
        })
        .expect("some benchmark plan has a fused early-stop filter");
    let mutant_db = &harness.env(mutant_query.domain).db;
    let naive = compile_nlq(&mutant_query.query);
    let mut fused = optimize_sem(naive.clone(), &opts);
    assert!(break_fused_distinct(&mut fused));
    let caught_fused = !verify_plan(&fused, mutant_db).is_ok()
        || !verify_rewrite(&naive, &fused, &opts, mutant_db).is_ok();
    if !caught_fused {
        failures.push(format!(
            "MUTATION ESCAPED: fused-not-distinct on query {} was not rejected",
            mutant_query.id
        ));
    }

    let pred_query = harness
        .queries()
        .iter()
        .find(|q| {
            let mut plan = compile_nlq(&q.query);
            break_drop_predicate(&mut plan)
        })
        .expect("some benchmark plan contains a predicate");
    let pred_db = &harness.env(pred_query.domain).db;
    let pred_naive = compile_nlq(&pred_query.query);
    let mut dropped = optimize_sem(pred_naive.clone(), &opts);
    assert!(break_drop_predicate(&mut dropped));
    let caught_drop = !verify_rewrite(&pred_naive, &dropped, &opts, pred_db).is_ok();
    if !caught_drop {
        failures.push(format!(
            "MUTATION ESCAPED: dropped predicate on query {} was not rejected",
            pred_query.id
        ));
    }

    // Aggregate restatement of the rewrite check's cost clause on one
    // sample plan, so a broken cost model fails loudly here too.
    let sample_q = &harness.queries()[0];
    let sample = compile_nlq(&sample_q.query);
    let sample_db = &harness.env(sample_q.domain).db;
    let naive_cost = plan_cost(&sample, sample_db);
    let opt_cost = plan_cost(&optimize_sem(sample.clone(), &opts), sample_db);
    if opt_cost.lm_calls > naive_cost.lm_calls {
        failures.push(format!(
            "cost bound regressed on sample plan: {} > {}",
            opt_cost.lm_calls, naive_cost.lm_calls
        ));
    }

    println!("== verifier sweep: per rule combo ==");
    println!("{:<10} {:>7} {:>9}", "rules", "plans", "failures");
    for (tag, t) in &by_tag {
        println!("{:<10} {:>7} {:>9}", tag, t.plans, t.failures);
    }
    println!();
    println!("== verifier sweep: per plan family ==");
    println!("{:<12} {:>7} {:>9}", "family", "plans", "failures");
    for (fam, t) in &by_family {
        println!("{:<12} {:>7} {:>9}", fam, t.plans, t.failures);
    }
    println!();
    println!(
        "mutation checks: fused-not-distinct {}, dropped-predicate {}",
        if caught_fused { "caught" } else { "ESCAPED" },
        if caught_drop { "caught" } else { "ESCAPED" },
    );

    if let Some(path) = json_path {
        let mut json = String::from("{\n  \"combos\": {\n");
        let rows: Vec<String> = by_tag
            .iter()
            .map(|(tag, t)| {
                format!(
                    "    \"{}\": {{\"plans\": {}, \"failures\": {}}}",
                    json_escape(tag),
                    t.plans,
                    t.failures
                )
            })
            .collect();
        json.push_str(&rows.join(",\n"));
        json.push_str("\n  },\n");
        json.push_str(&format!(
            "  \"mutation_caught\": {{\"fused_not_distinct\": {caught_fused}, \"dropped_predicate\": {caught_drop}}},\n"
        ));
        let fails: Vec<String> = failures
            .iter()
            .map(|f| format!("    \"{}\"", json_escape(f)))
            .collect();
        json.push_str("  \"failures\": [");
        if fails.is_empty() {
            json.push_str("]\n}\n");
        } else {
            json.push('\n');
            json.push_str(&fails.join(",\n"));
            json.push_str("\n  ]\n}\n");
        }
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("verify-report: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("verify-report: wrote {path}");
    }

    if failures.is_empty() {
        eprintln!("verify-report: all plans verified under every rule combo");
        return;
    }
    for f in &failures {
        eprintln!("FAIL: {f}");
    }
    eprintln!("verify-report: {} failure(s)", failures.len());
    std::process::exit(1);
}
