//! Regenerates Table 1 of the paper: accuracy and execution time for all
//! five methods across the 80 TAG-Bench queries.

use tag_bench::{report, Harness, MethodId};

fn main() {
    let harness = Harness::standard();
    eprintln!("Running 5 methods x 80 queries...");
    let outcomes = harness.run_all(&MethodId::all());
    let queries = harness.queries().to_vec();
    println!("{}", report::table1(&outcomes, &queries));
}
