//! Criterion bench behind Table 2: wall-clock cost of the strongest
//! baseline (Text2SQL) and hand-written TAG on knowledge vs reasoning
//! queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tag_bench::{Harness, MethodId, QueryKind};

fn bench_kinds(c: &mut Criterion) {
    let harness = Harness::small();
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    for kind in [QueryKind::Knowledge, QueryKind::Reasoning] {
        let ids: Vec<usize> = harness
            .queries()
            .iter()
            .filter(|q| q.kind == kind)
            .take(3)
            .map(|q| q.id)
            .collect();
        for method in [MethodId::Text2Sql, MethodId::HandWritten] {
            group.bench_with_input(
                BenchmarkId::new(method.label(), kind.label()),
                &ids,
                |b, ids| {
                    b.iter(|| {
                        for &id in ids {
                            harness.run_one(method, id);
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kinds);
criterion_main!(benches);
