//! Criterion bench behind the ablations: the semantic engine's batch
//! behaviour and RAG retrieval depth, measured in wall-clock time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use tag_lm::prompts::{sem_filter_prompt, SemClaim};
use tag_lm::sim::{SimConfig, SimLm};
use tag_semops::SemEngine;

fn bench_engine_batching(c: &mut Criterion) {
    let prompts: Vec<String> = (0..64)
        .map(|i| {
            sem_filter_prompt(
                &SemClaim::CityInRegion {
                    region: "Bay Area".into(),
                },
                &format!("City {i}"),
            )
        })
        .collect();
    let mut group = c.benchmark_group("ablation_batch");
    for batch in [1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let engine =
                SemEngine::with_batch_size(Arc::new(SimLm::new(SimConfig::default())), batch);
            b.iter(|| {
                engine.reset();
                engine.complete_batch(&prompts).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_retrieval_k(c: &mut Criterion) {
    use tag_embed::{Embedder, RowStore};
    let mut store = RowStore::new(Embedder::default());
    for i in 0..2000 {
        store.add_row(vec![
            ("id".to_owned(), i.to_string()),
            (
                "text".to_owned(),
                format!("record number {i} about topic {}", i % 37),
            ),
        ]);
    }
    let mut group = c.benchmark_group("ablation_retrieval_k");
    for k in [1usize, 10, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| store.retrieve("records about topic 5", k))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_batching, bench_retrieval_k);
criterion_main!(benches);
