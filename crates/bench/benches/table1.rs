//! Criterion bench behind Table 1: wall-clock cost of each method on a
//! representative query of every type. (Accuracy and *simulated* ET come
//! from `cargo run -p tag-bench --bin table1`; this measures the real
//! cost of running the reproduction itself.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tag_bench::{Harness, MethodId, QueryType};

fn representative_ids(harness: &Harness) -> Vec<(QueryType, usize)> {
    [
        QueryType::MatchBased,
        QueryType::Comparison,
        QueryType::Ranking,
        QueryType::Aggregation,
    ]
    .iter()
    .map(|t| {
        (
            *t,
            harness
                .queries()
                .iter()
                .find(|q| q.qtype == *t)
                .expect("one query per type")
                .id,
        )
    })
    .collect()
}

fn bench_methods(c: &mut Criterion) {
    let harness = Harness::small();
    let ids = representative_ids(&harness);
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for method in MethodId::all() {
        for (qtype, id) in &ids {
            group.bench_with_input(
                BenchmarkId::new(method.label(), qtype.label()),
                id,
                |b, &id| b.iter(|| harness.run_one(method, id)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);
