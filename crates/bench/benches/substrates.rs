//! Microbenchmarks of the substrates: the SQL engine's operators, the
//! B+-tree index, the embedder, and flat vector search.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tag_embed::{Embedder, FlatIndex};
use tag_sql::index::BTreeIndex;
use tag_sql::{Database, Value};

fn populated_db(rows: usize) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, grp TEXT, x REAL, name TEXT)")
        .unwrap();
    for i in 0..rows {
        db.execute(&format!(
            "INSERT INTO t VALUES ({i}, 'g{}', {}.5, 'name {i}')",
            i % 10,
            i % 997
        ))
        .unwrap();
    }
    db.execute("CREATE INDEX idx_x ON t (x)").unwrap();
    db
}

fn bench_sql(c: &mut Criterion) {
    let mut db = populated_db(10_000);
    let mut group = c.benchmark_group("sql_engine");
    group.bench_function("filter_scan_10k", |b| {
        b.iter(|| {
            db.execute("SELECT name FROM t WHERE grp = 'g3' AND x > 100")
                .unwrap()
        })
    });
    group.bench_function("index_probe_10k", |b| {
        b.iter(|| db.execute("SELECT name FROM t WHERE id = 7777").unwrap())
    });
    group.bench_function("group_by_10k", |b| {
        b.iter(|| {
            db.execute("SELECT grp, COUNT(*), AVG(x) FROM t GROUP BY grp")
                .unwrap()
        })
    });
    group.bench_function("topk_10k", |b| {
        b.iter(|| {
            db.execute("SELECT name FROM t ORDER BY x DESC LIMIT 10")
                .unwrap()
        })
    });
    group.bench_function("self_join_1k", |b| {
        let mut small = populated_db(1_000);
        b.iter(move || {
            small
                .execute("SELECT COUNT(*) FROM t a JOIN t b ON a.id = b.id")
                .unwrap()
        })
    });
    group.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree_index");
    for n in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("insert", n), &n, |b, &n| {
            b.iter(|| {
                let mut idx = BTreeIndex::new();
                for i in 0..n {
                    idx.insert(Value::Int((i * 37 % n) as i64), i);
                }
                idx
            })
        });
    }
    let mut idx = BTreeIndex::new();
    for i in 0..100_000usize {
        idx.insert(Value::Int((i * 37 % 100_000) as i64), i);
    }
    group.bench_function("probe_100k", |b| b.iter(|| idx.get(&Value::Int(31415))));
    group.bench_function("range_100k", |b| {
        let lo = Value::Int(5_000);
        let hi = Value::Int(5_500);
        b.iter(|| {
            idx.range(
                std::ops::Bound::Included(&lo),
                std::ops::Bound::Excluded(&hi),
            )
        })
    });
    group.finish();
}

fn bench_embed(c: &mut Criterion) {
    let e = Embedder::default();
    let mut group = c.benchmark_group("embedding");
    group.bench_function("embed_sentence", |b| {
        b.iter(|| e.embed("races held on Sepang International Circuit in 2010"))
    });
    let mut idx = FlatIndex::new(e.dims());
    for i in 0..5_000 {
        idx.add(e.embed(&format!("document number {i} about subject {}", i % 53)));
    }
    let q = e.embed("documents about subject 7");
    group.bench_function("flat_search_5k_top10", |b| b.iter(|| idx.search(&q, 10)));
    group.finish();
}

criterion_group!(benches, bench_sql, bench_btree, bench_embed);
criterion_main!(benches);
