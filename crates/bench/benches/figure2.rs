//! Criterion bench behind Figure 2: wall-clock cost of the three
//! aggregation pipelines on the Sepang query.

use criterion::{criterion_group, criterion_main, Criterion};
use tag_bench::{Harness, MethodId, QueryType};

fn bench_sepang(c: &mut Criterion) {
    let harness = Harness::small();
    let id = harness
        .queries()
        .iter()
        .find(|q| q.qtype == QueryType::Aggregation && q.question().contains("Sepang"))
        .expect("Sepang query")
        .id;
    let mut group = c.benchmark_group("figure2_sepang");
    group.sample_size(10);
    for method in [MethodId::Rag, MethodId::Text2SqlLm, MethodId::HandWritten] {
        group.bench_function(method.label(), |b| b.iter(|| harness.run_one(method, id)));
    }
    group.finish();
}

criterion_group!(benches, bench_sepang);
criterion_main!(benches);
