//! Trace sinks: where completed spans go.

use crate::span::SpanRecord;
use parking_lot::Mutex;

/// Destination for completed spans. Implementations must be cheap —
/// `record` is called once per span, on the traced thread.
pub trait TraceSink: Send + Sync {
    /// Deliver one completed span.
    fn record(&self, span: SpanRecord);
}

/// Discards every span. The default sink: with it installed, tracing
/// costs one thread-local check per instrumented site.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _span: SpanRecord) {}
}

/// Collects spans in memory, in completion order (children before
/// parents, since a span is recorded when its guard drops).
#[derive(Debug, Default)]
pub struct MemSink {
    spans: Mutex<Vec<SpanRecord>>,
}

impl MemSink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Move the collected spans out, leaving the sink empty.
    pub fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.spans.lock())
    }

    /// Copy of the collected spans.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.spans.lock().clone()
    }

    /// Number of spans collected so far.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// True when no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }
}

impl TraceSink for MemSink {
    fn record(&self, span: SpanRecord) {
        self.spans.lock().push(span);
    }
}
