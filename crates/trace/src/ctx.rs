//! Thread-local trace context: install a trace, open spans, attribute
//! LM usage.

use crate::sink::{MemSink, TraceSink};
use crate::span::{LmUsage, SpanRecord, Stage};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Process-wide trace id allocator (ids are unique across traces so the
/// serving layer can hand them out as `TRACE <id>` handles).
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

struct TraceInner {
    id: u64,
    started: Instant,
    next_span: AtomicU64,
    sink: Arc<dyn TraceSink>,
}

/// A handle to one trace: an id, a start instant, a span-id allocator,
/// and the sink completed spans are delivered to. Cloning is cheap and
/// shares the same trace.
#[derive(Clone)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace").field("id", &self.inner.id).finish()
    }
}

impl Trace {
    /// New trace delivering spans to `sink`.
    pub fn with_sink(sink: Arc<dyn TraceSink>) -> Trace {
        Trace {
            inner: Arc::new(TraceInner {
                id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
                started: Instant::now(),
                next_span: AtomicU64::new(1),
                sink,
            }),
        }
    }

    /// New trace collecting into a fresh [`MemSink`]; returns both.
    pub fn memory() -> (Trace, Arc<MemSink>) {
        let sink = Arc::new(MemSink::new());
        let trace = Trace::with_sink(sink.clone());
        (trace, sink)
    }

    /// The process-unique trace id.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    fn next_span_id(&self) -> u64 {
        self.inner.next_span.fetch_add(1, Ordering::Relaxed)
    }
}

struct OpenSpan {
    id: u64,
    parent: Option<u64>,
    stage: Stage,
    label: String,
    started: Instant,
    start_us: u64,
    lm: LmUsage,
    annotations: Vec<String>,
}

struct ActiveTrace {
    trace: Trace,
    stack: Vec<OpenSpan>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Install `trace` on the current thread for the duration of `f`.
/// Nesting is supported: the previous trace (if any) is restored on
/// exit, including on unwind.
pub fn with_trace<T>(trace: &Trace, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<ActiveTrace>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            ACTIVE.with(|a| *a.borrow_mut() = prev);
        }
    }
    let prev = ACTIVE.with(|a| {
        a.borrow_mut().replace(ActiveTrace {
            trace: trace.clone(),
            stack: Vec::new(),
        })
    });
    let _restore = Restore(prev);
    f()
}

/// True when a trace is installed on the current thread. Instrumented
/// code uses this to skip trace-only work (profiled SQL execution, LM
/// usage snapshots) on the hot untraced path.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Id of the trace installed on the current thread, if any.
pub fn current_trace_id() -> Option<u64> {
    ACTIVE.with(|a| a.borrow().as_ref().map(|t| t.trace.id()))
}

/// Guard for an open span. Dropping it closes the span and delivers the
/// [`SpanRecord`] to the trace's sink. When no trace is active the guard
/// is inert.
#[must_use = "dropping the guard closes the span; bind it with `let _span = ...`"]
pub struct SpanGuard {
    id: Option<u64>,
}

/// Open a span tagged `stage` on the current thread's trace. Returns an
/// inert guard when no trace is installed.
pub fn span(stage: Stage, label: &str) -> SpanGuard {
    let id = ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        let active = a.as_mut()?;
        let id = active.trace.next_span_id();
        let parent = active.stack.last().map(|s| s.id);
        let start_us = active.trace.inner.started.elapsed().as_micros() as u64;
        active.stack.push(OpenSpan {
            id,
            parent,
            stage,
            label: label.to_owned(),
            started: Instant::now(),
            start_us,
            lm: LmUsage::default(),
            annotations: Vec::new(),
        });
        Some(id)
    });
    SpanGuard { id }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(id) = self.id else { return };
        // Close the span and ship it. If guards are dropped out of order
        // (early returns interleaving with `?`), pop down to this id so
        // orphaned children are still flushed, attributed to themselves.
        let records: Vec<SpanRecord> = ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            let Some(active) = a.as_mut() else {
                return Vec::new();
            };
            let Some(pos) = active.stack.iter().rposition(|s| s.id == id) else {
                return Vec::new();
            };
            let trace_id = active.trace.id();
            active
                .stack
                .split_off(pos)
                .into_iter()
                .rev() // innermost first: children recorded before parents
                .map(|open| SpanRecord {
                    trace_id,
                    id: open.id,
                    parent: open.parent,
                    stage: open.stage,
                    label: open.label,
                    start_us: open.start_us,
                    wall: open.started.elapsed(),
                    lm: open.lm,
                    annotations: open.annotations,
                })
                .collect()
        });
        if records.is_empty() {
            return;
        }
        // Sink delivery happens outside the thread-local borrow so a
        // sink may itself call trace functions without panicking.
        let sink = ACTIVE.with(|a| {
            a.borrow()
                .as_ref()
                .map(|active| Arc::clone(&active.trace.inner.sink))
        });
        if let Some(sink) = sink {
            for r in records {
                sink.record(r);
            }
        }
    }
}

/// Attribute LM usage to the innermost open span on the current thread.
/// A no-op when no trace is installed or no span is open.
pub fn record_lm(usage: LmUsage) {
    ACTIVE.with(|a| {
        if let Some(active) = a.borrow_mut().as_mut() {
            if let Some(open) = active.stack.last_mut() {
                open.lm.add(&usage);
            }
        }
    });
}

/// Attach a free-form annotation (SQL text, an annotated plan, ...) to
/// the innermost open span. A no-op when no trace is installed.
pub fn annotate(text: impl Into<String>) {
    ACTIVE.with(|a| {
        if let Some(active) = a.borrow_mut().as_mut() {
            if let Some(open) = active.stack.last_mut() {
                open.annotations.push(text.into());
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_by_default() {
        assert!(!is_active());
        assert_eq!(current_trace_id(), None);
        // Inert guard: no panic, nothing recorded.
        let _g = span(Stage::Syn, "noop");
        record_lm(LmUsage::default());
        annotate("ignored");
    }

    #[test]
    fn spans_form_a_tree() {
        let (trace, sink) = Trace::memory();
        with_trace(&trace, || {
            let _root = span(Stage::Request, "request");
            {
                let _syn = span(Stage::Syn, "syn");
                record_lm(LmUsage {
                    calls: 1,
                    rounds: 1,
                    prompt_tokens: 100,
                    completion_tokens: 10,
                    ..LmUsage::default()
                });
            }
            {
                let _exec = span(Stage::Exec, "sql");
                annotate("SELECT 1");
            }
        });
        let spans = sink.take();
        assert_eq!(spans.len(), 3);
        // Children recorded before the root (guard drop order).
        assert_eq!(spans[0].stage, Stage::Syn);
        assert_eq!(spans[1].stage, Stage::Exec);
        assert_eq!(spans[2].stage, Stage::Request);
        let root = &spans[2];
        assert_eq!(root.parent, None);
        assert_eq!(spans[0].parent, Some(root.id));
        assert_eq!(spans[1].parent, Some(root.id));
        assert_eq!(spans[0].lm.calls, 1);
        assert_eq!(spans[1].annotations, vec!["SELECT 1".to_string()]);
        // Ids increase parent-to-child.
        assert!(root.id < spans[0].id && spans[0].id < spans[1].id);
    }

    #[test]
    fn usage_goes_to_innermost_span_only() {
        let (trace, sink) = Trace::memory();
        with_trace(&trace, || {
            let _outer = span(Stage::Exec, "outer");
            {
                let _inner = span(Stage::Gen, "inner");
                record_lm(LmUsage {
                    calls: 2,
                    ..LmUsage::default()
                });
            }
        });
        let spans = sink.take();
        let inner = spans.iter().find(|s| s.label == "inner").unwrap();
        let outer = spans.iter().find(|s| s.label == "outer").unwrap();
        assert_eq!(inner.lm.calls, 2);
        assert_eq!(outer.lm.calls, 0, "parent must not double-count");
    }

    #[test]
    fn nested_with_trace_restores_outer() {
        let (outer, outer_sink) = Trace::memory();
        let (inner, inner_sink) = Trace::memory();
        with_trace(&outer, || {
            let _a = span(Stage::Request, "outer-span");
            with_trace(&inner, || {
                let _b = span(Stage::Request, "inner-span");
                assert_eq!(current_trace_id(), Some(inner.id()));
            });
            assert_eq!(current_trace_id(), Some(outer.id()));
        });
        assert!(!is_active());
        assert_eq!(outer_sink.len(), 1);
        assert_eq!(inner_sink.len(), 1);
        assert_ne!(outer.id(), inner.id());
    }

    #[test]
    fn child_durations_nest_within_parent() {
        let (trace, sink) = Trace::memory();
        with_trace(&trace, || {
            let _root = span(Stage::Request, "request");
            for i in 0..3 {
                let _child = span(Stage::Exec, &format!("step-{i}"));
                std::hint::black_box((0..1000).sum::<u64>());
            }
        });
        let spans = sink.take();
        let root = spans.iter().find(|s| s.parent.is_none()).unwrap();
        let child_sum: std::time::Duration = spans
            .iter()
            .filter(|s| s.parent == Some(root.id))
            .map(|s| s.wall)
            .sum();
        assert!(
            child_sum <= root.wall,
            "children {child_sum:?} exceed root {root:?}"
        );
    }

    #[test]
    fn guard_outliving_trace_is_harmless() {
        let (trace, sink) = Trace::memory();
        let guard = with_trace(&trace, || span(Stage::Syn, "escaped"));
        drop(guard); // trace no longer installed: nothing to record
        assert_eq!(sink.len(), 0);
    }
}
