//! # tag-trace
//!
//! Structured tracing for the TAG pipeline (`syn → exec → gen`).
//!
//! The paper decomposes every query into query synthesis, relational
//! execution, and answer generation; this crate makes that decomposition
//! observable. A [`Trace`] owns a tree of spans, each tagged with a
//! pipeline [`Stage`], a wall-clock duration, and per-span LM accounting
//! ([`LmUsage`]: calls, batch rounds, prompt-cache hits, token counts,
//! and virtual-clock seconds plumbed from `tag-lm`'s cost model).
//!
//! Design constraints, in order:
//!
//! 1. **Tracing must not change answers.** Instrumented code paths only
//!    *read* state; when no trace is installed every entry point is a
//!    no-op behind a single thread-local check. Traced and untraced runs
//!    are byte-identical.
//! 2. **Lock-cheap.** Span open/close touches only a thread-local stack;
//!    the shared sink is hit once per span, at close.
//! 3. **No global registry.** A trace is installed for the duration of a
//!    closure ([`with_trace`]) on the current thread — exactly the shape
//!    of a serve worker handling one request, or a bench replay loop.
//!
//! Completed spans are delivered to a [`TraceSink`]; [`MemSink`] collects
//! them in memory, [`NullSink`] discards them. [`SpanRecord::to_json`]
//! renders one span as a JSON object (the JSONL export format) and
//! [`render_tree`] pretty-prints a span tree for the `TRACE` protocol
//! command and `trace-report`.

#![warn(missing_docs)]

mod ctx;
mod sink;
mod span;

pub use ctx::{
    annotate, current_trace_id, is_active, record_lm, span, with_trace, SpanGuard, Trace,
};
pub use sink::{MemSink, NullSink, TraceSink};
pub use span::{render_tree, LmUsage, SpanRecord, Stage};
