//! Span records: the unit of trace data.

use std::fmt::Write as _;
use std::time::Duration;

/// Pipeline stage a span belongs to. Mirrors the paper's decomposition
/// (`syn`/`exec`/`gen`) plus the retrieval stages used by the baselines
/// and a `request` root for whole-request spans in the serving layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Whole-request root span (serving layer, bench replay).
    Request,
    /// Query synthesis: the LM writes SQL.
    Syn,
    /// Relational/semantic execution over the database.
    Exec,
    /// Answer generation from the computed table.
    Gen,
    /// Embedding retrieval (RAG and rerank baselines).
    Retrieve,
    /// LM reranking of retrieved candidates.
    Rerank,
}

impl Stage {
    /// All stages, in display order. `index` follows this order.
    pub const ALL: [Stage; 6] = [
        Stage::Request,
        Stage::Syn,
        Stage::Exec,
        Stage::Gen,
        Stage::Retrieve,
        Stage::Rerank,
    ];

    /// Stable lowercase tag (used in JSONL and reports).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Request => "request",
            Stage::Syn => "syn",
            Stage::Exec => "exec",
            Stage::Gen => "gen",
            Stage::Retrieve => "retrieve",
            Stage::Rerank => "rerank",
        }
    }

    /// Position in [`Stage::ALL`] — for array-indexed per-stage counters.
    pub fn index(self) -> usize {
        match self {
            Stage::Request => 0,
            Stage::Syn => 1,
            Stage::Exec => 2,
            Stage::Gen => 3,
            Stage::Retrieve => 4,
            Stage::Rerank => 5,
        }
    }

    /// Parse the lowercase tag back into a stage.
    pub fn parse(s: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|st| st.as_str() == s)
    }
}

/// Per-span LM accounting. All counters are attributed to the innermost
/// open span at the time of the LM interaction, so summing any set of
/// spans never double-counts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LmUsage {
    /// Prompts sent to the language model (after cache dedup).
    pub calls: u64,
    /// Batch rounds those prompts were grouped into.
    pub rounds: u64,
    /// Prompts served from the semantic-operator prompt cache.
    pub cache_hits: u64,
    /// Prompt tokens consumed across the calls.
    pub prompt_tokens: u64,
    /// Completion tokens produced across the calls.
    pub completion_tokens: u64,
    /// Virtual-clock seconds charged by the cost model. Exact under
    /// serial replay; an approximation under concurrent serving where
    /// batch rounds are shared between requests.
    pub virtual_seconds: f64,
}

impl LmUsage {
    /// Accumulate another usage record into this one.
    pub fn add(&mut self, other: &LmUsage) {
        self.calls += other.calls;
        self.rounds += other.rounds;
        self.cache_hits += other.cache_hits;
        self.prompt_tokens += other.prompt_tokens;
        self.completion_tokens += other.completion_tokens;
        self.virtual_seconds += other.virtual_seconds;
    }

    /// True when every counter is zero (span did no LM work).
    pub fn is_zero(&self) -> bool {
        self.calls == 0
            && self.rounds == 0
            && self.cache_hits == 0
            && self.prompt_tokens == 0
            && self.completion_tokens == 0
            && self.virtual_seconds == 0.0
    }
}

/// One completed span, as delivered to a [`crate::TraceSink`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Span id, unique and monotonically increasing within the trace
    /// (a parent always has a smaller id than its children).
    pub id: u64,
    /// Parent span id; `None` for a root span.
    pub parent: Option<u64>,
    /// Pipeline stage tag.
    pub stage: Stage,
    /// Human-readable label ("text2sql-syn", "sql", "answer", ...).
    pub label: String,
    /// Microseconds from trace start to span open.
    pub start_us: u64,
    /// Wall-clock duration of the span.
    pub wall: Duration,
    /// LM accounting attributed to this span (not its children).
    pub lm: LmUsage,
    /// Free-form annotations (SQL text, EXPLAIN ANALYZE plans, ...).
    pub annotations: Vec<String>,
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl SpanRecord {
    /// Render the span as one JSON object (no trailing newline). This is
    /// the JSONL trace-export format; no external JSON crate is used.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(160);
        let _ = write!(
            out,
            "{{\"trace\":{},\"span\":{},\"parent\":",
            self.trace_id, self.id
        );
        match self.parent {
            Some(p) => {
                let _ = write!(out, "{p}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(out, ",\"stage\":\"{}\",\"label\":\"", self.stage.as_str());
        json_escape(&mut out, &self.label);
        let _ = write!(
            out,
            "\",\"start_us\":{},\"wall_us\":{},\"lm_calls\":{},\"lm_rounds\":{},\
             \"cache_hits\":{},\"prompt_tokens\":{},\"completion_tokens\":{},\
             \"virtual_s\":{:.6},\"annotations\":[",
            self.start_us,
            self.wall.as_micros(),
            self.lm.calls,
            self.lm.rounds,
            self.lm.cache_hits,
            self.lm.prompt_tokens,
            self.lm.completion_tokens,
            self.lm.virtual_seconds,
        );
        for (i, a) in self.annotations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(&mut out, a);
            out.push('"');
        }
        out.push_str("]}");
        out
    }
}

fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

fn render_span(out: &mut String, spans: &[SpanRecord], idx: usize, depth: usize) {
    let s = &spans[idx];
    let pad = "  ".repeat(depth);
    let _ = write!(
        out,
        "{pad}[{}] {} {}",
        s.stage.as_str(),
        s.label,
        fmt_duration(s.wall)
    );
    if !s.lm.is_zero() {
        let _ = write!(
            out,
            "  lm: calls={} rounds={} hits={} tok={}/{} virt={:.3}s",
            s.lm.calls,
            s.lm.rounds,
            s.lm.cache_hits,
            s.lm.prompt_tokens,
            s.lm.completion_tokens,
            s.lm.virtual_seconds
        );
    }
    out.push('\n');
    for a in &s.annotations {
        for line in a.lines() {
            let _ = writeln!(out, "{pad}  | {line}");
        }
    }
    for (j, child) in spans.iter().enumerate() {
        if child.parent == Some(s.id) {
            render_span(out, spans, j, depth + 1);
        }
    }
}

/// Pretty-print a span tree (the `TRACE <id>` response format). Spans
/// whose parent is absent from the slice are rendered as roots.
pub fn render_tree(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.id).collect();
    for (i, s) in spans.iter().enumerate() {
        let is_root = match s.parent {
            None => true,
            Some(p) => !ids.contains(&p),
        };
        if is_root {
            render_span(&mut out, spans, i, 0);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, parent: Option<u64>, stage: Stage) -> SpanRecord {
        SpanRecord {
            trace_id: 7,
            id,
            parent,
            stage,
            label: format!("span-{id}"),
            start_us: id * 10,
            wall: Duration::from_micros(100 * id),
            lm: LmUsage::default(),
            annotations: Vec::new(),
        }
    }

    #[test]
    fn stage_roundtrip_and_index() {
        for (i, st) in Stage::ALL.into_iter().enumerate() {
            assert_eq!(st.index(), i);
            assert_eq!(Stage::parse(st.as_str()), Some(st));
        }
        assert_eq!(Stage::parse("bogus"), None);
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut s = record(1, None, Stage::Exec);
        s.label = "quote \" slash \\ newline \n tab \t".into();
        s.annotations.push("ctrl \u{1} char".into());
        let json = s.to_json();
        assert!(
            json.contains(r#"quote \" slash \\ newline \n tab \t"#),
            "{json}"
        );
        assert!(json.contains(r"ctrl \u0001 char"), "{json}");
        assert!(json.contains("\"parent\":null"), "{json}");
    }

    #[test]
    fn json_has_all_fields() {
        let mut s = record(2, Some(1), Stage::Gen);
        s.lm = LmUsage {
            calls: 3,
            rounds: 1,
            cache_hits: 2,
            prompt_tokens: 640,
            completion_tokens: 12,
            virtual_seconds: 4.5,
        };
        let json = s.to_json();
        for key in [
            "\"trace\":7",
            "\"span\":2",
            "\"parent\":1",
            "\"stage\":\"gen\"",
            "\"lm_calls\":3",
            "\"lm_rounds\":1",
            "\"cache_hits\":2",
            "\"prompt_tokens\":640",
            "\"completion_tokens\":12",
            "\"virtual_s\":4.500000",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn tree_renders_nested_spans() {
        let spans = vec![
            record(1, None, Stage::Request),
            record(2, Some(1), Stage::Syn),
            record(3, Some(1), Stage::Exec),
            record(4, Some(3), Stage::Exec),
        ];
        let tree = render_tree(&spans);
        let lines: Vec<&str> = tree.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("[request]"));
        assert!(lines[1].starts_with("  [syn]"));
        assert!(lines[2].starts_with("  [exec]"));
        assert!(lines[3].starts_with("    [exec]"));
    }

    #[test]
    fn orphan_spans_render_as_roots() {
        let spans = vec![record(5, Some(99), Stage::Gen)];
        let tree = render_tree(&spans);
        assert!(tree.starts_with("[gen]"), "{tree}");
    }

    #[test]
    fn usage_add_accumulates() {
        let mut a = LmUsage::default();
        assert!(a.is_zero());
        let b = LmUsage {
            calls: 1,
            rounds: 1,
            cache_hits: 0,
            prompt_tokens: 10,
            completion_tokens: 5,
            virtual_seconds: 0.25,
        };
        a.add(&b);
        a.add(&b);
        assert_eq!(a.calls, 2);
        assert_eq!(a.prompt_tokens, 20);
        assert!((a.virtual_seconds - 0.5).abs() < 1e-12);
        assert!(!a.is_zero());
    }
}
