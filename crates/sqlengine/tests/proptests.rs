//! Property-based tests for the SQL engine.

use proptest::prelude::*;
use std::ops::Bound;
use tag_sql::index::BTreeIndex;
use tag_sql::parser::{parse_expr, parse_statement};
use tag_sql::value::{arith, like_match, Value};
use tag_sql::Database;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i32>().prop_map(|i| Value::Int(i as i64)),
        (-1.0e6f64..1.0e6).prop_map(Value::Float),
        "[a-z]{0,8}".prop_map(Value::text),
    ]
}

proptest! {
    /// total_cmp really is a total order: antisymmetric and transitive on
    /// random triples.
    #[test]
    fn value_order_is_total(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        prop_assert_eq!(a.total_cmp(&a), Ordering::Equal);
    }

    /// Values that compare equal must hash equal (HashMap correctness).
    #[test]
    fn equal_values_hash_equal(a in value_strategy(), b in value_strategy()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        if a == b {
            let mut ha = DefaultHasher::new();
            let mut hb = DefaultHasher::new();
            a.hash(&mut ha);
            b.hash(&mut hb);
            prop_assert_eq!(ha.finish(), hb.finish());
        }
    }

    /// Addition/multiplication commute (when both succeed).
    #[test]
    fn arith_commutes(a in value_strategy(), b in value_strategy()) {
        if let (Ok(x), Ok(y)) = (arith::add(&a, &b), arith::add(&b, &a)) {
            prop_assert_eq!(x, y);
        }
        if let (Ok(x), Ok(y)) = (arith::mul(&a, &b), arith::mul(&b, &a)) {
            prop_assert_eq!(x, y);
        }
    }

    /// The tokenizer and parser never panic on arbitrary input.
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = parse_statement(&input);
        let _ = parse_expr(&input);
    }

    /// LIKE with a bare '%' matches everything; a pattern equal to the
    /// text (no wildcards) matches itself.
    #[test]
    fn like_properties(text in "[a-zA-Z0-9 ]{0,20}") {
        prop_assert!(like_match(&text, "%"));
        let no_wild: String = text.chars().filter(|c| *c != '%' && *c != '_').collect();
        prop_assert!(like_match(&no_wild, &no_wild));
    }

    /// The iterative LIKE matcher agrees with a straightforward
    /// recursive reference implementation on small random inputs.
    #[test]
    fn like_matches_reference(
        text in "[ab]{0,10}",
        pattern in "[ab%_]{0,8}",
    ) {
        fn reference(t: &[u8], p: &[u8]) -> bool {
            if p.is_empty() {
                return t.is_empty();
            }
            match p[0] {
                b'%' => (0..=t.len()).any(|i| reference(&t[i..], &p[1..])),
                b'_' => !t.is_empty() && reference(&t[1..], &p[1..]),
                c => !t.is_empty() && t[0] == c && reference(&t[1..], &p[1..]),
            }
        }
        prop_assert_eq!(
            like_match(&text, &pattern),
            reference(text.as_bytes(), pattern.as_bytes()),
            "text={:?} pattern={:?}", text, pattern
        );
    }

    /// B+-tree: after arbitrary insert/remove sequences, invariants hold
    /// and lookups agree with a reference BTreeMap model.
    #[test]
    fn btree_matches_model(ops in prop::collection::vec(
        (any::<bool>(), -50i64..50, 0usize..100), 0..400)
    ) {
        use std::collections::BTreeMap;
        let mut tree = BTreeIndex::new();
        let mut model: BTreeMap<i64, Vec<usize>> = BTreeMap::new();
        for (is_insert, key, row) in ops {
            if is_insert {
                tree.insert(Value::Int(key), row);
                model.entry(key).or_default().push(row);
            } else {
                let expected = model.get_mut(&key)
                    .and_then(|v| v.iter().position(|r| *r == row).map(|p| { v.swap_remove(p); }))
                    .is_some();
                if let Some(v) = model.get(&key) {
                    if v.is_empty() { model.remove(&key); }
                }
                let got = tree.remove(&Value::Int(key), row);
                prop_assert_eq!(got, expected);
            }
        }
        tree.check_invariants();
        for (k, rows) in &model {
            let mut got = tree.get(&Value::Int(*k));
            got.sort_unstable();
            let mut want = rows.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
        // Ordered iteration matches the model's key order.
        let keys: Vec<i64> = tree.iter_ordered().into_iter()
            .map(|(k, _)| k.as_i64().unwrap()).collect();
        let want: Vec<i64> = model.keys().copied().collect();
        prop_assert_eq!(keys, want);
    }

    /// B+-tree range scans agree with filtering the model.
    #[test]
    fn btree_range_matches_model(
        keys in prop::collection::vec(-100i64..100, 1..200),
        lo in -120i64..120,
        span in 0i64..100,
    ) {
        let mut tree = BTreeIndex::new();
        for (row, k) in keys.iter().enumerate() {
            tree.insert(Value::Int(*k), row);
        }
        let hi = lo + span;
        let lo_v = Value::Int(lo);
        let hi_v = Value::Int(hi);
        let mut got = tree.range(Bound::Included(&lo_v), Bound::Excluded(&hi_v));
        got.sort_unstable();
        let mut want: Vec<usize> = keys.iter().enumerate()
            .filter(|(_, k)| **k >= lo && **k < hi)
            .map(|(i, _)| i)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// ORDER BY x LIMIT k through the engine (TopK path) equals sorting
    /// the full result client-side and truncating.
    #[test]
    fn topk_equals_sort_then_limit(
        vals in prop::collection::vec(-1000i64..1000, 0..60),
        k in 1u64..10,
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x INTEGER)").unwrap();
        for v in &vals {
            db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let rs = db.execute(&format!("SELECT x FROM t ORDER BY x DESC LIMIT {k}")).unwrap();
        let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut want = vals.clone();
        want.sort_unstable_by(|a, b| b.cmp(a));
        want.truncate(k as usize);
        prop_assert_eq!(got, want);
    }

    /// COUNT/SUM/AVG/MIN/MAX agree with client-side computation.
    #[test]
    fn aggregates_match_reference(vals in prop::collection::vec(-100i64..100, 1..50)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x INTEGER)").unwrap();
        for v in &vals {
            db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let rs = db.execute(
            "SELECT COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x) FROM t"
        ).unwrap();
        let row = &rs.rows[0];
        prop_assert_eq!(row[0].as_i64().unwrap(), vals.len() as i64);
        prop_assert_eq!(row[1].as_i64().unwrap(), vals.iter().sum::<i64>());
        let avg = vals.iter().sum::<i64>() as f64 / vals.len() as f64;
        prop_assert!((row[2].as_f64().unwrap() - avg).abs() < 1e-9);
        prop_assert_eq!(row[3].as_i64().unwrap(), *vals.iter().min().unwrap());
        prop_assert_eq!(row[4].as_i64().unwrap(), *vals.iter().max().unwrap());
    }

    /// A filtered query over an indexed column returns the same rows as
    /// over an unindexed copy of the data (index transparency).
    #[test]
    fn index_is_transparent(
        keys in prop::collection::vec(0i64..30, 0..80),
        probe in 0i64..30,
    ) {
        let mut with_idx = Database::new();
        with_idx.execute("CREATE TABLE t (k INTEGER, pos INTEGER)").unwrap();
        with_idx.execute("CREATE INDEX idx_k ON t (k)").unwrap();
        let mut without = Database::new();
        without.execute("CREATE TABLE t (k INTEGER, pos INTEGER)").unwrap();
        for (i, k) in keys.iter().enumerate() {
            let stmt = format!("INSERT INTO t VALUES ({k}, {i})");
            with_idx.execute(&stmt).unwrap();
            without.execute(&stmt).unwrap();
        }
        for sql in [
            format!("SELECT pos FROM t WHERE k = {probe} ORDER BY pos"),
            format!("SELECT pos FROM t WHERE k < {probe} ORDER BY pos"),
            format!("SELECT pos FROM t WHERE k BETWEEN {} AND {} ORDER BY pos", probe - 5, probe + 5),
        ] {
            let a = with_idx.execute(&sql).unwrap();
            let b = without.execute(&sql).unwrap();
            prop_assert_eq!(a.rows, b.rows, "query: {}", sql);
        }
    }

    /// DISTINCT returns exactly the set of unique values.
    #[test]
    fn distinct_is_set_semantics(vals in prop::collection::vec(0i64..10, 0..60)) {
        let mut db = Database::new();
        db.execute("CREATE TABLE t (x INTEGER)").unwrap();
        for v in &vals {
            db.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let rs = db.execute("SELECT DISTINCT x FROM t ORDER BY x").unwrap();
        let got: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut want: Vec<i64> = vals.clone();
        want.sort_unstable();
        want.dedup();
        prop_assert_eq!(got, want);
    }

    /// Literal round trip: a value rendered with to_sql_literal and
    /// selected back compares equal to the original.
    #[test]
    fn literal_round_trip(v in value_strategy()) {
        let mut db = Database::new();
        let rs = db.execute(&format!("SELECT {}", v.to_sql_literal())).unwrap();
        match (&v, &rs.rows[0][0]) {
            (Value::Float(a), Value::Float(b)) => prop_assert!((a - b).abs() <= a.abs() * 1e-12),
            (a, b) => prop_assert_eq!(a, b),
        }
    }
}
