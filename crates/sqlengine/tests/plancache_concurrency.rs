//! Plan-cache concurrency: 8 reader threads hammer the cache while a
//! writer mutates the schema and data mid-run. A stale plan would be
//! visible as a count that goes backwards (the planner executes the
//! uncorrelated `(SELECT COUNT(*) ...)` subquery at plan time, so a
//! plan cached before an INSERT embeds the old count).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread;
use tag_sql::Database;

fn seed_db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE events (id INTEGER PRIMARY KEY, kind TEXT, weight REAL);
         INSERT INTO events VALUES (1, 'click', 0.5), (2, 'view', 1.0),
                                   (3, 'click', 2.0), (4, 'buy', 9.0);",
    )
    .unwrap();
    db
}

#[test]
fn eight_threads_never_observe_a_stale_plan() {
    let db = Arc::new(RwLock::new(seed_db()));
    let stop = Arc::new(AtomicBool::new(false));
    const READERS: usize = 8;
    const INSERTS: i64 = 40;

    let mut handles = Vec::new();
    for t in 0..READERS {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        handles.push(thread::spawn(move || {
            // Each thread mixes a shared statement (contended cache entry)
            // with a per-thread variant (fills/evicts distinct entries).
            let shared = "SELECT (SELECT COUNT(*) FROM events) AS n FROM events LIMIT 1";
            let private =
                format!("SELECT COUNT(*) AS n FROM events WHERE id > {t} AND weight >= 0");
            let mut last_count = 0i64;
            let mut reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let g = db.read().unwrap();
                let n = g.query(shared).unwrap().rows[0][0].as_i64().unwrap();
                // The table only ever grows: a smaller count than any
                // previously observed one means a stale cached plan.
                assert!(
                    n >= last_count,
                    "stale plan served: count went {last_count} -> {n}"
                );
                last_count = n;
                let m = g.query(&private).unwrap().rows[0][0].as_i64().unwrap();
                // Seed rows have ids 1..=4, inserted rows 100+: the
                // private count starts at max(0, 4 - t) and only grows.
                let base = (4 - t as i64).max(0);
                assert!(m >= base && m <= base + INSERTS, "m={m} t={t}");
                drop(g);
                reads += 1;
            }
            reads
        }));
    }

    // Writer: interleave INSERTs (epoch bump via DML) with a mid-run DDL
    // (CREATE INDEX changes plan shape: later plans may switch to an
    // index probe — results must stay correct either way).
    for i in 0..INSERTS {
        {
            let mut g = db.write().unwrap();
            g.execute(&format!(
                "INSERT INTO events VALUES ({}, 'gen', {}.5)",
                100 + i,
                i
            ))
            .unwrap();
            if i == INSERTS / 2 {
                g.execute("CREATE INDEX idx_kind ON events (kind)").unwrap();
            }
        }
        thread::yield_now();
    }

    stop.store(true, Ordering::Relaxed);
    let total_reads: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_reads > 0);

    let g = db.read().unwrap();
    // Final state is fully fresh.
    let n = g
        .query("SELECT (SELECT COUNT(*) FROM events) AS n FROM events LIMIT 1")
        .unwrap()
        .rows[0][0]
        .as_i64()
        .unwrap();
    assert_eq!(n, 4 + INSERTS);
    let stats = g.plan_cache_stats();
    // Every INSERT (and the CREATE INDEX) invalidated; readers still got
    // hits inside quiescent windows whenever they re-ran a statement.
    assert!(stats.invalidations >= INSERTS as u64, "{stats:?}");
    assert!(stats.hits + stats.misses > 0, "{stats:?}");
}

#[test]
fn epoch_bump_mid_run_is_always_fresh_single_threaded() {
    let mut db = seed_db();
    let sql = "SELECT (SELECT COUNT(*) FROM events) AS n FROM events LIMIT 1";
    for i in 0..10 {
        let n = db.query(sql).unwrap().rows[0][0].as_i64().unwrap();
        assert_eq!(n, 4 + i);
        // Warm hit within the same epoch.
        let again = db.query(sql).unwrap().rows[0][0].as_i64().unwrap();
        assert_eq!(again, n);
        db.execute(&format!("INSERT INTO events VALUES ({}, 'x', 0.0)", 50 + i))
            .unwrap();
    }
    let stats = db.plan_cache_stats();
    assert_eq!(stats.hits, 10, "{stats:?}");
    assert_eq!(stats.misses, 10, "{stats:?}");
}
