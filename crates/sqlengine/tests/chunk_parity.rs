//! Property tests: the columnar chunked executor is byte-identical to
//! the serial row-at-a-time executor — results *and* errors — over
//! randomized tables, NULL patterns, plan shapes, worker counts
//! (1/2/8), and morsel sizes (down to 1 row per morsel, forcing
//! cross-batch merges even on tiny tables).

use proptest::prelude::*;
use tag_sql::{Database, ExecPolicy, Value};

/// Random cell drawn from all four storage classes. Narrow domains on
/// purpose: small ints and two-letter strings force group-key
/// collisions, join matches, and sort ties, which is where merge order
/// bugs live. Column affinity coerces at insert time, identically for
/// both executors, so mixed draws per column are fine.
fn cell() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (-8i64..8).prop_map(Value::Int),
        (-100i64..100).prop_map(|v| Value::Float(v as f64 / 4.0)),
        "[ab]{0,2}".prop_map(Value::text),
    ]
}

/// Run one read-only statement, folding rows or the error message to a
/// comparable string.
fn run(db: &Database, sql: &str) -> Result<String, String> {
    db.query(sql)
        .map(|rs| format!("{:?}", rs.rows))
        .map_err(|e| e.message().to_string())
}

fn build_db(rows: Vec<Vec<Value>>) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE t (a INTEGER, b REAL, c TEXT)")
        .expect("create");
    db.catalog_mut()
        .table_mut("t")
        .expect("table t")
        .insert_all(rows)
        .expect("insert rows");
    db
}

/// The plan-shape pool: every relational operator the chunked executor
/// implements, including mixed-type intermediate columns (CASE), NULL
/// join keys, residual join predicates, DISTINCT aggregates, and an
/// error-raising aggregate (SUM over text).
fn queries(k: i64, j: i64) -> Vec<String> {
    vec![
        "SELECT * FROM t".into(),
        format!("SELECT * FROM t WHERE a > {k}"),
        format!("SELECT a, CASE WHEN a > {k} THEN b ELSE c END FROM t"),
        "SELECT a + b, c FROM t".into(),
        "SELECT a IS NULL, NOT (b > 0.0) FROM t".into(),
        "SELECT c, COUNT(*), SUM(a), AVG(b), MIN(a), MAX(c) FROM t GROUP BY c".into(),
        "SELECT a, c, COUNT(*) FROM t GROUP BY a, c ORDER BY a, c".into(),
        "SELECT COUNT(DISTINCT a), GROUP_CONCAT(c) FROM t".into(),
        "SELECT SUM(b), TOTAL(a) FROM t".into(),
        "SELECT * FROM t ORDER BY c, a DESC".into(),
        format!("SELECT a FROM t ORDER BY b LIMIT {} OFFSET {}", k.max(0), j),
        format!("SELECT * FROM t LIMIT {j}"),
        "SELECT DISTINCT c FROM t".into(),
        "SELECT t1.a, t2.b FROM t t1 JOIN t t2 ON t1.c = t2.c WHERE t1.a < t2.a".into(),
        "SELECT t1.a, t2.b FROM t t1 LEFT JOIN t t2 ON t1.a = t2.a ORDER BY t1.a, t2.b".into(),
        "SELECT a FROM t UNION SELECT CAST(b AS INTEGER) FROM t".into(),
        // Error parity: SUM over a text column fails inside the
        // accumulator; the chunked path must surface the identical
        // message via its serial-replay fallback.
        "SELECT SUM(c) FROM t".into(),
        format!("SELECT c FROM t WHERE b * a > {k} ORDER BY a LIMIT 3"),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chunked_matches_serial_byte_for_byte(
        rows in prop::collection::vec(prop::collection::vec(cell(), 3..4), 0..40),
        k in -5i64..5,
        j in 0i64..6,
        morsel_rows in 1usize..17,
    ) {
        let db = build_db(rows);
        for sql in queries(k, j) {
            db.set_exec_policy(ExecPolicy::default());
            let serial = run(&db, &sql);
            for workers in [1usize, 2, 8] {
                db.set_exec_policy(ExecPolicy {
                    chunked: true,
                    workers,
                    morsel_rows,
                });
                let chunked = run(&db, &sql);
                prop_assert_eq!(
                    &serial,
                    &chunked,
                    "divergence on {:?} (workers={}, morsel_rows={})",
                    sql,
                    workers,
                    morsel_rows
                );
            }
        }
    }
}
