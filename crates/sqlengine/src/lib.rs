//! # tag-sql — in-memory SQL engine for the TAG reproduction
//!
//! A from-scratch SQL database engine standing in for SQLite3 in the
//! reproduction of *"Text2SQL is Not Enough: Unifying AI and Databases
//! with TAG"* (CIDR 2025). It implements the full `exec` stage of the TAG
//! model: a tokenizer, recursive-descent parser, binder/planner with
//! eager uncorrelated subqueries and per-row correlated
//! EXISTS/IN/scalar subqueries, a rule-based optimizer (predicate
//! pushdown, hash-join selection, index selection, top-k), and a
//! materializing executor over heap tables with B+-tree and hash indexes.
//!
//! The engine is dynamically typed in the SQLite tradition and supports
//! the dialect used by the BIRD/TAG-Bench workloads: joins, grouping and
//! aggregation, HAVING, ORDER BY/LIMIT, DISTINCT, subqueries in
//! FROM/IN/EXISTS/scalar positions, CASE/CAST, LIKE/IN/BETWEEN, and
//! scalar UDFs — including LM UDFs, the §2.1 extension point that lets
//! the TAG `syn` step place language-model calls inside SQL.
//!
//! ## Quick start
//!
//! ```
//! use tag_sql::Database;
//!
//! let mut db = Database::new();
//! db.execute_script(
//!     "CREATE TABLE movies (title TEXT, genre TEXT, revenue REAL);
//!      INSERT INTO movies VALUES
//!        ('Titanic', 'Romance', 2257.8),
//!        ('The Notebook', 'Romance', 115.6),
//!        ('Alien', 'SciFi', 104.9);",
//! ).unwrap();
//! let top = db.execute(
//!     "SELECT title FROM movies WHERE genre = 'Romance' ORDER BY revenue DESC LIMIT 1",
//! ).unwrap();
//! assert_eq!(top.rows[0][0].to_string(), "Titanic");
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod chunk;
pub mod chunk_exec;
pub mod csv;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod functions;
pub mod index;
pub mod lexer;
pub mod metrics;
pub mod morsel;
pub mod optimizer;
pub mod parser;
pub mod partial;
pub mod plan;
pub mod plancache;
pub mod planner;
pub mod profile;
pub mod result;
pub mod scatter;
pub mod schema;
pub mod semopt;
pub mod semplan;
pub mod table;
pub mod udf;
pub mod value;
pub mod vector;

pub use catalog::Catalog;
pub use engine::Database;
pub use error::{SqlError, SqlResult};
pub use expr::{BoundExpr, EvalCtx};
pub use metrics::ExecMetrics;
pub use morsel::{ExecPolicy, DEFAULT_MORSEL_ROWS};
pub use partial::{
    finish_partials, merge_partials, GroupPartials, GroupPartialsBuilder, PartialAgg,
};
pub use plan::{AggCall, AggFunc, IndexRange, Plan, SortKey};
pub use plancache::{normalize_sql, PlanCache, PlanCacheStats};
pub use profile::{NodeProfile, PlanProfiler};
pub use result::ResultSet;
pub use scatter::{collect_expr_tables, collect_plan_tables, plan_references, ScatterExec};
pub use schema::{Column, DataType, Row, Schema};
pub use semopt::{optimize_sem, SemOptOptions};
pub use semplan::{
    execute_sem, execute_sem_profiled, CutSpec, GenFormat, LmCost, RetrieveKind, SemClaimSpec,
    SemDelegate, SemFrame, SemNode, SemPredicate, SemStage,
};
pub use table::{IndexKind, Table};
pub use udf::{FnUdf, ScalarUdf, UdfRegistry};
pub use value::Value;
