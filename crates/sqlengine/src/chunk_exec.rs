//! Columnar chunked executor with morsel-driven parallelism.
//!
//! The drop-in alternative to [`crate::exec`]: the same [`Plan`] trees,
//! byte-identical results, but operators exchange [`Batch`]es of typed
//! column vectors instead of `Vec<Row>`, and per-batch work is
//! distributed over a morsel worker pool ([`crate::morsel`]).
//!
//! # Shape
//!
//! Table scans split the table's cached columnar chunk
//! ([`crate::table::Table::columnar`]) into morsel-sized zero-copy
//! `Range` batches; every downstream operator treats *batches as the
//! unit of parallelism* (filter narrows them, project rebuilds them,
//! aggregate folds per-batch partials). Operators run one at a time,
//! bottom-up — exactly the serial executor's operator order — with
//! parallelism *inside* each operator.
//!
//! # Determinism contract
//!
//! Results are byte-identical to the serial row-at-a-time executor for
//! every worker count and morsel size:
//!
//! - [`crate::morsel::parallel_map`] returns per-batch results in batch
//!   order; every merge folds them in that order.
//! - Aggregates keep per-(group, call) [`PartialAgg`] accumulators —
//!   the public scatter-gather partials — fed with global row seqs, so
//!   COUNT/MIN/MAX merge exactly and order-sensitive states
//!   (SUM/TOTAL/AVG/GROUP_CONCAT and all DISTINCT aggregates) replay
//!   through the serial [`AggState`] in seq order; float
//!   non-associativity and integer-overflow promotion can never
//!   reorder. Group output order is first-seen under the morsel-order
//!   merge — the serial order.
//! - The parallel sort orders by `(key, global seq)` — a total order
//!   equal to the serial stable sort (see
//!   [`crate::exec::compare_keys`]'s ordering contract).
//! - Hash-join build inserts right rows in global row order; probe
//!   preserves left order per batch.
//! - Errors: the lowest-indexed failing batch wins, and inside a batch
//!   the kernel falls back to a row-major serial replay of the same
//!   work to reproduce the exact error the serial executor would
//!   raise first.

use crate::ast::JoinKind;
use crate::catalog::Catalog;
use crate::chunk::{batches_len, batches_to_rows, concat_batches_chunk, Batch, Chunk, ColumnData};
use crate::error::{SqlError, SqlResult};
use crate::exec::{aggregate_rows, compare_keys, eval_keys, AggState};
use crate::expr::{BoundExpr, EvalCtx};
use crate::metrics::ExecMetrics;
use crate::morsel::{collect_ordered, parallel_map, ExecPolicy, NoObserver, PoolObserver};
use crate::partial::PartialAgg;
use crate::plan::{AggCall, Plan, SortKey};
use crate::profile::{node_label, PlanProfiler};
use crate::schema::Row;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// Execute a plan through the chunked executor, producing the same rows
/// as [`crate::exec::execute`].
pub fn execute_chunked(
    plan: &Plan,
    catalog: &Catalog,
    policy: ExecPolicy,
    metrics: Option<&ExecMetrics>,
) -> SqlResult<Vec<Row>> {
    let ctx = ChunkCtx {
        catalog,
        policy,
        metrics,
        prof: None,
    };
    Ok(batches_to_rows(&ctx.exec_node(plan)?))
}

/// Execute with per-node profiling (main-thread only: the profiler is
/// not `Sync`, so nodes are timed at operator granularity — each node's
/// elapsed time covers its full parallel fan-out, like the serial path
/// covers its full loop).
pub fn execute_chunked_profiled(
    plan: &Plan,
    catalog: &Catalog,
    policy: ExecPolicy,
    metrics: Option<&ExecMetrics>,
    profiler: &PlanProfiler,
) -> SqlResult<Vec<Row>> {
    let ctx = ChunkCtx {
        catalog,
        policy,
        metrics,
        prof: Some(profiler),
    };
    Ok(batches_to_rows(&ctx.exec_node(plan)?))
}

static NO_OBSERVER: NoObserver = NoObserver;

struct ChunkCtx<'a> {
    catalog: &'a Catalog,
    policy: ExecPolicy,
    metrics: Option<&'a ExecMetrics>,
    prof: Option<&'a PlanProfiler>,
}

impl<'a> ChunkCtx<'a> {
    fn eval(&self) -> EvalCtx<'a> {
        EvalCtx {
            catalog: Some(self.catalog),
        }
    }

    fn observer(&self) -> &dyn PoolObserver {
        match self.metrics {
            Some(m) => m,
            None => &NO_OBSERVER,
        }
    }

    /// Fan per-batch work over the morsel pool, collapsing to the
    /// lowest-indexed error (see the module determinism contract).
    fn fan<T: Send>(
        &self,
        tasks: usize,
        f: impl Fn(usize) -> SqlResult<T> + Sync,
    ) -> SqlResult<Vec<T>> {
        collect_ordered(parallel_map(tasks, self.policy.workers, self.observer(), f))
    }

    fn note(&self, op: &str, batches: &[Batch]) {
        if let Some(m) = self.metrics {
            m.record_morsels(op, batches.iter().map(Batch::len));
        }
    }

    fn exec_node(&self, plan: &Plan) -> SqlResult<Vec<Batch>> {
        let Some(p) = self.prof else {
            return self.exec_impl(plan);
        };
        let token = p.enter(node_label(plan));
        let result = self.exec_impl(plan);
        p.exit(token, result.as_ref().map(|b| batches_len(b)).unwrap_or(0));
        result
    }

    fn exec_impl(&self, plan: &Plan) -> SqlResult<Vec<Batch>> {
        match plan {
            Plan::TableScan { table, .. } => {
                let chunk = self.catalog.table(table)?.columnar();
                let batches: Vec<Batch> = self
                    .policy
                    .morsels(chunk.len())
                    .into_iter()
                    .map(|(s, e)| Batch::range(Arc::clone(&chunk), s, e))
                    .collect();
                self.note("TableScan", &batches);
                Ok(batches)
            }
            // Leaf operators without vectorized kernels delegate to the
            // serial executor (they are index probes and literal rows —
            // tiny cardinalities by construction).
            Plan::IndexProbe { .. } | Plan::IndexRangeScan { .. } | Plan::Values { .. } => {
                let rows = crate::exec::execute(plan, self.catalog)?;
                Ok(vec![Batch::from_rows(plan.width(), &rows)])
            }
            Plan::Filter { input, predicate } => {
                let batches = self.exec_node(input)?;
                let ctx = self.eval();
                let out = self.fan(batches.len(), |i| {
                    let b = &batches[i];
                    match crate::vector::eval_filter(predicate, b, &ctx) {
                        Ok(keep) => Ok(b.narrow(&keep)),
                        Err(e) => Err(exact_row_error(b, e, |row| {
                            predicate.eval_predicate_ctx(row, &ctx).map(|_| ())
                        })),
                    }
                })?;
                let out: Vec<Batch> = out.into_iter().filter(|b| !b.is_empty()).collect();
                self.note("Filter", &out);
                Ok(out)
            }
            Plan::Project { input, exprs, .. } => {
                let batches = self.exec_node(input)?;
                let ctx = self.eval();
                let out = self.fan(batches.len(), |i| {
                    let b = &batches[i];
                    let cols: SqlResult<Vec<ColumnData>> = exprs
                        .iter()
                        .map(|e| crate::vector::eval_column(e, b, &ctx))
                        .collect();
                    match cols {
                        Ok(_) if exprs.is_empty() => {
                            // Zero-width projection: len can't be derived
                            // from columns, so carry it through rows.
                            Ok(Batch::from_rows(0, &vec![Vec::new(); b.len()]))
                        }
                        Ok(cols) => Ok(Batch::owned(Chunk::new(cols))),
                        Err(e) => Err(exact_row_error(b, e, |row| {
                            for e in exprs {
                                e.eval_ctx(row, &ctx)?;
                            }
                            Ok(())
                        })),
                    }
                })?;
                let out: Vec<Batch> = out.into_iter().filter(|b| !b.is_empty()).collect();
                self.note("Project", &out);
                Ok(out)
            }
            Plan::Aggregate {
                input, group, aggs, ..
            } => self.aggregate(input, group, aggs),
            Plan::HashJoin {
                left,
                right,
                kind,
                left_key,
                right_key,
                residual,
            } => self.hash_join(left, right, *kind, left_key, right_key, residual.as_ref()),
            Plan::NestedLoopJoin {
                left,
                right,
                kind,
                on,
            } => self.nested_loop_join(left, right, *kind, on.as_ref()),
            Plan::Sort { input, keys } => self.sort(input, keys),
            Plan::TopK {
                input,
                keys,
                k,
                offset,
            } => self.top_k(input, keys, *k, *offset),
            Plan::Limit {
                input,
                limit,
                offset,
            } => {
                let batches = self.exec_node(input)?;
                let total = batches_len(&batches);
                let start = (*offset as usize).min(total);
                let end = match limit {
                    Some(l) => (start + *l as usize).min(total),
                    None => total,
                };
                let mut out = Vec::new();
                let mut pos = 0;
                for b in &batches {
                    let (bs, be) = (pos, pos + b.len());
                    pos = be;
                    let s = start.max(bs);
                    let e = end.min(be);
                    if s < e {
                        out.push(b.slice_local(s - bs, e - bs));
                    }
                }
                self.note("Limit", &out);
                Ok(out)
            }
            Plan::Distinct { input } => {
                let batches = self.exec_node(input)?;
                // Local first-occurrence pass per batch (parallel), then
                // a sequential cross-batch dedup in batch order — the
                // serial first-occurrence order.
                let locals = self.fan(batches.len(), |i| {
                    let b = &batches[i];
                    let mut seen = std::collections::HashSet::with_capacity(b.len());
                    let mut keep: Vec<(u32, Row)> = Vec::new();
                    for local in 0..b.len() {
                        let row: Row = (0..b.width()).map(|c| b.value_at(local, c)).collect();
                        if seen.insert(row.clone()) {
                            keep.push((local as u32, row));
                        }
                    }
                    Ok(keep)
                })?;
                let mut global = std::collections::HashSet::new();
                let mut out = Vec::new();
                for (b, keep) in batches.iter().zip(locals) {
                    let survivors: Vec<u32> = keep
                        .into_iter()
                        .filter(|(_, row)| global.insert(row.clone()))
                        .map(|(local, _)| local)
                        .collect();
                    if !survivors.is_empty() {
                        out.push(b.narrow(&survivors));
                    }
                }
                self.note("Distinct", &out);
                Ok(out)
            }
            Plan::Sem { .. } => Err(SqlError::Unsupported(
                "semantic plans execute through a SemDelegate (see tag_sql::execute_sem), \
                 not the relational executor"
                    .into(),
            )),
        }
    }

    /// Group-by aggregation with per-batch partials merged in batch
    /// order (see the module determinism contract for why SUM/TOTAL/AVG
    /// and DISTINCT partials are replayed rather than merged).
    fn aggregate(
        &self,
        input: &Plan,
        group: &[BoundExpr],
        aggs: &[AggCall],
    ) -> SqlResult<Vec<Batch>> {
        let batches = self.exec_node(input)?;
        let ctx = self.eval();
        // Global row seq of each batch's first row: the batch-order
        // prefix sum, so partials merge under the seq contract of
        // [`PartialAgg`].
        let mut bases = Vec::with_capacity(batches.len());
        let mut base = 0u64;
        for b in &batches {
            bases.push(base);
            base += b.len() as u64;
        }
        let locals = match self.fan(batches.len(), |i| {
            local_aggregate(&batches[i], bases[i], group, aggs, &ctx)
        }) {
            Ok(locals) => locals,
            // Exact serial error: replay the whole aggregate row-wise.
            Err(_) => {
                let rows = batches_to_rows(&batches);
                return aggregate_rows(&rows, group, aggs, &ctx)
                    .map(|_| unreachable!("serial replay of a failing aggregate must fail"));
            }
        };

        // Morsel-order merge: first-seen group order and first-seen
        // representative keys, exactly like the serial single pass.
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut keys: Vec<Vec<Value>> = Vec::new();
        let mut states: Vec<Vec<PartialAgg>> = Vec::new();
        for local in locals {
            for (key, partials) in local.keys.into_iter().zip(local.states) {
                match index.get(&key) {
                    Some(&gi) => {
                        for (mine, theirs) in states[gi].iter_mut().zip(partials) {
                            mine.merge(theirs)?;
                        }
                    }
                    None => {
                        index.insert(key.clone(), keys.len());
                        keys.push(key);
                        states.push(partials);
                    }
                }
            }
        }

        // Global aggregation over an empty input still yields one row.
        if group.is_empty() && keys.is_empty() {
            let row: Row = aggs
                .iter()
                .map(|a| AggState::new(a.func).finish(&a.separator))
                .collect();
            let out = vec![Batch::from_rows(aggs.len(), &[row])];
            self.note("Aggregate", &out);
            return Ok(out);
        }

        let width = group.len() + aggs.len();
        let mut columns: Vec<Vec<Value>> =
            (0..width).map(|_| Vec::with_capacity(keys.len())).collect();
        for (key, partials) in keys.into_iter().zip(states) {
            for (c, v) in key.into_iter().enumerate() {
                columns[c].push(v);
            }
            for (i, (p, a)) in partials.into_iter().zip(aggs).enumerate() {
                match p.finish(a) {
                    Ok(v) => columns[group.len() + i].push(v),
                    // Finish-time errors (e.g. SUM over non-numeric
                    // values) replay serially for the exact error.
                    Err(_) => {
                        let rows = batches_to_rows(&batches);
                        return aggregate_rows(&rows, group, aggs, &ctx).map(|_| {
                            unreachable!("serial replay of a failing aggregate must fail")
                        });
                    }
                }
            }
        }
        let out = if columns.first().map(Vec::len).unwrap_or(0) == 0 && width > 0 {
            Vec::new()
        } else {
            vec![Batch::owned(Chunk::new(
                columns.into_iter().map(ColumnData::from_values).collect(),
            ))]
        };
        self.note("Aggregate", &out);
        Ok(out)
    }

    fn hash_join(
        &self,
        left: &Plan,
        right: &Plan,
        kind: JoinKind,
        left_key: &BoundExpr,
        right_key: &BoundExpr,
        residual: Option<&BoundExpr>,
    ) -> SqlResult<Vec<Batch>> {
        let left_b = self.exec_node(left)?;
        let right_b = self.exec_node(right)?;
        let (lw, rw) = (left.width(), right.width());
        let ctx = self.eval();

        // Build side: key columns evaluated per batch in parallel, then
        // a sequential insert pass in global row order — the serial
        // build order, so duplicate-key chains match exactly.
        let right_chunk = concat_batches_chunk(&right_b, rw);
        let right_keys = {
            let whole = Batch::range(Arc::clone(&right_chunk), 0, right_chunk.len());
            let ranges = self.policy.morsels(right_chunk.len());
            let cols = self.fan(ranges.len(), |i| {
                let (s, e) = ranges[i];
                let view = whole.slice_local(s, e);
                crate::vector::eval_column(right_key, &view, &ctx).map_err(|err| {
                    exact_row_error(&view, err, |row| right_key.eval_ctx(row, &ctx).map(|_| ()))
                })
            })?;
            ColumnData::concat(cols)
        };
        let mut table: HashMap<Value, Vec<u32>> = HashMap::with_capacity(right_chunk.len());
        for i in 0..right_keys.len() {
            if right_keys.is_null(i) {
                continue; // NULL keys never join
            }
            table
                .entry(right_keys.value_at(i))
                .or_default()
                .push(i as u32);
        }

        // Probe side: per left batch in parallel, preserving left order.
        let pairs = self.fan(left_b.len(), |bi| {
            probe_batch(
                &left_b[bi],
                left_key,
                residual,
                kind,
                &table,
                &right_chunk,
                &ctx,
            )
        })?;

        // Output: per left batch, gather left columns by local id and
        // right columns by (optional) global right id.
        let out = self.fan(left_b.len(), |bi| {
            let pairs = &pairs[bi];
            let b = &left_b[bi];
            if pairs.is_empty() {
                return Ok(None);
            }
            let left_ids: Vec<u32> = pairs.iter().map(|(l, _)| *l).collect();
            let right_ids: Vec<Option<u32>> = pairs.iter().map(|(_, r)| *r).collect();
            let mut cols = Vec::with_capacity(lw + rw);
            let narrowed = b.narrow(&left_ids);
            for c in 0..lw {
                cols.push(narrowed.gather_column(c));
            }
            for c in 0..rw {
                cols.push(right_chunk.column(c).gather_opt(&right_ids));
            }
            Ok(Some(Batch::owned(Chunk::new(cols))))
        })?;
        let out: Vec<Batch> = out.into_iter().flatten().collect();
        self.note("HashJoin", &out);
        Ok(out)
    }

    fn nested_loop_join(
        &self,
        left: &Plan,
        right: &Plan,
        kind: JoinKind,
        on: Option<&BoundExpr>,
    ) -> SqlResult<Vec<Batch>> {
        let left_b = self.exec_node(left)?;
        let right_b = self.exec_node(right)?;
        let (lw, rw) = (left.width(), right.width());
        let ctx = self.eval();
        let right_chunk = concat_batches_chunk(&right_b, rw);
        let n_right = right_chunk.len();

        let out = self.fan(left_b.len(), |bi| {
            let b = &left_b[bi];
            // Row-major within the batch — the serial loop order, so
            // predicate errors surface identically.
            let mut pairs: Vec<(u32, Option<u32>)> = Vec::new();
            let mut combined: Row = Vec::with_capacity(lw + rw);
            for local in 0..b.len() {
                let left_row: Row = (0..lw).map(|c| b.value_at(local, c)).collect();
                let mut matched = false;
                for r in 0..n_right {
                    let keep = match on {
                        Some(pred) => {
                            combined.clear();
                            combined.extend_from_slice(&left_row);
                            combined.extend((0..rw).map(|c| right_chunk.value_at(r, c)));
                            pred.eval_predicate_ctx(&combined, &ctx)?
                        }
                        None => true,
                    };
                    if keep {
                        matched = true;
                        pairs.push((local as u32, Some(r as u32)));
                    }
                }
                if kind == JoinKind::Left && !matched {
                    pairs.push((local as u32, None));
                }
            }
            if pairs.is_empty() {
                return Ok(None);
            }
            let left_ids: Vec<u32> = pairs.iter().map(|(l, _)| *l).collect();
            let right_ids: Vec<Option<u32>> = pairs.iter().map(|(_, r)| *r).collect();
            let narrowed = b.narrow(&left_ids);
            let mut cols = Vec::with_capacity(lw + rw);
            for c in 0..lw {
                cols.push(narrowed.gather_column(c));
            }
            for c in 0..rw {
                cols.push(right_chunk.column(c).gather_opt(&right_ids));
            }
            Ok(Some(Batch::owned(Chunk::new(cols))))
        })?;
        let out: Vec<Batch> = out.into_iter().flatten().collect();
        self.note("NestedLoopJoin", &out);
        Ok(out)
    }

    fn sort(&self, input: &Plan, keys: &[SortKey]) -> SqlResult<Vec<Batch>> {
        let batches = self.exec_node(input)?;
        let ctx = self.eval();
        // Parallel key evaluation per batch.
        let keyed = self.fan(batches.len(), |i| sort_keys_for(&batches[i], keys, &ctx))?;
        // (key, batch, local): the (batch, local) pair is the global
        // input sequence, making the comparison a total order equal to
        // the serial stable sort (compare_keys contract).
        let mut entries: Vec<(Vec<Value>, u32, u32)> = Vec::with_capacity(batches_len(&batches));
        for (bi, batch_keys) in keyed.into_iter().enumerate() {
            for (local, key) in batch_keys.into_iter().enumerate() {
                entries.push((key, bi as u32, local as u32));
            }
        }
        entries.sort_unstable_by(|a, b| {
            compare_keys(&a.0, &b.0, keys)
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        let out = self.gather_ordered(&batches, &entries, input.width())?;
        self.note("Sort", &out);
        Ok(out)
    }

    fn top_k(
        &self,
        input: &Plan,
        keys: &[SortKey],
        k: usize,
        offset: usize,
    ) -> SqlResult<Vec<Batch>> {
        let batches = self.exec_node(input)?;
        let want = k.saturating_add(offset);
        if want == 0 {
            return Ok(Vec::new());
        }
        let ctx = self.eval();
        // Per-batch local top-`want` under (key, local seq): a superset
        // of the global winners from that batch.
        let locals = self.fan(batches.len(), |i| {
            let batch_keys = sort_keys_for(&batches[i], keys, &ctx)?;
            let mut top: Vec<(Vec<Value>, u32)> = Vec::with_capacity(want + 1);
            for (local, key) in batch_keys.into_iter().enumerate() {
                let entry = (key, local as u32);
                let cmp = |a: &(Vec<Value>, u32), b: &(Vec<Value>, u32)| {
                    compare_keys(&a.0, &b.0, keys).then(a.1.cmp(&b.1))
                };
                if top.len() < want {
                    top.push(entry);
                    if top.len() == want {
                        top.sort_unstable_by(cmp);
                    }
                } else if top
                    .last()
                    .is_some_and(|worst| cmp(&entry, worst) == std::cmp::Ordering::Less)
                {
                    let pos = top
                        .binary_search_by(|e| cmp(e, &entry))
                        .unwrap_or_else(|p| p);
                    top.insert(pos, entry);
                    top.pop();
                }
            }
            Ok(top)
        })?;
        let mut entries: Vec<(Vec<Value>, u32, u32)> = Vec::new();
        for (bi, local) in locals.into_iter().enumerate() {
            for (key, l) in local {
                entries.push((key, bi as u32, l));
            }
        }
        entries.sort_unstable_by(|a, b| {
            compare_keys(&a.0, &b.0, keys)
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        let picked: Vec<(Vec<Value>, u32, u32)> =
            entries.into_iter().skip(offset).take(k).collect();
        let out = self.gather_ordered(&batches, &picked, input.width())?;
        self.note("TopK", &out);
        Ok(out)
    }

    /// Build the output chunk for an ordered (batch, local) permutation,
    /// one column at a time (columns gathered in parallel).
    fn gather_ordered(
        &self,
        batches: &[Batch],
        entries: &[(Vec<Value>, u32, u32)],
        width: usize,
    ) -> SqlResult<Vec<Batch>> {
        if entries.is_empty() {
            return Ok(Vec::new());
        }
        let cols = self.fan(width, |c| {
            Ok(ColumnData::from_values(
                entries
                    .iter()
                    .map(|(_, b, l)| batches[*b as usize].value_at(*l as usize, c))
                    .collect(),
            ))
        })?;
        if width == 0 {
            return Ok(vec![Batch::from_rows(0, &vec![Vec::new(); entries.len()])]);
        }
        Ok(vec![Batch::owned(Chunk::new(cols))])
    }
}

/// Evaluate sort keys for every row of a batch, falling back to a
/// row-major replay on error so the error matches the serial path.
fn sort_keys_for(batch: &Batch, keys: &[SortKey], ctx: &EvalCtx<'_>) -> SqlResult<Vec<Vec<Value>>> {
    let cols: SqlResult<Vec<ColumnData>> = keys
        .iter()
        .map(|k| crate::vector::eval_column(&k.expr, batch, ctx))
        .collect();
    let cols = match cols {
        Ok(cols) => cols,
        Err(e) => {
            return Err(exact_row_error(batch, e, |row| {
                eval_keys(row, keys, ctx).map(|_| ())
            }))
        }
    };
    Ok((0..batch.len())
        .map(|i| cols.iter().map(|c| c.value_at(i)).collect())
        .collect())
}

/// Probe one left batch against the build table, producing
/// `(left local id, matched right global id)` pairs in left-row order.
#[allow(clippy::too_many_arguments)]
fn probe_batch(
    batch: &Batch,
    left_key: &BoundExpr,
    residual: Option<&BoundExpr>,
    kind: JoinKind,
    table: &HashMap<Value, Vec<u32>>,
    right_chunk: &Chunk,
    ctx: &EvalCtx<'_>,
) -> SqlResult<Vec<(u32, Option<u32>)>> {
    let keys = match crate::vector::eval_column(left_key, batch, ctx) {
        Ok(keys) => keys,
        Err(e) => {
            // Row-major replay: the serial path interleaves key and
            // residual evaluation, so reproduce that order exactly.
            return Err(exact_row_error(batch, e, |row| {
                let key = left_key.eval_ctx(row, ctx)?;
                if let (false, Some(pred)) = (key.is_null(), residual) {
                    if let Some(ids) = table.get(&key) {
                        for &r in ids {
                            let mut combined = row.clone();
                            combined.extend(
                                (0..right_chunk.width())
                                    .map(|c| right_chunk.value_at(r as usize, c)),
                            );
                            pred.eval_predicate_ctx(&combined, ctx)?;
                        }
                    }
                }
                Ok(())
            }));
        }
    };
    let (lw, rw) = (batch.width(), right_chunk.width());
    let mut pairs: Vec<(u32, Option<u32>)> = Vec::new();
    for local in 0..batch.len() {
        let mut matched = false;
        if !keys.is_null(local) {
            if let Some(ids) = table.get(&keys.value_at(local)) {
                match residual {
                    None => {
                        matched = !ids.is_empty();
                        pairs.extend(ids.iter().map(|&r| (local as u32, Some(r))));
                    }
                    Some(pred) => {
                        let mut combined: Row = Vec::with_capacity(lw + rw);
                        for &r in ids {
                            combined.clear();
                            combined.extend((0..lw).map(|c| batch.value_at(local, c)));
                            combined.extend((0..rw).map(|c| right_chunk.value_at(r as usize, c)));
                            if pred.eval_predicate_ctx(&combined, ctx)? {
                                matched = true;
                                pairs.push((local as u32, Some(r)));
                            }
                        }
                    }
                }
            }
        }
        if kind == JoinKind::Left && !matched {
            pairs.push((local as u32, None));
        }
    }
    Ok(pairs)
}

/// One batch's local aggregation: first-seen keys plus partial states.
/// The partials are the public scatter-gather accumulators
/// ([`PartialAgg`]), fed with global row seqs (`base_seq` + local
/// offset) so the batch-order merge is just the seq-order merge.
struct LocalAgg {
    keys: Vec<Vec<Value>>,
    states: Vec<Vec<PartialAgg>>,
}

fn local_aggregate(
    batch: &Batch,
    base_seq: u64,
    group: &[BoundExpr],
    aggs: &[AggCall],
    ctx: &EvalCtx<'_>,
) -> SqlResult<LocalAgg> {
    let evaluated: SqlResult<(Vec<ColumnData>, Vec<Option<ColumnData>>)> = (|| {
        let group_cols = group
            .iter()
            .map(|g| crate::vector::eval_column(g, batch, ctx))
            .collect::<SqlResult<Vec<_>>>()?;
        let arg_cols = aggs
            .iter()
            .map(|a| {
                a.arg
                    .as_ref()
                    .map(|e| crate::vector::eval_column(e, batch, ctx))
                    .transpose()
            })
            .collect::<SqlResult<Vec<_>>>()?;
        Ok((group_cols, arg_cols))
    })();
    let (group_cols, arg_cols) = match evaluated {
        Ok(v) => v,
        Err(e) => {
            // Row-major replay (group exprs then agg args per row) for
            // the exact serial error.
            return Err(exact_row_error(batch, e, |row| {
                for g in group {
                    g.eval_ctx(row, ctx)?;
                }
                for a in aggs {
                    if let Some(e) = &a.arg {
                        e.eval_ctx(row, ctx)?;
                    }
                }
                Ok(())
            }));
        }
    };

    let mut local = LocalAgg {
        keys: Vec::new(),
        states: Vec::new(),
    };
    let new_states = |local: &mut LocalAgg, key: Vec<Value>| -> usize {
        local.keys.push(key);
        local
            .states
            .push(aggs.iter().map(PartialAgg::new).collect());
        local.keys.len() - 1
    };

    // Typed single-column group fast paths avoid per-row Vec<Value> key
    // allocation and enum hashing on the hottest shapes (GROUP BY one
    // Int or Text column). Cross-type key unification (Int(7) vs
    // Float(7.0)) is impossible inside one typed column; the cross-batch
    // merge handles it globally through Value's own hash/eq.
    enum Lookup<'k> {
        Int(HashMap<i64, usize>, Option<usize>),
        Text(HashMap<&'k str, usize>, Option<usize>),
        General(HashMap<Vec<Value>, usize>),
    }
    let mut lookup = match (group.len(), group_cols.first()) {
        (1, Some(ColumnData::Int { .. })) => Lookup::Int(HashMap::new(), None),
        (1, Some(ColumnData::Text { .. })) => Lookup::Text(HashMap::new(), None),
        _ => Lookup::General(HashMap::new()),
    };

    for i in 0..batch.len() {
        let gi = match &mut lookup {
            Lookup::Int(map, null_slot) => {
                let ColumnData::Int { values, validity } = &group_cols[0] else {
                    unreachable!("lookup variant fixed at construction");
                };
                if validity[i] {
                    match map.get(&values[i]) {
                        Some(&gi) => gi,
                        None => {
                            let gi = new_states(&mut local, vec![Value::Int(values[i])]);
                            map.insert(values[i], gi);
                            gi
                        }
                    }
                } else {
                    match null_slot {
                        Some(gi) => *gi,
                        None => {
                            let gi = new_states(&mut local, vec![Value::Null]);
                            *null_slot = Some(gi);
                            gi
                        }
                    }
                }
            }
            Lookup::Text(map, null_slot) => {
                let ColumnData::Text { values, validity } = &group_cols[0] else {
                    unreachable!("lookup variant fixed at construction");
                };
                if validity[i] {
                    match map.get(values[i].as_str()) {
                        Some(&gi) => gi,
                        None => {
                            let gi = new_states(&mut local, vec![Value::Text(values[i].clone())]);
                            map.insert(values[i].as_str(), gi);
                            gi
                        }
                    }
                } else {
                    match null_slot {
                        Some(gi) => *gi,
                        None => {
                            let gi = new_states(&mut local, vec![Value::Null]);
                            *null_slot = Some(gi);
                            gi
                        }
                    }
                }
            }
            Lookup::General(map) => {
                let key: Vec<Value> = group_cols.iter().map(|c| c.value_at(i)).collect();
                match map.get(&key) {
                    Some(&gi) => gi,
                    None => {
                        let gi = new_states(&mut local, key.clone());
                        map.insert(key, gi);
                        gi
                    }
                }
            }
        };
        for (a, col) in arg_cols.iter().enumerate() {
            let v = match col {
                Some(c) => c.value_at(i),
                None => Value::Int(1), // COUNT(*) marker
            };
            local.states[gi][a].update(base_seq + i as u64, v);
        }
    }
    Ok(local)
}

/// Reproduce the exact error the serial executor would raise first for
/// this batch: replay the rows in order through `row_try` and return
/// its first error. Falls back to the kernel's own error if the replay
/// unexpectedly succeeds (it cannot, but never panic on an error path).
fn exact_row_error(
    batch: &Batch,
    kernel_err: SqlError,
    row_try: impl Fn(&Row) -> SqlResult<()>,
) -> SqlError {
    for local in 0..batch.len() {
        let row: Row = (0..batch.width())
            .map(|c| batch.value_at(local, c))
            .collect();
        if let Err(e) = row_try(&row) {
            return e;
        }
    }
    kernel_err
}
