//! The scatter-gather execution hook.
//!
//! A [`ScatterExec`] is installed on a coordinator [`Database`] by a
//! sharding runtime (see `crates/shard`). Every relational plan about
//! to execute — through `query`, `query_statement`, or the profiled
//! serving path — is first offered to the hook; when it claims the
//! plan (typically because the plan references a hash-partitioned
//! table), the hook executes it by scattering subplans across shards
//! and gathering the merged rows, byte-identical to local execution.
//!
//! The helpers here walk a [`Plan`] for the table names it touches,
//! including tables referenced from correlated subquery plans embedded
//! in expressions — a scatter executor must see those too, since they
//! re-execute per outer row through the same catalog.

use crate::engine::Database;
use crate::error::SqlResult;
use crate::expr::BoundExpr;
use crate::plan::Plan;
use crate::schema::Row;
use std::collections::BTreeSet;

/// A pluggable scatter-gather executor consulted before local plan
/// execution (see [`Database::set_scatter_exec`]).
pub trait ScatterExec: Send + Sync {
    /// Should this executor take over `plan`?
    fn handles(&self, plan: &Plan) -> bool;

    /// Execute `plan` against the sharded data, returning rows
    /// byte-identical to what local execution over the unsharded
    /// catalog would produce. `db` is the coordinator database the
    /// plan was bound against; implementations use it to run rewritten
    /// (partition-free) plans locally via
    /// [`Database::execute_plan_local`].
    fn execute(&self, plan: &Plan, db: &Database) -> SqlResult<Vec<Row>>;
}

/// Collect every table name `plan` touches, including tables inside
/// correlated subquery plans embedded in expressions.
pub fn collect_plan_tables(plan: &Plan, out: &mut BTreeSet<String>) {
    match plan {
        Plan::TableScan { table, .. }
        | Plan::IndexProbe { table, .. }
        | Plan::IndexRangeScan { table, .. } => {
            out.insert(table.clone());
        }
        Plan::Values { rows, .. } => {
            for row in rows {
                for e in row {
                    collect_expr_tables(e, out);
                }
            }
        }
        Plan::Filter { input, predicate } => {
            collect_expr_tables(predicate, out);
            collect_plan_tables(input, out);
        }
        Plan::Project { input, exprs, .. } => {
            for e in exprs {
                collect_expr_tables(e, out);
            }
            collect_plan_tables(input, out);
        }
        Plan::NestedLoopJoin {
            left, right, on, ..
        } => {
            if let Some(e) = on {
                collect_expr_tables(e, out);
            }
            collect_plan_tables(left, out);
            collect_plan_tables(right, out);
        }
        Plan::HashJoin {
            left,
            right,
            left_key,
            right_key,
            residual,
            ..
        } => {
            collect_expr_tables(left_key, out);
            collect_expr_tables(right_key, out);
            if let Some(e) = residual {
                collect_expr_tables(e, out);
            }
            collect_plan_tables(left, out);
            collect_plan_tables(right, out);
        }
        Plan::Aggregate {
            input, group, aggs, ..
        } => {
            for e in group {
                collect_expr_tables(e, out);
            }
            for a in aggs {
                if let Some(e) = &a.arg {
                    collect_expr_tables(e, out);
                }
            }
            collect_plan_tables(input, out);
        }
        Plan::Sort { input, keys } | Plan::TopK { input, keys, .. } => {
            for k in keys {
                collect_expr_tables(&k.expr, out);
            }
            collect_plan_tables(input, out);
        }
        Plan::Limit { input, .. } | Plan::Distinct { input } => collect_plan_tables(input, out),
        // Semantic plans scan through the runtime's own SQL round trip
        // (`SELECT * FROM <table>`), which re-enters the hook; nothing
        // to collect here.
        Plan::Sem { .. } => {}
    }
}

/// Collect table names referenced from correlated subquery plans (and
/// any expression nested around them).
pub fn collect_expr_tables(expr: &BoundExpr, out: &mut BTreeSet<String>) {
    match expr {
        BoundExpr::Literal(_)
        | BoundExpr::ColumnRef(_)
        | BoundExpr::OuterRef(_)
        | BoundExpr::InSet { .. } => {}
        BoundExpr::Binary { lhs, rhs, .. } => {
            collect_expr_tables(lhs, out);
            collect_expr_tables(rhs, out);
        }
        BoundExpr::Unary { operand, .. } => collect_expr_tables(operand, out),
        BoundExpr::IsNull { expr, .. } => collect_expr_tables(expr, out),
        BoundExpr::Between {
            expr, low, high, ..
        } => {
            collect_expr_tables(expr, out);
            collect_expr_tables(low, out);
            collect_expr_tables(high, out);
        }
        BoundExpr::InList { expr, list, .. } => {
            collect_expr_tables(expr, out);
            for e in list {
                collect_expr_tables(e, out);
            }
        }
        BoundExpr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(e) = operand {
                collect_expr_tables(e, out);
            }
            for (w, t) in branches {
                collect_expr_tables(w, out);
                collect_expr_tables(t, out);
            }
            if let Some(e) = else_branch {
                collect_expr_tables(e, out);
            }
        }
        BoundExpr::Cast { expr, .. } => collect_expr_tables(expr, out),
        BoundExpr::CorrelatedExists { plan, .. } | BoundExpr::CorrelatedScalar { plan } => {
            collect_plan_tables(plan, out);
        }
        BoundExpr::CorrelatedIn { expr, plan, .. } => {
            collect_expr_tables(expr, out);
            collect_plan_tables(plan, out);
        }
        BoundExpr::Builtin { args, .. } | BoundExpr::Udf { args, .. } => {
            for e in args {
                collect_expr_tables(e, out);
            }
        }
    }
}

/// Does `plan` reference any table for which `pred` holds? Table names
/// are passed exactly as plans store them (the name the catalog
/// resolved, preserving its declared case).
pub fn plan_references(plan: &Plan, pred: &dyn Fn(&str) -> bool) -> bool {
    let mut tables = BTreeSet::new();
    collect_plan_tables(plan, &mut tables);
    tables.iter().any(|t| pred(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Database;

    fn plan_of(db: &Database, sql: &str) -> Plan {
        let stmt = crate::parser::parse_statement(sql).unwrap();
        let crate::ast::Statement::Select(sel) = stmt else {
            panic!("not a select");
        };
        let planner = crate::planner::Planner::new(db.catalog(), db.udfs());
        crate::optimizer::optimize(planner.plan_select(&sel).unwrap(), db.catalog())
    }

    fn db() -> Database {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE t (a INTEGER, b TEXT);
             CREATE TABLE u (a INTEGER, c TEXT);
             INSERT INTO t VALUES (1, 'x');
             INSERT INTO u VALUES (1, 'y')",
        )
        .unwrap();
        db
    }

    #[test]
    fn collects_tables_from_scans_and_joins() {
        let db = db();
        let plan = plan_of(&db, "SELECT * FROM t JOIN u ON t.a = u.a WHERE t.b = 'x'");
        let mut tables = BTreeSet::new();
        collect_plan_tables(&plan, &mut tables);
        assert!(tables.contains("t") && tables.contains("u"), "{tables:?}");
        assert!(plan_references(&plan, &|t| t == "u"));
        assert!(!plan_references(&plan, &|t| t == "v"));
    }

    #[test]
    fn collects_tables_from_correlated_subqueries() {
        let db = db();
        let plan = plan_of(
            &db,
            "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.a = t.a)",
        );
        assert!(plan_references(&plan, &|t| t == "u"), "{plan:?}");
    }
}
