//! Physical query plans.
//!
//! The planner binds a parsed statement into a [`Plan`] tree whose
//! expressions are fully resolved ([`BoundExpr`]); the optimizer rewrites
//! the tree; the executor materializes it bottom-up. Every node knows its
//! output column names, which makes `EXPLAIN`-style rendering and width
//! checks straightforward.

use crate::ast::JoinKind;
use crate::expr::BoundExpr;
use crate::value::Value;
use std::fmt::Write as _;
use std::ops::Bound;

/// Aggregate function kinds supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(expr)` / `COUNT(*)` when `arg` is `None`.
    Count,
    /// `SUM(expr)` — NULL over an empty input.
    Sum,
    /// `TOTAL(expr)` — like SUM but 0.0 over an empty input (SQLite).
    Total,
    /// `AVG(expr)`.
    Avg,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `GROUP_CONCAT(expr [, sep])` — separator handled at plan level.
    GroupConcat,
}

impl AggFunc {
    /// Parse an aggregate function name.
    pub fn parse(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "TOTAL" => Some(AggFunc::Total),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "GROUP_CONCAT" => Some(AggFunc::GroupConcat),
            _ => None,
        }
    }
}

/// One aggregate computation inside an [`Plan::Aggregate`] node.
#[derive(Debug, Clone)]
pub struct AggCall {
    /// Which function.
    pub func: AggFunc,
    /// Argument expression over the aggregate input; `None` for COUNT(*).
    pub arg: Option<BoundExpr>,
    /// DISTINCT modifier.
    pub distinct: bool,
    /// Separator for GROUP_CONCAT (default ",").
    pub separator: String,
    /// Output column name.
    pub name: String,
}

/// A sort key: expression over the input plus direction.
#[derive(Debug, Clone)]
pub struct SortKey {
    /// Key expression over the input row.
    pub expr: BoundExpr,
    /// Sort descending?
    pub descending: bool,
}

/// Range bounds for an index range scan, as literal values.
#[derive(Debug, Clone)]
pub struct IndexRange {
    /// Lower bound on the key.
    pub low: Bound<Value>,
    /// Upper bound on the key.
    pub high: Bound<Value>,
}

/// A physical plan node. Executed bottom-up, materializing each output.
#[derive(Debug, Clone)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Plan {
    /// Full scan of a named table.
    TableScan {
        /// Table name in the catalog.
        table: String,
        /// Output column names (the table's schema names).
        columns: Vec<String>,
    },
    /// Equality probe into an index.
    IndexProbe {
        /// Table name in the catalog.
        table: String,
        /// Output column names.
        columns: Vec<String>,
        /// Indexed column position.
        key_column: usize,
        /// Probe key (constant-folded at plan time).
        key: Value,
    },
    /// Ordered range scan over a B-tree index.
    IndexRangeScan {
        /// Table name in the catalog.
        table: String,
        /// Output column names.
        columns: Vec<String>,
        /// Indexed column position.
        key_column: usize,
        /// Key range.
        range: IndexRange,
    },
    /// Literal rows (used for table-less selects).
    Values {
        /// Output column names.
        columns: Vec<String>,
        /// Row expressions (constants by construction).
        rows: Vec<Vec<BoundExpr>>,
    },
    /// Filter rows by a predicate.
    Filter {
        input: Box<Plan>,
        predicate: BoundExpr,
    },
    /// Compute output expressions per row.
    Project {
        input: Box<Plan>,
        exprs: Vec<BoundExpr>,
        columns: Vec<String>,
    },
    /// Nested-loop join; `on` evaluates over the concatenated row.
    NestedLoopJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        kind: JoinKind,
        on: Option<BoundExpr>,
    },
    /// Hash equi-join on one key pair, with optional residual predicate
    /// over the concatenated row.
    HashJoin {
        left: Box<Plan>,
        right: Box<Plan>,
        kind: JoinKind,
        /// Key over the left row.
        left_key: BoundExpr,
        /// Key over the right row (indices relative to the right row).
        right_key: BoundExpr,
        /// Residual predicate over the concatenated row.
        residual: Option<BoundExpr>,
    },
    /// Group-by aggregation. Output = group exprs then agg results.
    Aggregate {
        input: Box<Plan>,
        group: Vec<BoundExpr>,
        group_names: Vec<String>,
        aggs: Vec<AggCall>,
    },
    /// Full sort by keys.
    Sort {
        input: Box<Plan>,
        keys: Vec<SortKey>,
    },
    /// Heap-based top-k sort: equivalent to Sort + Limit but O(n log k).
    TopK {
        input: Box<Plan>,
        keys: Vec<SortKey>,
        k: usize,
        offset: usize,
    },
    /// Row-count limiting.
    Limit {
        input: Box<Plan>,
        limit: Option<u64>,
        offset: u64,
    },
    /// Duplicate elimination over whole rows.
    Distinct { input: Box<Plan> },
    /// A semantic plan (see [`crate::semplan`]): relational + LM-powered
    /// operators executed through a [`crate::semplan::SemDelegate`]
    /// rather than the relational executor. Output columns are runtime-
    /// determined (they depend on the delegate's data).
    Sem {
        /// Root of the semantic node tree.
        root: crate::semplan::SemNode,
    },
}

impl Plan {
    /// Output column names of this node.
    pub fn columns(&self) -> Vec<String> {
        match self {
            Plan::TableScan { columns, .. }
            | Plan::IndexProbe { columns, .. }
            | Plan::IndexRangeScan { columns, .. }
            | Plan::Values { columns, .. }
            | Plan::Project { columns, .. } => columns.clone(),
            Plan::Filter { input, .. }
            | Plan::Sort { input, .. }
            | Plan::TopK { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Distinct { input } => input.columns(),
            Plan::NestedLoopJoin { left, right, .. } | Plan::HashJoin { left, right, .. } => {
                let mut cols = left.columns();
                cols.extend(right.columns());
                cols
            }
            Plan::Aggregate {
                group_names, aggs, ..
            } => {
                let mut cols = group_names.clone();
                cols.extend(aggs.iter().map(|a| a.name.clone()));
                cols
            }
            Plan::Sem { .. } => Vec::new(),
        }
    }

    /// Output width (column count).
    pub fn width(&self) -> usize {
        match self {
            Plan::TableScan { columns, .. }
            | Plan::IndexProbe { columns, .. }
            | Plan::IndexRangeScan { columns, .. }
            | Plan::Values { columns, .. }
            | Plan::Project { columns, .. } => columns.len(),
            Plan::Filter { input, .. }
            | Plan::Sort { input, .. }
            | Plan::TopK { input, .. }
            | Plan::Limit { input, .. }
            | Plan::Distinct { input } => input.width(),
            Plan::NestedLoopJoin { left, right, .. } | Plan::HashJoin { left, right, .. } => {
                left.width() + right.width()
            }
            Plan::Aggregate { group, aggs, .. } => group.len() + aggs.len(),
            Plan::Sem { .. } => 0,
        }
    }

    /// Rebuild the plan with every embedded expression transformed.
    pub fn map_exprs(&self, f: &dyn Fn(&BoundExpr) -> BoundExpr) -> Plan {
        match self {
            Plan::TableScan { .. }
            | Plan::IndexProbe { .. }
            | Plan::IndexRangeScan { .. }
            | Plan::Sem { .. } => self.clone(),
            Plan::Values { columns, rows } => Plan::Values {
                columns: columns.clone(),
                rows: rows.iter().map(|r| r.iter().map(f).collect()).collect(),
            },
            Plan::Filter { input, predicate } => Plan::Filter {
                input: Box::new(input.map_exprs(f)),
                predicate: f(predicate),
            },
            Plan::Project {
                input,
                exprs,
                columns,
            } => Plan::Project {
                input: Box::new(input.map_exprs(f)),
                exprs: exprs.iter().map(f).collect(),
                columns: columns.clone(),
            },
            Plan::NestedLoopJoin {
                left,
                right,
                kind,
                on,
            } => Plan::NestedLoopJoin {
                left: Box::new(left.map_exprs(f)),
                right: Box::new(right.map_exprs(f)),
                kind: *kind,
                on: on.as_ref().map(f),
            },
            Plan::HashJoin {
                left,
                right,
                kind,
                left_key,
                right_key,
                residual,
            } => Plan::HashJoin {
                left: Box::new(left.map_exprs(f)),
                right: Box::new(right.map_exprs(f)),
                kind: *kind,
                left_key: f(left_key),
                right_key: f(right_key),
                residual: residual.as_ref().map(f),
            },
            Plan::Aggregate {
                input,
                group,
                group_names,
                aggs,
            } => Plan::Aggregate {
                input: Box::new(input.map_exprs(f)),
                group: group.iter().map(f).collect(),
                group_names: group_names.clone(),
                aggs: aggs
                    .iter()
                    .map(|a| AggCall {
                        func: a.func,
                        arg: a.arg.as_ref().map(f),
                        distinct: a.distinct,
                        separator: a.separator.clone(),
                        name: a.name.clone(),
                    })
                    .collect(),
            },
            Plan::Sort { input, keys } => Plan::Sort {
                input: Box::new(input.map_exprs(f)),
                keys: keys
                    .iter()
                    .map(|k| SortKey {
                        expr: f(&k.expr),
                        descending: k.descending,
                    })
                    .collect(),
            },
            Plan::TopK {
                input,
                keys,
                k,
                offset,
            } => Plan::TopK {
                input: Box::new(input.map_exprs(f)),
                keys: keys
                    .iter()
                    .map(|sk| SortKey {
                        expr: f(&sk.expr),
                        descending: sk.descending,
                    })
                    .collect(),
                k: *k,
                offset: *offset,
            },
            Plan::Limit {
                input,
                limit,
                offset,
            } => Plan::Limit {
                input: Box::new(input.map_exprs(f)),
                limit: *limit,
                offset: *offset,
            },
            Plan::Distinct { input } => Plan::Distinct {
                input: Box::new(input.map_exprs(f)),
            },
        }
    }

    /// Visit every embedded expression (including the expressions of any
    /// nested correlated subplans).
    pub fn visit_exprs(&self, f: &mut dyn FnMut(&BoundExpr)) {
        match self {
            Plan::TableScan { .. }
            | Plan::IndexProbe { .. }
            | Plan::IndexRangeScan { .. }
            | Plan::Sem { .. } => {}
            Plan::Values { rows, .. } => {
                for r in rows {
                    for e in r {
                        e.visit_refs(f);
                    }
                }
            }
            Plan::Filter { input, predicate } => {
                predicate.visit_refs(f);
                input.visit_exprs(f);
            }
            Plan::Project { input, exprs, .. } => {
                for e in exprs {
                    e.visit_refs(f);
                }
                input.visit_exprs(f);
            }
            Plan::NestedLoopJoin {
                left, right, on, ..
            } => {
                if let Some(e) = on {
                    e.visit_refs(f);
                }
                left.visit_exprs(f);
                right.visit_exprs(f);
            }
            Plan::HashJoin {
                left,
                right,
                left_key,
                right_key,
                residual,
                ..
            } => {
                left_key.visit_refs(f);
                right_key.visit_refs(f);
                if let Some(e) = residual {
                    e.visit_refs(f);
                }
                left.visit_exprs(f);
                right.visit_exprs(f);
            }
            Plan::Aggregate {
                input, group, aggs, ..
            } => {
                for e in group {
                    e.visit_refs(f);
                }
                for a in aggs {
                    if let Some(e) = &a.arg {
                        e.visit_refs(f);
                    }
                }
                input.visit_exprs(f);
            }
            Plan::Sort { input, keys } | Plan::TopK { input, keys, .. } => {
                for k in keys {
                    k.expr.visit_refs(f);
                }
                input.visit_exprs(f);
            }
            Plan::Limit { input, .. } | Plan::Distinct { input } => input.visit_exprs(f),
        }
    }

    /// Rewrite the outer references of this (correlated) subplan through
    /// `outer`, leaving the subplan's own column references intact.
    pub fn rewrite_outer(&self, outer: &dyn Fn(usize) -> BoundExpr) -> Plan {
        self.map_exprs(&|e| e.rewrite_refs(&BoundExpr::ColumnRef, outer))
    }

    /// Remap outer-reference positions (used when the *enclosing* query's
    /// columns are reshuffled).
    pub fn remap_outer(&self, map: &dyn Fn(usize) -> usize) -> Plan {
        self.rewrite_outer(&|i| BoundExpr::OuterRef(map(i)))
    }

    /// Substitute the enclosing query's current row into every outer
    /// reference, producing an executable (uncorrelated) plan.
    pub fn substitute_outer(&self, outer_row: &[Value]) -> Plan {
        self.rewrite_outer(&|i| {
            BoundExpr::Literal(outer_row.get(i).cloned().unwrap_or(Value::Null))
        })
    }

    /// Collect the outer-reference positions used anywhere in the plan.
    pub fn collect_outer_refs(&self, out: &mut std::collections::BTreeSet<usize>) {
        self.visit_exprs(&mut |e| {
            if let BoundExpr::OuterRef(i) = e {
                out.insert(*i);
            }
        });
    }

    /// Does the plan reference its enclosing query's row?
    pub fn contains_outer_ref(&self) -> bool {
        let mut found = false;
        self.visit_exprs(&mut |e| {
            if matches!(e, BoundExpr::OuterRef(_)) {
                found = true;
            }
        });
        found
    }

    /// Render an indented EXPLAIN-style tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            Plan::TableScan { table, .. } => {
                let _ = writeln!(out, "{pad}TableScan {table}");
            }
            Plan::IndexProbe {
                table,
                key_column,
                key,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}IndexProbe {table} col#{key_column} = {}",
                    key.to_sql_literal()
                );
            }
            Plan::IndexRangeScan {
                table, key_column, ..
            } => {
                let _ = writeln!(out, "{pad}IndexRangeScan {table} col#{key_column}");
            }
            Plan::Values { rows, .. } => {
                let _ = writeln!(out, "{pad}Values ({} rows)", rows.len());
            }
            Plan::Filter { input, predicate } => {
                let _ = writeln!(out, "{pad}Filter {predicate:?}");
                input.explain_into(out, depth + 1);
            }
            Plan::Project { input, exprs, .. } => {
                let _ = writeln!(out, "{pad}Project {exprs:?}");
                input.explain_into(out, depth + 1);
            }
            Plan::NestedLoopJoin {
                left,
                right,
                kind,
                on,
            } => {
                let _ = writeln!(out, "{pad}NestedLoopJoin {kind} on={on:?}");
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::HashJoin {
                left,
                right,
                kind,
                left_key,
                right_key,
                residual,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}HashJoin {kind} {left_key:?} = {right_key:?} residual={residual:?}"
                );
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::Aggregate {
                input, group, aggs, ..
            } => {
                let _ = writeln!(
                    out,
                    "{pad}Aggregate groups={group:?} aggs={}",
                    aggs.iter()
                        .map(|a| format!("{:?}({:?})", a.func, a.arg))
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                input.explain_into(out, depth + 1);
            }
            Plan::Sort { input, keys } => {
                let _ = writeln!(out, "{pad}Sort {} keys", keys.len());
                input.explain_into(out, depth + 1);
            }
            Plan::TopK {
                input,
                keys,
                k,
                offset,
            } => {
                let _ = writeln!(out, "{pad}TopK k={k} offset={offset} ({} keys)", keys.len());
                input.explain_into(out, depth + 1);
            }
            Plan::Limit {
                input,
                limit,
                offset,
            } => {
                let _ = writeln!(out, "{pad}Limit limit={limit:?} offset={offset}");
                input.explain_into(out, depth + 1);
            }
            Plan::Distinct { input } => {
                let _ = writeln!(out, "{pad}Distinct");
                input.explain_into(out, depth + 1);
            }
            Plan::Sem { root } => {
                for line in root.explain().lines() {
                    let _ = writeln!(out, "{pad}{line}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan() -> Plan {
        Plan::TableScan {
            table: "t".into(),
            columns: vec!["a".into(), "b".into()],
        }
    }

    #[test]
    fn columns_flow_through_unary_nodes() {
        let p = Plan::Filter {
            input: Box::new(scan()),
            predicate: BoundExpr::Literal(Value::Int(1)),
        };
        assert_eq!(p.columns(), vec!["a", "b"]);
        assert_eq!(p.width(), 2);
    }

    #[test]
    fn join_concatenates_columns() {
        let p = Plan::NestedLoopJoin {
            left: Box::new(scan()),
            right: Box::new(Plan::TableScan {
                table: "u".into(),
                columns: vec!["c".into()],
            }),
            kind: JoinKind::Inner,
            on: None,
        };
        assert_eq!(p.columns(), vec!["a", "b", "c"]);
        assert_eq!(p.width(), 3);
    }

    #[test]
    fn aggregate_columns() {
        let p = Plan::Aggregate {
            input: Box::new(scan()),
            group: vec![BoundExpr::ColumnRef(0)],
            group_names: vec!["a".into()],
            aggs: vec![AggCall {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
                separator: ",".into(),
                name: "count(*)".into(),
            }],
        };
        assert_eq!(p.columns(), vec!["a", "count(*)"]);
    }

    #[test]
    fn explain_renders_tree() {
        let p = Plan::Limit {
            input: Box::new(scan()),
            limit: Some(10),
            offset: 0,
        };
        let text = p.explain();
        assert!(text.contains("Limit"));
        assert!(text.contains("  TableScan t"));
    }

    #[test]
    fn agg_func_parse() {
        assert_eq!(AggFunc::parse("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("GROUP_CONCAT"), Some(AggFunc::GroupConcat));
        assert_eq!(AggFunc::parse("lower"), None);
    }
}
