//! Columnar chunks: the unit of data flow in the chunked executor.
//!
//! A [`Chunk`] holds one typed vector per column ([`ColumnData`]) with
//! an explicit validity mask, replacing `Vec<Row>` between operators.
//! Column typing is *strict and lossless*: a column is `Int` only when
//! every non-null cell is `Value::Int`, so converting rows → chunk →
//! rows reproduces the original values byte-for-byte (`Int(7)` never
//! becomes `Float(7.0)` on a round trip, even though the two compare
//! equal). Columns that mix variants fall back to [`ColumnData::Mixed`]
//! and keep exact `Value`s.
//!
//! A [`Batch`] is a morsel-sized view over a shared chunk: either a
//! contiguous row range (zero-copy table scans) or an explicit row-id
//! selection (filter survivors). Operators exchange batches; rows are
//! only materialized at the executor boundary.

use crate::schema::Row;
use crate::value::Value;
use std::sync::Arc;

/// One column of a chunk: a typed vector plus a validity mask.
///
/// For the typed variants, `values[i]` is meaningful only when
/// `validity[i]` is true; invalid slots hold an arbitrary placeholder.
/// `Mixed` stores exact [`Value`]s (including `Value::Null`) for
/// columns that do not fit a single type.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// All non-null cells are `Value::Int`.
    Int {
        /// Cell payloads (placeholder where invalid).
        values: Vec<i64>,
        /// Per-row non-null flag.
        validity: Vec<bool>,
    },
    /// All non-null cells are `Value::Float`.
    Float {
        /// Cell payloads (placeholder where invalid).
        values: Vec<f64>,
        /// Per-row non-null flag.
        validity: Vec<bool>,
    },
    /// All non-null cells are `Value::Text`.
    Text {
        /// Cell payloads (placeholder where invalid).
        values: Vec<String>,
        /// Per-row non-null flag.
        validity: Vec<bool>,
    },
    /// Mixed-type column holding exact values (nulls inline).
    Mixed(Vec<Value>),
}

impl ColumnData {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int { values, .. } => values.len(),
            ColumnData::Float { values, .. } => values.len(),
            ColumnData::Text { values, .. } => values.len(),
            ColumnData::Mixed(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is row `i` SQL NULL?
    pub fn is_null(&self, i: usize) -> bool {
        match self {
            ColumnData::Int { validity, .. }
            | ColumnData::Float { validity, .. }
            | ColumnData::Text { validity, .. } => !validity[i],
            ColumnData::Mixed(v) => v[i].is_null(),
        }
    }

    /// The exact value at row `i` (cloned).
    pub fn value_at(&self, i: usize) -> Value {
        match self {
            ColumnData::Int { values, validity } => {
                if validity[i] {
                    Value::Int(values[i])
                } else {
                    Value::Null
                }
            }
            ColumnData::Float { values, validity } => {
                if validity[i] {
                    Value::Float(values[i])
                } else {
                    Value::Null
                }
            }
            ColumnData::Text { values, validity } => {
                if validity[i] {
                    Value::Text(values[i].clone())
                } else {
                    Value::Null
                }
            }
            ColumnData::Mixed(v) => v[i].clone(),
        }
    }

    /// Build a column from exact values, inferring the strictest type
    /// that loses nothing (see module docs).
    pub fn from_values(vals: Vec<Value>) -> ColumnData {
        #[derive(PartialEq, Clone, Copy)]
        enum Kind {
            Unknown,
            Int,
            Float,
            Text,
            Mixed,
        }
        let mut kind = Kind::Unknown;
        for v in &vals {
            let k = match v {
                Value::Null => continue,
                Value::Int(_) => Kind::Int,
                Value::Float(_) => Kind::Float,
                Value::Text(_) => Kind::Text,
            };
            kind = match kind {
                Kind::Unknown => k,
                cur if cur == k => cur,
                _ => Kind::Mixed,
            };
            if kind == Kind::Mixed {
                break;
            }
        }
        let n = vals.len();
        match kind {
            Kind::Mixed => ColumnData::Mixed(vals),
            // All-null columns are stored as Int with an all-false mask.
            Kind::Unknown | Kind::Int => {
                let mut values = Vec::with_capacity(n);
                let mut validity = Vec::with_capacity(n);
                for v in vals {
                    match v {
                        Value::Int(i) => {
                            values.push(i);
                            validity.push(true);
                        }
                        _ => {
                            values.push(0);
                            validity.push(false);
                        }
                    }
                }
                ColumnData::Int { values, validity }
            }
            Kind::Float => {
                let mut values = Vec::with_capacity(n);
                let mut validity = Vec::with_capacity(n);
                for v in vals {
                    match v {
                        Value::Float(f) => {
                            values.push(f);
                            validity.push(true);
                        }
                        _ => {
                            values.push(0.0);
                            validity.push(false);
                        }
                    }
                }
                ColumnData::Float { values, validity }
            }
            Kind::Text => {
                let mut values = Vec::with_capacity(n);
                let mut validity = Vec::with_capacity(n);
                for v in vals {
                    match v {
                        Value::Text(s) => {
                            values.push(s);
                            validity.push(true);
                        }
                        _ => {
                            values.push(String::new());
                            validity.push(false);
                        }
                    }
                }
                ColumnData::Text { values, validity }
            }
        }
    }

    /// A broadcast column: `n` copies of one value.
    pub fn broadcast(v: &Value, n: usize) -> ColumnData {
        match v {
            Value::Int(i) => ColumnData::Int {
                values: vec![*i; n],
                validity: vec![true; n],
            },
            Value::Float(f) => ColumnData::Float {
                values: vec![*f; n],
                validity: vec![true; n],
            },
            Value::Text(s) => ColumnData::Text {
                values: vec![s.clone(); n],
                validity: vec![true; n],
            },
            Value::Null => ColumnData::Int {
                values: vec![0; n],
                validity: vec![false; n],
            },
        }
    }

    /// Gather the listed rows into a new owned column (type preserved).
    pub fn gather(&self, ids: &[u32]) -> ColumnData {
        match self {
            ColumnData::Int { values, validity } => ColumnData::Int {
                values: ids.iter().map(|&i| values[i as usize]).collect(),
                validity: ids.iter().map(|&i| validity[i as usize]).collect(),
            },
            ColumnData::Float { values, validity } => ColumnData::Float {
                values: ids.iter().map(|&i| values[i as usize]).collect(),
                validity: ids.iter().map(|&i| validity[i as usize]).collect(),
            },
            ColumnData::Text { values, validity } => ColumnData::Text {
                values: ids.iter().map(|&i| values[i as usize].clone()).collect(),
                validity: ids.iter().map(|&i| validity[i as usize]).collect(),
            },
            ColumnData::Mixed(v) => {
                ColumnData::Mixed(ids.iter().map(|&i| v[i as usize].clone()).collect())
            }
        }
    }

    /// Gather with optional row ids: `None` produces SQL NULL (used for
    /// the right side of unmatched LEFT-join rows).
    pub fn gather_opt(&self, ids: &[Option<u32>]) -> ColumnData {
        match self {
            ColumnData::Int { values, validity } => ColumnData::Int {
                values: ids
                    .iter()
                    .map(|i| i.map(|i| values[i as usize]).unwrap_or(0))
                    .collect(),
                validity: ids
                    .iter()
                    .map(|i| i.map(|i| validity[i as usize]).unwrap_or(false))
                    .collect(),
            },
            ColumnData::Float { values, validity } => ColumnData::Float {
                values: ids
                    .iter()
                    .map(|i| i.map(|i| values[i as usize]).unwrap_or(0.0))
                    .collect(),
                validity: ids
                    .iter()
                    .map(|i| i.map(|i| validity[i as usize]).unwrap_or(false))
                    .collect(),
            },
            ColumnData::Text { values, validity } => ColumnData::Text {
                values: ids
                    .iter()
                    .map(|i| {
                        i.map(|i| values[i as usize].clone())
                            .unwrap_or_else(String::new)
                    })
                    .collect(),
                validity: ids
                    .iter()
                    .map(|i| i.map(|i| validity[i as usize]).unwrap_or(false))
                    .collect(),
            },
            ColumnData::Mixed(v) => ColumnData::Mixed(
                ids.iter()
                    .map(|i| i.map(|i| v[i as usize].clone()).unwrap_or(Value::Null))
                    .collect(),
            ),
        }
    }

    /// Concatenate columns (splices typed vectors when every part shares
    /// a variant; re-infers the strictest type otherwise).
    pub fn concat(mut parts: Vec<ColumnData>) -> ColumnData {
        if parts.len() == 1 {
            return parts.pop().expect("len checked");
        }
        if parts.is_empty() {
            return ColumnData::Int {
                values: Vec::new(),
                validity: Vec::new(),
            };
        }
        let splice =
            |parts: &Vec<ColumnData>, probe: fn(&ColumnData) -> bool| parts.iter().all(probe);
        if splice(&parts, |p| matches!(p, ColumnData::Int { .. })) {
            let (mut values, mut validity) = (Vec::new(), Vec::new());
            for p in parts {
                if let ColumnData::Int {
                    values: v,
                    validity: m,
                } = p
                {
                    values.extend(v);
                    validity.extend(m);
                }
            }
            return ColumnData::Int { values, validity };
        }
        if splice(&parts, |p| matches!(p, ColumnData::Float { .. })) {
            let (mut values, mut validity) = (Vec::new(), Vec::new());
            for p in parts {
                if let ColumnData::Float {
                    values: v,
                    validity: m,
                } = p
                {
                    values.extend(v);
                    validity.extend(m);
                }
            }
            return ColumnData::Float { values, validity };
        }
        if splice(&parts, |p| matches!(p, ColumnData::Text { .. })) {
            let (mut values, mut validity) = (Vec::new(), Vec::new());
            for p in parts {
                if let ColumnData::Text {
                    values: v,
                    validity: m,
                } = p
                {
                    values.extend(v);
                    validity.extend(m);
                }
            }
            return ColumnData::Text { values, validity };
        }
        // Mixed variants across parts (e.g. an all-null column next to a
        // Float column): re-infer so typing stays strict and lossless.
        let total: usize = parts.iter().map(ColumnData::len).sum();
        let mut vals = Vec::with_capacity(total);
        for p in &parts {
            for i in 0..p.len() {
                vals.push(p.value_at(i));
            }
        }
        ColumnData::from_values(vals)
    }

    /// Copy a contiguous row range into a new owned column.
    pub fn slice(&self, start: usize, end: usize) -> ColumnData {
        match self {
            ColumnData::Int { values, validity } => ColumnData::Int {
                values: values[start..end].to_vec(),
                validity: validity[start..end].to_vec(),
            },
            ColumnData::Float { values, validity } => ColumnData::Float {
                values: values[start..end].to_vec(),
                validity: validity[start..end].to_vec(),
            },
            ColumnData::Text { values, validity } => ColumnData::Text {
                values: values[start..end].to_vec(),
                validity: validity[start..end].to_vec(),
            },
            ColumnData::Mixed(v) => ColumnData::Mixed(v[start..end].to_vec()),
        }
    }
}

/// A set of equal-length columns: the columnar mirror of `Vec<Row>`.
#[derive(Debug, Clone)]
pub struct Chunk {
    columns: Vec<ColumnData>,
    len: usize,
}

impl Chunk {
    /// Build from columns (all must have equal length).
    pub fn new(columns: Vec<ColumnData>) -> Chunk {
        let len = columns.first().map(ColumnData::len).unwrap_or(0);
        debug_assert!(columns.iter().all(|c| c.len() == len));
        Chunk { columns, len }
    }

    /// An empty chunk of the given width (zero rows).
    pub fn empty(width: usize) -> Chunk {
        Chunk {
            columns: (0..width)
                .map(|_| ColumnData::Int {
                    values: Vec::new(),
                    validity: Vec::new(),
                })
                .collect(),
            len: 0,
        }
    }

    /// Transpose rows into a chunk (lossless; see module docs).
    pub fn from_rows(width: usize, rows: &[Row]) -> Chunk {
        let mut cols: Vec<Vec<Value>> =
            (0..width).map(|_| Vec::with_capacity(rows.len())).collect();
        for row in rows {
            for (c, slot) in cols.iter_mut().enumerate() {
                slot.push(row.get(c).cloned().unwrap_or(Value::Null));
            }
        }
        Chunk {
            columns: cols.into_iter().map(ColumnData::from_values).collect(),
            len: rows.len(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// The columns.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// One column by position.
    pub fn column(&self, i: usize) -> &ColumnData {
        &self.columns[i]
    }

    /// The exact value at (row, column), cloned.
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        self.columns[col].value_at(row)
    }

    /// Materialize one row (cloned values).
    pub fn row(&self, i: usize) -> Row {
        self.columns.iter().map(|c| c.value_at(i)).collect()
    }
}

/// Which rows of a shared chunk a [`Batch`] covers.
#[derive(Debug, Clone)]
pub enum Rows {
    /// A contiguous range `[start, end)`.
    Range(usize, usize),
    /// An explicit ascending-by-construction row-id list.
    Ids(Vec<u32>),
}

/// A morsel-sized view over a shared [`Chunk`].
///
/// Table scans produce `Range` batches over the table's cached chunk
/// (zero copy); filters narrow them to `Ids` selections; operators that
/// build fresh data produce an owned chunk viewed in full.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Backing storage, shared between batches of the same source.
    pub data: Arc<Chunk>,
    /// The rows of `data` this batch covers, in output order.
    pub rows: Rows,
}

impl Batch {
    /// A batch covering all rows of an owned chunk.
    pub fn owned(chunk: Chunk) -> Batch {
        let len = chunk.len();
        Batch {
            data: Arc::new(chunk),
            rows: Rows::Range(0, len),
        }
    }

    /// A contiguous view over a shared chunk.
    pub fn range(data: Arc<Chunk>, start: usize, end: usize) -> Batch {
        debug_assert!(start <= end && end <= data.len());
        Batch {
            data,
            rows: Rows::Range(start, end),
        }
    }

    /// A selected view over a shared chunk.
    pub fn select(data: Arc<Chunk>, ids: Vec<u32>) -> Batch {
        Batch {
            data,
            rows: Rows::Ids(ids),
        }
    }

    /// Transpose rows into an owned single-batch view.
    pub fn from_rows(width: usize, rows: &[Row]) -> Batch {
        Batch::owned(Chunk::from_rows(width, rows))
    }

    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        match &self.rows {
            Rows::Range(s, e) => e - s,
            Rows::Ids(ids) => ids.len(),
        }
    }

    /// True when the view covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.data.width()
    }

    /// Map a view-local row index to its index in the backing chunk.
    pub fn global_id(&self, local: usize) -> usize {
        match &self.rows {
            Rows::Range(s, _) => s + local,
            Rows::Ids(ids) => ids[local] as usize,
        }
    }

    /// The exact value at (view-local row, column), cloned.
    pub fn value_at(&self, local: usize, col: usize) -> Value {
        self.data.value_at(self.global_id(local), col)
    }

    /// Is the cell at (view-local row, column) SQL NULL?
    pub fn is_null(&self, local: usize, col: usize) -> bool {
        self.data.column(col).is_null(self.global_id(local))
    }

    /// Materialize one column of the view as an owned column.
    pub fn gather_column(&self, col: usize) -> ColumnData {
        let c = self.data.column(col);
        match &self.rows {
            Rows::Range(s, e) => c.slice(*s, *e),
            Rows::Ids(ids) => c.gather(ids),
        }
    }

    /// Narrow the view to the given view-local row indices.
    pub fn narrow(&self, locals: &[u32]) -> Batch {
        let ids = locals
            .iter()
            .map(|&l| self.global_id(l as usize) as u32)
            .collect();
        Batch {
            data: Arc::clone(&self.data),
            rows: Rows::Ids(ids),
        }
    }

    /// A sub-view over `[start, end)` of this view's rows.
    pub fn slice_local(&self, start: usize, end: usize) -> Batch {
        match &self.rows {
            Rows::Range(s, _) => Batch::range(Arc::clone(&self.data), s + start, s + end),
            Rows::Ids(ids) => Batch::select(Arc::clone(&self.data), ids[start..end].to_vec()),
        }
    }

    /// Materialize the view as rows (cloned values, output order).
    pub fn to_rows(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.len());
        match &self.rows {
            Rows::Range(s, e) => {
                for i in *s..*e {
                    out.push(self.data.row(i));
                }
            }
            Rows::Ids(ids) => {
                for &i in ids {
                    out.push(self.data.row(i as usize));
                }
            }
        }
        out
    }

    /// Compact the view into an owned chunk (copies survivors only).
    pub fn compact(&self) -> Chunk {
        Chunk::new(
            (0..self.width())
                .map(|c| self.gather_column(c))
                .collect::<Vec<_>>(),
        )
    }
}

/// Flatten batches into rows (boundary with the row-at-a-time world).
pub fn batches_to_rows(batches: &[Batch]) -> Vec<Row> {
    let total: usize = batches.iter().map(Batch::len).sum();
    let mut out = Vec::with_capacity(total);
    for b in batches {
        out.extend(b.to_rows());
    }
    out
}

/// Total row count across batches.
pub fn batches_len(batches: &[Batch]) -> usize {
    batches.iter().map(Batch::len).sum()
}

/// Concatenate batches into a single shared chunk. When the batches are
/// contiguous full-coverage ranges over one shared chunk (the zero-copy
/// table-scan shape), the backing chunk is reused without copying.
pub fn concat_batches_chunk(batches: &[Batch], width: usize) -> Arc<Chunk> {
    if let Some(first) = batches.first() {
        let mut covered = 0;
        let mut contiguous = true;
        for b in batches {
            match &b.rows {
                Rows::Range(s, e) if Arc::ptr_eq(&b.data, &first.data) && *s == covered => {
                    covered = *e;
                }
                _ => {
                    contiguous = false;
                    break;
                }
            }
        }
        if contiguous && covered == first.data.len() {
            return Arc::clone(&first.data);
        }
    }
    let cols: Vec<ColumnData> = (0..width)
        .map(|c| ColumnData::concat(batches.iter().map(|b| b.gather_column(c)).collect()))
        .collect();
    Arc::new(Chunk::new(cols))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![
            vec![Value::Int(1), Value::text("a"), Value::Float(0.5)],
            vec![Value::Null, Value::text("b"), Value::Null],
            vec![Value::Int(3), Value::Null, Value::Float(2.5)],
        ]
    }

    #[test]
    fn round_trip_is_lossless() {
        let r = rows();
        let chunk = Chunk::from_rows(3, &r);
        assert!(matches!(chunk.column(0), ColumnData::Int { .. }));
        assert!(matches!(chunk.column(1), ColumnData::Text { .. }));
        assert!(matches!(chunk.column(2), ColumnData::Float { .. }));
        let back = Batch::owned(chunk).to_rows();
        assert_eq!(format!("{r:?}"), format!("{back:?}"));
    }

    #[test]
    fn mixed_columns_keep_exact_variants() {
        // Int and Float compare equal under total_cmp but must round-trip
        // to their original variants.
        let r = vec![
            vec![Value::Int(7)],
            vec![Value::Float(7.0)],
            vec![Value::text("7")],
        ];
        let chunk = Chunk::from_rows(1, &r);
        assert!(matches!(chunk.column(0), ColumnData::Mixed(_)));
        let back = Batch::owned(chunk).to_rows();
        assert_eq!(format!("{r:?}"), format!("{back:?}"));
    }

    #[test]
    fn all_null_column_round_trips() {
        let r = vec![vec![Value::Null], vec![Value::Null]];
        let chunk = Chunk::from_rows(1, &r);
        let back = Batch::owned(chunk).to_rows();
        assert_eq!(format!("{r:?}"), format!("{back:?}"));
    }

    #[test]
    fn narrow_and_gather() {
        let chunk = Arc::new(Chunk::from_rows(3, &rows()));
        let b = Batch::range(Arc::clone(&chunk), 0, 3);
        let sel = b.narrow(&[2, 0]);
        assert_eq!(sel.len(), 2);
        assert_eq!(sel.value_at(0, 0), Value::Int(3));
        assert_eq!(sel.value_at(1, 0), Value::Int(1));
        let col = sel.gather_column(2);
        assert_eq!(col.value_at(0), Value::Float(2.5));
        assert!(!col.is_null(1));
        let compacted = sel.compact();
        assert_eq!(compacted.len(), 2);
        assert_eq!(compacted.value_at(1, 1), Value::text("a"));
    }

    #[test]
    fn gather_opt_pads_nulls() {
        let chunk = Chunk::from_rows(3, &rows());
        let col = chunk.column(0).gather_opt(&[Some(2), None, Some(0)]);
        assert_eq!(col.value_at(0), Value::Int(3));
        assert!(col.is_null(1));
        assert_eq!(col.value_at(2), Value::Int(1));
    }

    #[test]
    fn concat_splices_and_reinfers() {
        let a = ColumnData::from_values(vec![Value::Int(1), Value::Null]);
        let b = ColumnData::from_values(vec![Value::Int(2)]);
        let spliced = ColumnData::concat(vec![a, b]);
        assert!(matches!(spliced, ColumnData::Int { .. }));
        assert_eq!(spliced.len(), 3);
        assert_eq!(spliced.value_at(2), Value::Int(2));
        // all-null (Int repr) next to Float must re-infer as Float
        let nulls = ColumnData::from_values(vec![Value::Null]);
        let floats = ColumnData::from_values(vec![Value::Float(1.5)]);
        let merged = ColumnData::concat(vec![nulls, floats]);
        assert!(matches!(merged, ColumnData::Float { .. }));
        assert!(merged.is_null(0));
        assert_eq!(merged.value_at(1), Value::Float(1.5));
    }

    #[test]
    fn concat_batches_reuses_contiguous_scan_shape() {
        let chunk = Arc::new(Chunk::from_rows(3, &rows()));
        let parts = vec![
            Batch::range(Arc::clone(&chunk), 0, 2),
            Batch::range(Arc::clone(&chunk), 2, 3),
        ];
        let merged = concat_batches_chunk(&parts, 3);
        assert!(Arc::ptr_eq(&merged, &chunk));
        // non-contiguous selections copy
        let sel = vec![Batch::select(Arc::clone(&chunk), vec![2, 0])];
        let copied = concat_batches_chunk(&sel, 3);
        assert_eq!(copied.len(), 2);
        assert_eq!(copied.value_at(0, 0), Value::Int(3));
    }

    #[test]
    fn slice_local_on_range_and_ids() {
        let chunk = Arc::new(Chunk::from_rows(3, &rows()));
        let r = Batch::range(Arc::clone(&chunk), 0, 3).slice_local(1, 3);
        assert_eq!(r.len(), 2);
        assert_eq!(r.value_at(1, 0), Value::Int(3));
        let s = Batch::select(Arc::clone(&chunk), vec![2, 1, 0]).slice_local(0, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.value_at(0, 0), Value::Int(3));
    }

    #[test]
    fn broadcast_matches_literal() {
        let c = ColumnData::broadcast(&Value::text("x"), 2);
        assert_eq!(c.value_at(0), Value::text("x"));
        let n = ColumnData::broadcast(&Value::Null, 2);
        assert!(n.is_null(1));
    }
}
