//! Per-operator execution metrics fed from [`PlanProfiler`] output.
//!
//! The serving runtime installs a [`tag_metrics::MetricsHub`] on the
//! database ([`crate::Database::install_metrics_hub`]); every profiled
//! query then folds its node profiles into per-operator-kind counters
//! and windowed latency histograms:
//!
//! - `tag_sqlengine_operator_executions_total{op=...}`
//! - `tag_sqlengine_operator_rows_total{op=...}` (rows produced)
//! - `tag_sqlengine_operator_lm_prompts_total{op=...}`
//! - `tag_sqlengine_operator_seconds{op=...}` (wall time *including*
//!   children, matching the profiler's per-node semantics)
//!
//! The chunked executor ([`crate::chunk_exec`]) adds per-morsel
//! instruments through the same sink:
//!
//! - `tag_sqlengine_exec_morsels_total{op=...}` (batches produced)
//! - `tag_sqlengine_exec_chunk_rows{op=...}` (rows per batch,
//!   encoded 1 row = 1ms into the latency bucket layout)
//! - `tag_sqlengine_exec_workers_busy` (pool occupancy gauge, fed by
//!   the [`PoolObserver`] hooks)
//!
//! The operator kind is the first token of the profiler label
//! ("TableScan schools" → `op="TableScan"`), keeping cardinality at
//! the operator vocabulary, not the table vocabulary. Plan-cache
//! hit/miss counters are *not* duplicated here: the serving layer
//! scrapes [`crate::PlanCacheStats`] through a hub collector, which
//! keeps the cumulative counts exact without new hot-path work.

use crate::morsel::PoolObserver;
use crate::profile::NodeProfile;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tag_metrics::{Counter, Gauge, MetricsHub, WindowedHistogram};

struct OpInstruments {
    executions: Arc<Counter>,
    rows_out: Arc<Counter>,
    lm_prompts: Arc<Counter>,
    elapsed: Arc<WindowedHistogram>,
}

struct MorselInstruments {
    morsels: Arc<Counter>,
    chunk_rows: Arc<WindowedHistogram>,
}

/// Hub-backed sink for plan-profiler node records.
pub struct ExecMetrics {
    active: bool,
    hub: Arc<MetricsHub>,
    ops: Mutex<HashMap<String, OpInstruments>>,
    morsel_ops: Mutex<HashMap<String, MorselInstruments>>,
    busy: AtomicI64,
    workers_busy: Mutex<Option<Arc<Gauge>>>,
}

impl std::fmt::Debug for ExecMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecMetrics")
            .field("active", &self.active)
            .finish()
    }
}

impl ExecMetrics {
    /// A sink registering instruments on `hub`. Inactive (records
    /// nothing) when the hub is a no-op registry.
    pub fn new(hub: Arc<MetricsHub>) -> ExecMetrics {
        ExecMetrics {
            active: hub.is_enabled(),
            hub,
            ops: Mutex::new(HashMap::new()),
            morsel_ops: Mutex::new(HashMap::new()),
            busy: AtomicI64::new(0),
            workers_busy: Mutex::new(None),
        }
    }

    /// Record one chunked operator's output batches: a morsel count per
    /// operator kind plus a per-batch row-count distribution.
    ///
    /// The histogram (`tag_sqlengine_exec_chunk_rows`) reuses the
    /// latency-bucket layout by encoding **1 row as 1 millisecond**, so
    /// the default 8192-row morsel lands in the 10-second top bucket
    /// and degenerate single-digit batches in the bottom ones.
    pub fn record_morsels(&self, op: &str, batch_rows: impl IntoIterator<Item = usize>) {
        if !self.active {
            return;
        }
        let mut ops = self.morsel_ops.lock().unwrap_or_else(|e| e.into_inner());
        let hub = &self.hub;
        let inst = ops.entry(op.to_string()).or_insert_with(|| {
            let labels = [("op", op)];
            MorselInstruments {
                morsels: hub.counter(
                    "tag_sqlengine_exec_morsels_total",
                    "Batches produced by chunked operators, by operator kind.",
                    &labels,
                ),
                chunk_rows: hub.histogram(
                    "tag_sqlengine_exec_chunk_rows",
                    "Rows per output batch of chunked operators (encoded 1 row = 1ms).",
                    &labels,
                ),
            }
        });
        for rows in batch_rows {
            inst.morsels.inc();
            inst.chunk_rows.observe(Duration::from_millis(rows as u64));
        }
    }

    fn workers_gauge(&self) -> Option<Arc<Gauge>> {
        if !self.active {
            return None;
        }
        let mut slot = self.workers_busy.lock().unwrap_or_else(|e| e.into_inner());
        Some(Arc::clone(slot.get_or_insert_with(|| {
            self.hub.gauge(
                "tag_sqlengine_exec_workers_busy",
                "Morsel-pool workers currently executing a task.",
                &[],
            )
        })))
    }

    /// Fold one profiled query's node records into the hub.
    pub fn record(&self, nodes: &[NodeProfile]) {
        if !self.active {
            return;
        }
        let mut ops = self.ops.lock().unwrap_or_else(|e| e.into_inner());
        for node in nodes {
            let kind = node.label.split_whitespace().next().unwrap_or("Unknown");
            let hub = &self.hub;
            let inst = ops.entry(kind.to_string()).or_insert_with(|| {
                let labels = [("op", kind)];
                OpInstruments {
                    executions: hub.counter(
                        "tag_sqlengine_operator_executions_total",
                        "Plan-operator executions by operator kind (profiled queries).",
                        &labels,
                    ),
                    rows_out: hub.counter(
                        "tag_sqlengine_operator_rows_total",
                        "Rows produced by operator kind (profiled queries).",
                        &labels,
                    ),
                    lm_prompts: hub.counter(
                        "tag_sqlengine_operator_lm_prompts_total",
                        "LM prompts issued by operator kind (semantic operators only).",
                        &labels,
                    ),
                    elapsed: hub.histogram(
                        "tag_sqlengine_operator_seconds",
                        "Per-operator wall time including children (profiled queries).",
                        &labels,
                    ),
                }
            });
            inst.executions.inc();
            inst.rows_out.add(node.rows_out as u64);
            inst.lm_prompts.add(node.lm_calls);
            inst.elapsed.observe(node.elapsed);
        }
    }
}

/// Worker-occupancy hook for the morsel pool: the
/// `tag_sqlengine_exec_workers_busy` gauge tracks how many workers are
/// executing a task right now (the [`Gauge`] API is set-only, so the
/// count lives in an atomic here and the gauge mirrors it).
impl PoolObserver for ExecMetrics {
    fn task_started(&self) {
        let now = self.busy.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(g) = self.workers_gauge() {
            g.set(now as f64);
        }
    }

    fn task_finished(&self) {
        let now = self.busy.fetch_sub(1, Ordering::Relaxed) - 1;
        if let Some(g) = self.workers_gauge() {
            g.set(now as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn node(label: &str, rows_out: usize, lm: u64, ms: u64) -> NodeProfile {
        NodeProfile {
            label: label.to_string(),
            depth: 0,
            parent: None,
            rows_in: 0,
            rows_out,
            elapsed: Duration::from_millis(ms),
            lm_calls: lm,
            lm_prompt_tokens: 0,
            lm_completion_tokens: 0,
        }
    }

    #[test]
    fn nodes_fold_into_per_operator_series() {
        let hub = Arc::new(MetricsHub::new());
        let m = ExecMetrics::new(Arc::clone(&hub));
        m.record(&[
            node("TableScan schools", 100, 0, 1),
            node("TableScan races", 50, 0, 1),
            node("SemFilter is_urban", 20, 20, 40),
        ]);
        let text = hub.render();
        assert!(text.contains("tag_sqlengine_operator_executions_total{op=\"TableScan\"} 2"));
        assert!(text.contains("tag_sqlengine_operator_rows_total{op=\"TableScan\"} 150"));
        assert!(text.contains("tag_sqlengine_operator_lm_prompts_total{op=\"SemFilter\"} 20"));
        assert!(text.contains("tag_sqlengine_operator_seconds_count{op=\"SemFilter\"} 1"));
    }

    #[test]
    fn noop_hub_records_nothing() {
        let hub = Arc::new(MetricsHub::noop());
        let m = ExecMetrics::new(Arc::clone(&hub));
        m.record(&[node("TableScan schools", 100, 0, 1)]);
        m.record_morsels("TableScan", [100, 20]);
        m.task_started();
        m.task_finished();
        assert_eq!(hub.render(), "");
        assert!(m.ops.lock().unwrap_or_else(|e| e.into_inner()).is_empty());
    }

    #[test]
    fn morsel_instruments_and_worker_gauge() {
        let hub = Arc::new(MetricsHub::new());
        let m = ExecMetrics::new(Arc::clone(&hub));
        m.record_morsels("TableScan", [8192, 8192, 100]);
        m.record_morsels("Filter", [40]);
        m.task_started();
        m.task_started();
        m.task_finished();
        let text = hub.render();
        assert!(text.contains("tag_sqlengine_exec_morsels_total{op=\"TableScan\"} 3"));
        assert!(text.contains("tag_sqlengine_exec_morsels_total{op=\"Filter\"} 1"));
        assert!(text.contains("tag_sqlengine_exec_chunk_rows_count{op=\"TableScan\"} 3"));
        assert!(text.contains("tag_sqlengine_exec_workers_busy 1"));
    }
}
