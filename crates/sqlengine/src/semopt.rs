//! LM-call-minimizing rewrite rules over [`SemNode`] trees.
//!
//! Three rules, each of which provably preserves answers under the
//! runtime's guarantees (order-preserving filters, stable sorts, and
//! per-prompt-deterministic LM judgments):
//!
//! 1. **Predicate pushdown** — exact predicates sink below semantic
//!    filters so the LM judges fewer rows. Sound because both filter
//!    kinds preserve input order and keep/drop decisions are per-row,
//!    so filters commute.
//! 2. **Distinct-value rewrite** — semantic filters judge each distinct
//!    column value once instead of row-wise (the paper's Appendix C
//!    pattern, promoted from an ad-hoc code path to an optimizer rule).
//!    Sound because judgments are functions of the value alone.
//! 3. **Exact pre-cut** — a `Cut` (sort + head-k) directly above a
//!    semantic filter fuses into the filter as an early-stop spec: sort
//!    first, judge values in sorted order, stop once `k` rows survive.
//!    Sound because a stable sort of a filtered subset equals the
//!    filtered subset of the stably-sorted whole.

use crate::semplan::SemNode;

/// Which SemPlan rewrite rules are enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SemOptOptions {
    /// Sink exact predicates below semantic filters.
    pub pushdown: bool,
    /// Judge distinct values instead of rows in semantic filters.
    pub distinct_rewrite: bool,
    /// Fuse an exact sort+cut into the semantic filter below it.
    pub precut: bool,
}

impl Default for SemOptOptions {
    fn default() -> Self {
        SemOptOptions::all()
    }
}

impl SemOptOptions {
    /// Every rule enabled (the default).
    pub fn all() -> Self {
        SemOptOptions {
            pushdown: true,
            distinct_rewrite: true,
            precut: true,
        }
    }

    /// No rules — plans execute exactly as compiled.
    pub fn none() -> Self {
        SemOptOptions {
            pushdown: false,
            distinct_rewrite: false,
            precut: false,
        }
    }

    /// Compact tag for plan-cache keys, so plans optimized under
    /// different rule sets never collide.
    pub fn cache_tag(&self) -> String {
        format!(
            "p{}d{}c{}",
            self.pushdown as u8, self.distinct_rewrite as u8, self.precut as u8
        )
    }
}

/// Apply the enabled rewrite rules to `node`, bottom-up.
pub fn optimize_sem(node: SemNode, opts: &SemOptOptions) -> SemNode {
    let node = rewrite_children(node, opts);
    let node = if opts.pushdown {
        sink_predicate(node)
    } else {
        node
    };
    let node = if opts.distinct_rewrite {
        mark_distinct(node)
    } else {
        node
    };
    if opts.precut {
        fuse_precut(node)
    } else {
        node
    }
}

fn rewrite_children(node: SemNode, opts: &SemOptOptions) -> SemNode {
    let opt = |b: Box<SemNode>| Box::new(optimize_sem(*b, opts));
    match node {
        leaf @ (SemNode::Scan { .. } | SemNode::Input { .. } | SemNode::Retrieve { .. }) => leaf,
        SemNode::Predicate { input, pred } => SemNode::Predicate {
            input: opt(input),
            pred,
        },
        SemNode::SemFilter {
            input,
            columns,
            resolve,
            claim,
            distinct,
            early_stop,
        } => SemNode::SemFilter {
            input: opt(input),
            columns,
            resolve,
            claim,
            distinct,
            early_stop,
        },
        SemNode::Cut { input, cut } => SemNode::Cut {
            input: opt(input),
            cut,
        },
        SemNode::SemTopK {
            input,
            on_attr,
            property,
            k,
        } => SemNode::SemTopK {
            input: opt(input),
            on_attr,
            property,
            k,
        },
        SemNode::SemAgg { input, request } => SemNode::SemAgg {
            input: opt(input),
            request,
        },
        SemNode::SemMap {
            input,
            on_attr,
            instruction,
            out_column,
        } => SemNode::SemMap {
            input: opt(input),
            on_attr,
            instruction,
            out_column,
        },
        SemNode::SemJoin {
            left,
            right,
            left_on,
            right_on,
            property,
        } => SemNode::SemJoin {
            left: opt(left),
            right: opt(right),
            left_on,
            right_on,
            property,
        },
        SemNode::Rerank { input, query, keep } => SemNode::Rerank {
            input: opt(input),
            query,
            keep,
        },
        SemNode::Generate {
            input,
            request,
            format,
            span_name,
        } => SemNode::Generate {
            input: opt(input),
            request,
            format,
            span_name,
        },
    }
}

/// Rule 1: `Predicate(SemFilter(X))` → `SemFilter(Predicate(X))`,
/// recursively, so the predicate sinks past every semantic filter in a
/// linear chain. Relative order among predicates and among semantic
/// filters is preserved (a stable partition). Early-stop filters are
/// left alone: their cut does not commute with filtering.
fn sink_predicate(node: SemNode) -> SemNode {
    match node {
        SemNode::Predicate { input, pred } => match *input {
            SemNode::SemFilter {
                input: inner,
                columns,
                resolve,
                claim,
                distinct,
                early_stop: None,
            } => SemNode::SemFilter {
                input: Box::new(sink_predicate(SemNode::Predicate { input: inner, pred })),
                columns,
                resolve,
                claim,
                distinct,
                early_stop: None,
            },
            other => SemNode::Predicate {
                input: Box::new(other),
                pred,
            },
        },
        other => other,
    }
}

/// Rule 2: semantic filters judge distinct values once.
fn mark_distinct(node: SemNode) -> SemNode {
    match node {
        SemNode::SemFilter {
            input,
            columns,
            resolve,
            claim,
            distinct: _,
            early_stop,
        } => SemNode::SemFilter {
            input,
            columns,
            resolve,
            claim,
            distinct: true,
            early_stop,
        },
        other => other,
    }
}

/// Rule 3: `Cut(SemFilter(X))` → `SemFilter(X) with early_stop`. The
/// fused filter judges distinct values in sorted order (so it implies
/// rule 2 for that node) and stops as soon as `k` rows survive.
fn fuse_precut(node: SemNode) -> SemNode {
    match node {
        SemNode::Cut { input, cut } => match *input {
            SemNode::SemFilter {
                input: inner,
                columns,
                resolve,
                claim,
                distinct: _,
                early_stop: None,
            } => SemNode::SemFilter {
                input: inner,
                columns,
                resolve,
                claim,
                distinct: true,
                early_stop: Some(cut),
            },
            other => SemNode::Cut {
                input: Box::new(other),
                cut,
            },
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semplan::{CutSpec, SemClaimSpec, SemPredicate};

    fn scan() -> SemNode {
        SemNode::Scan { table: "t".into() }
    }

    fn sem_filter(input: SemNode) -> SemNode {
        SemNode::SemFilter {
            input: Box::new(input),
            columns: vec!["c".into()],
            resolve: true,
            claim: SemClaimSpec::EuCountry,
            distinct: false,
            early_stop: None,
        }
    }

    fn predicate(input: SemNode, attr: &str) -> SemNode {
        SemNode::Predicate {
            input: Box::new(input),
            pred: SemPredicate::TextEq {
                attr: attr.into(),
                value: "x".into(),
            },
        }
    }

    fn chain_labels(root: &SemNode) -> Vec<String> {
        let mut out = vec![root.label()];
        let mut cur = root;
        while let Some(child) = cur.children().first().copied() {
            out.push(child.label());
            cur = child;
        }
        out
    }

    #[test]
    fn none_is_identity() {
        let plan = predicate(sem_filter(scan()), "a");
        assert_eq!(optimize_sem(plan.clone(), &SemOptOptions::none()), plan);
    }

    #[test]
    fn pushdown_sinks_predicates_below_sem_filters() {
        // Execution order (bottom-up): scan, sem_filter, pred(a), pred(b).
        let plan = predicate(predicate(sem_filter(scan()), "a"), "b");
        let opts = SemOptOptions {
            pushdown: true,
            distinct_rewrite: false,
            precut: false,
        };
        let labels = chain_labels(&optimize_sem(plan, &opts));
        // Predicates now run first, keeping their relative order.
        assert_eq!(
            labels,
            vec![
                "SemFilter c [EU country]",
                "Predicate b = 'x'",
                "Predicate a = 'x'",
                "Scan t",
            ],
            "predicates sank below the semantic filter"
        );
    }

    #[test]
    fn distinct_rewrite_marks_every_sem_filter() {
        let plan = sem_filter(predicate(sem_filter(scan()), "a"));
        let opts = SemOptOptions {
            pushdown: false,
            distinct_rewrite: true,
            precut: false,
        };
        let optimized = optimize_sem(plan, &opts);
        fn all_distinct(node: &SemNode) -> bool {
            let here = !matches!(
                node,
                SemNode::SemFilter {
                    distinct: false,
                    ..
                }
            );
            here && node.children().iter().all(|c| all_distinct(c))
        }
        assert!(all_distinct(&optimized));
    }

    #[test]
    fn precut_fuses_cut_into_sem_filter() {
        let plan = SemNode::Cut {
            input: Box::new(sem_filter(scan())),
            cut: CutSpec {
                sort_by: "rank".into(),
                descending: true,
                k: 1,
            },
        };
        let opts = SemOptOptions {
            pushdown: false,
            distinct_rewrite: false,
            precut: true,
        };
        match optimize_sem(plan, &opts) {
            SemNode::SemFilter {
                distinct,
                early_stop: Some(cut),
                ..
            } => {
                assert!(distinct, "fusion implies distinct judging");
                assert_eq!(cut.sort_by, "rank");
                assert_eq!(cut.k, 1);
            }
            other => panic!("expected fused SemFilter, got {}", other.label()),
        }
    }

    #[test]
    fn all_rules_compose_on_a_superlative_chain() {
        // Compiled Superlative: Cut(k=1) over sem_filter over predicate
        // over sem_filter over scan.
        let plan = SemNode::Cut {
            input: Box::new(sem_filter(predicate(sem_filter(scan()), "a"))),
            cut: CutSpec {
                sort_by: "rank".into(),
                descending: true,
                k: 1,
            },
        };
        let optimized = optimize_sem(plan, &SemOptOptions::all());
        let labels = chain_labels(&optimized);
        assert_eq!(
            labels,
            vec![
                "SemFilter c [EU country] distinct early_stop(sort=rank desc k=1)",
                "SemFilter c [EU country] distinct",
                "Predicate a = 'x'",
                "Scan t",
            ],
            "cut fused into top filter, predicate sank to the bottom"
        );
    }

    #[test]
    fn cache_tags_distinguish_rule_sets() {
        assert_eq!(SemOptOptions::all().cache_tag(), "p1d1c1");
        assert_eq!(SemOptOptions::none().cache_tag(), "p0d0c0");
        assert_ne!(
            SemOptOptions::all().cache_tag(),
            SemOptOptions::none().cache_tag()
        );
    }
}
