//! SQL tokenizer.
//!
//! Produces a flat token stream; keyword classification happens in the
//! parser so that keywords can still be used as identifiers where SQLite
//! allows it.

use crate::error::{SqlError, SqlResult};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare or quoted identifier / keyword. The `bool` is true when the
    /// identifier was quoted (and therefore can never be a keyword).
    Ident(String, bool),
    /// Integer literal (kept as text until parse).
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal, quotes removed and `''` unescaped.
    Str(String),
    /// Punctuation or operator.
    Sym(Sym),
}

/// Operator and punctuation tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Sym {
    LParen,
    RParen,
    Comma,
    Dot,
    Semicolon,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Concat,
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sym::LParen => "(",
            Sym::RParen => ")",
            Sym::Comma => ",",
            Sym::Dot => ".",
            Sym::Semicolon => ";",
            Sym::Star => "*",
            Sym::Plus => "+",
            Sym::Minus => "-",
            Sym::Slash => "/",
            Sym::Percent => "%",
            Sym::Eq => "=",
            Sym::NotEq => "!=",
            Sym::Lt => "<",
            Sym::LtEq => "<=",
            Sym::Gt => ">",
            Sym::GtEq => ">=",
            Sym::Concat => "||",
        };
        write!(f, "{s}")
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s, _) => write!(f, "{s}"),
            Token::Int(i) => write!(f, "{i}"),
            Token::Float(x) => write!(f, "{x}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Sym(s) => write!(f, "{s}"),
        }
    }
}

/// Tokenize a SQL string.
///
/// Supports `--` line comments and `/* */` block comments, single-quoted
/// strings with `''` escapes, double-quote and backtick quoted
/// identifiers, and decimal/float numeric literals.
pub fn tokenize(sql: &str) -> SqlResult<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < bytes.len() {
        // Decode the actual char so multibyte input can't be mis-sliced.
        let c = sql[i..].chars().next().expect("i is on a char boundary");
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(SqlError::Lex(format!(
                            "unterminated block comment at byte {start}"
                        )));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '\'' => {
                let (s, next) = lex_quoted(sql, i, '\'')?;
                out.push(Token::Str(s));
                i = next;
            }
            '"' | '`' => {
                let (s, next) = lex_quoted(sql, i, c)?;
                out.push(Token::Ident(s, true));
                i = next;
            }
            '(' => push_sym(&mut out, Sym::LParen, &mut i),
            ')' => push_sym(&mut out, Sym::RParen, &mut i),
            ',' => push_sym(&mut out, Sym::Comma, &mut i),
            ';' => push_sym(&mut out, Sym::Semicolon, &mut i),
            '*' => push_sym(&mut out, Sym::Star, &mut i),
            '+' => push_sym(&mut out, Sym::Plus, &mut i),
            '-' => push_sym(&mut out, Sym::Minus, &mut i),
            '/' => push_sym(&mut out, Sym::Slash, &mut i),
            '%' => push_sym(&mut out, Sym::Percent, &mut i),
            '=' => {
                i += if bytes.get(i + 1) == Some(&b'=') {
                    2
                } else {
                    1
                };
                out.push(Token::Sym(Sym::Eq));
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Sym(Sym::NotEq));
                    i += 2;
                } else {
                    return Err(SqlError::Lex("unexpected '!'".into()));
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(&b'=') => {
                    out.push(Token::Sym(Sym::LtEq));
                    i += 2;
                }
                Some(&b'>') => {
                    out.push(Token::Sym(Sym::NotEq));
                    i += 2;
                }
                _ => push_sym(&mut out, Sym::Lt, &mut i),
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::Sym(Sym::GtEq));
                    i += 2;
                } else {
                    push_sym(&mut out, Sym::Gt, &mut i);
                }
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    out.push(Token::Sym(Sym::Concat));
                    i += 2;
                } else {
                    return Err(SqlError::Lex("unexpected '|' (did you mean '||'?)".into()));
                }
            }
            '.' if bytes
                .get(i + 1)
                .map(|b| b.is_ascii_digit())
                .unwrap_or(false) =>
            {
                let (tok, next) = lex_number(sql, i)?;
                out.push(tok);
                i = next;
            }
            '.' => push_sym(&mut out, Sym::Dot, &mut i),
            '0'..='9' => {
                let (tok, next) = lex_number(sql, i)?;
                out.push(tok);
                i = next;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                for (off, ch) in sql[start..].char_indices() {
                    if ch.is_alphanumeric() || ch == '_' {
                        i = start + off + ch.len_utf8();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(sql[start..i].to_owned(), false));
            }
            other => {
                return Err(SqlError::Lex(format!(
                    "unexpected character {other:?} at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

fn push_sym(out: &mut Vec<Token>, sym: Sym, i: &mut usize) {
    out.push(Token::Sym(sym));
    *i += 1;
}

fn lex_quoted(sql: &str, start: usize, quote: char) -> SqlResult<(String, usize)> {
    let bytes = sql.as_bytes();
    let q = quote as u8;
    let mut i = start + 1;
    let mut s = String::new();
    loop {
        if i >= bytes.len() {
            return Err(SqlError::Lex(format!(
                "unterminated {quote}-quoted token starting at byte {start}"
            )));
        }
        if bytes[i] == q {
            // Doubled quote is an escape inside single-quoted strings.
            if quote == '\'' && bytes.get(i + 1) == Some(&q) {
                s.push(quote);
                i += 2;
                continue;
            }
            return Ok((s, i + 1));
        }
        // Advance by full UTF-8 characters.
        let ch_len = utf8_len(bytes[i]);
        s.push_str(&sql[i..i + ch_len]);
        i += ch_len;
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn lex_number(sql: &str, start: usize) -> SqlResult<(Token, usize)> {
    let bytes = sql.as_bytes();
    let mut i = start;
    let mut seen_dot = false;
    let mut seen_exp = false;
    while i < bytes.len() {
        match bytes[i] {
            b'0'..=b'9' => i += 1,
            b'.' if !seen_dot && !seen_exp => {
                seen_dot = true;
                i += 1;
            }
            b'e' | b'E' if !seen_exp => {
                seen_exp = true;
                i += 1;
                if matches!(bytes.get(i), Some(b'+') | Some(b'-')) {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let text = &sql[start..i];
    if !seen_dot && !seen_exp {
        if let Ok(v) = text.parse::<i64>() {
            return Ok((Token::Int(v), i));
        }
    }
    text.parse::<f64>()
        .map(|v| (Token::Float(v), i))
        .map_err(|_| SqlError::Lex(format!("bad numeric literal {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(s: &str) -> Vec<Token> {
        tokenize(s).unwrap()
    }

    #[test]
    fn basic_select_tokens() {
        let toks = lex("SELECT a, b FROM t WHERE a >= 10;");
        assert_eq!(toks.len(), 11);
        assert_eq!(toks[0], Token::Ident("SELECT".into(), false));
        assert_eq!(toks[8], Token::Sym(Sym::GtEq));
        assert_eq!(toks[9], Token::Int(10));
        assert_eq!(toks[10], Token::Sym(Sym::Semicolon));
    }

    #[test]
    fn string_escapes() {
        let toks = lex("'it''s'");
        assert_eq!(toks, vec![Token::Str("it's".into())]);
    }

    #[test]
    fn quoted_identifiers() {
        let toks = lex("\"Academic Year\" `col`");
        assert_eq!(
            toks,
            vec![
                Token::Ident("Academic Year".into(), true),
                Token::Ident("col".into(), true)
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(lex("42"), vec![Token::Int(42)]);
        assert_eq!(lex("3.5"), vec![Token::Float(3.5)]);
        assert_eq!(lex(".5"), vec![Token::Float(0.5)]);
        assert_eq!(lex("1e3"), vec![Token::Float(1000.0)]);
        assert_eq!(lex("2.5e-1"), vec![Token::Float(0.25)]);
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("SELECT 1 -- trailing\n/* block\ncomment */ + 2");
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into(), false),
                Token::Int(1),
                Token::Sym(Sym::Plus),
                Token::Int(2)
            ]
        );
    }

    #[test]
    fn comparison_operator_variants() {
        let toks = lex("a <> b != c == d");
        assert_eq!(toks[1], Token::Sym(Sym::NotEq));
        assert_eq!(toks[3], Token::Sym(Sym::NotEq));
        assert_eq!(toks[5], Token::Sym(Sym::Eq));
    }

    #[test]
    fn errors() {
        assert!(tokenize("'open").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("/* open").is_err());
        assert!(tokenize("a | b").is_err());
        assert!(tokenize("SELECT #").is_err());
    }

    #[test]
    fn unicode_strings() {
        let toks = lex("'café ☕'");
        assert_eq!(toks, vec![Token::Str("café ☕".into())]);
    }

    #[test]
    fn concat_operator() {
        assert_eq!(lex("a || b")[1], Token::Sym(Sym::Concat));
    }
}
