//! Secondary indexes: a from-scratch B+-tree and a hash index.
//!
//! Both map a column value to the set of row ids holding that value.
//! The B+-tree supports ordered range scans (used for `<`, `BETWEEN`,
//! and index-ordered iteration); the hash index serves equality probes.
//!
//! Deletion removes entries from leaves without rebalancing ("lazy
//! deletion"): the tree stays correct but may become sparse under heavy
//! churn. This is the classic trade-off for analytic, insert-mostly
//! workloads like ours; `rebuild` compacts when needed.

use crate::value::Value;
use std::collections::HashMap;
use std::ops::Bound;

/// Fan-out of the B+-tree. Small enough to exercise splits in tests,
/// large enough to keep depth low at our table sizes.
const ORDER: usize = 16;

/// A single-column B+-tree index mapping values to row ids.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    root: Node,
    len: usize,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<Value>,
        /// Row-id postings, parallel to `keys`.
        rows: Vec<Vec<usize>>,
    },
    Internal {
        /// `keys[i]` is the smallest key reachable via `children[i + 1]`.
        keys: Vec<Value>,
        children: Vec<Node>,
    },
}

impl Default for BTreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeIndex {
    /// An empty index.
    pub fn new() -> Self {
        BTreeIndex {
            root: Node::Leaf {
                keys: Vec::new(),
                rows: Vec::new(),
            },
            len: 0,
        }
    }

    /// Number of (key, row) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a (key, row id) pair. Duplicate keys accumulate postings.
    pub fn insert(&mut self, key: Value, row: usize) {
        self.len += 1;
        if let Some((split_key, right)) = insert_rec(&mut self.root, key, row) {
            let old_root = std::mem::replace(
                &mut self.root,
                Node::Internal {
                    keys: Vec::new(),
                    children: Vec::new(),
                },
            );
            self.root = Node::Internal {
                keys: vec![split_key],
                children: vec![old_root, right],
            };
        }
    }

    /// Remove a specific (key, row id) pair. Returns true when it existed.
    pub fn remove(&mut self, key: &Value, row: usize) -> bool {
        let removed = remove_rec(&mut self.root, key, row);
        if removed {
            self.len -= 1;
        }
        removed
    }

    /// Row ids with exactly this key.
    pub fn get(&self, key: &Value) -> Vec<usize> {
        let mut node = &self.root;
        loop {
            match node {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k <= key);
                    node = &children[idx];
                }
                Node::Leaf { keys, rows } => {
                    return match keys.binary_search(key) {
                        Ok(i) => rows[i].clone(),
                        Err(_) => Vec::new(),
                    };
                }
            }
        }
    }

    /// Row ids whose keys fall in the given bounds, in key order.
    pub fn range(&self, low: Bound<&Value>, high: Bound<&Value>) -> Vec<usize> {
        let mut out = Vec::new();
        range_rec(&self.root, low, high, &mut out);
        out
    }

    /// All (key, row ids) entries in key order.
    pub fn iter_ordered(&self) -> Vec<(Value, Vec<usize>)> {
        let mut out = Vec::new();
        collect_rec(&self.root, &mut out);
        out
    }

    /// Height of the tree (1 for a single leaf). Exposed for tests.
    pub fn height(&self) -> usize {
        let mut h = 1;
        let mut node = &self.root;
        while let Node::Internal { children, .. } = node {
            h += 1;
            node = &children[0];
        }
        h
    }

    /// Verify structural invariants; panics with a description on violation.
    /// Used by property tests.
    pub fn check_invariants(&self) {
        check_rec(&self.root, None, None, true);
        let total: usize = self.iter_ordered().iter().map(|(_, rows)| rows.len()).sum();
        assert_eq!(total, self.len, "len counter out of sync");
    }
}

/// Insert into a subtree; on split, return (separator key, right sibling).
fn insert_rec(node: &mut Node, key: Value, row: usize) -> Option<(Value, Node)> {
    match node {
        Node::Leaf { keys, rows } => {
            match keys.binary_search(&key) {
                Ok(i) => rows[i].push(row),
                Err(i) => {
                    keys.insert(i, key);
                    rows.insert(i, vec![row]);
                }
            }
            if keys.len() > ORDER {
                let mid = keys.len() / 2;
                let right_keys = keys.split_off(mid);
                let right_rows = rows.split_off(mid);
                let sep = right_keys[0].clone();
                return Some((
                    sep,
                    Node::Leaf {
                        keys: right_keys,
                        rows: right_rows,
                    },
                ));
            }
            None
        }
        Node::Internal { keys, children } => {
            let idx = keys.partition_point(|k| *k <= key);
            if let Some((sep, right)) = insert_rec(&mut children[idx], key, row) {
                keys.insert(idx, sep);
                children.insert(idx + 1, right);
                if children.len() > ORDER {
                    let mid = keys.len() / 2;
                    let sep = keys[mid].clone();
                    let right_keys = keys.split_off(mid + 1);
                    keys.pop(); // the separator moves up
                    let right_children = children.split_off(mid + 1);
                    return Some((
                        sep,
                        Node::Internal {
                            keys: right_keys,
                            children: right_children,
                        },
                    ));
                }
            }
            None
        }
    }
}

fn remove_rec(node: &mut Node, key: &Value, row: usize) -> bool {
    match node {
        Node::Leaf { keys, rows } => match keys.binary_search(key) {
            Ok(i) => {
                if let Some(pos) = rows[i].iter().position(|r| *r == row) {
                    rows[i].swap_remove(pos);
                    if rows[i].is_empty() {
                        keys.remove(i);
                        rows.remove(i);
                    }
                    true
                } else {
                    false
                }
            }
            Err(_) => false,
        },
        Node::Internal { keys, children } => {
            let idx = keys.partition_point(|k| k <= key);
            remove_rec(&mut children[idx], key, row)
        }
    }
}

fn range_rec(node: &Node, low: Bound<&Value>, high: Bound<&Value>, out: &mut Vec<usize>) {
    let below_low = |k: &Value| match low {
        Bound::Unbounded => false,
        Bound::Included(l) => k < l,
        Bound::Excluded(l) => k <= l,
    };
    let above_high = |k: &Value| match high {
        Bound::Unbounded => false,
        Bound::Included(h) => k > h,
        Bound::Excluded(h) => k >= h,
    };
    match node {
        Node::Leaf { keys, rows } => {
            for (k, rs) in keys.iter().zip(rows) {
                if below_low(k) {
                    continue;
                }
                if above_high(k) {
                    break;
                }
                out.extend_from_slice(rs);
            }
        }
        Node::Internal { keys, children } => {
            // Child i covers keys < keys[i]; child i+1 covers >= keys[i].
            for (i, child) in children.iter().enumerate() {
                // Prune children strictly outside the bounds.
                let child_min_ok = i == 0 || !above_high(&keys[i - 1]);
                let child_max_ok = i == keys.len() || !below_low(&keys[i]);
                if child_min_ok && child_max_ok {
                    range_rec(child, low, high, out);
                }
            }
        }
    }
}

fn collect_rec(node: &Node, out: &mut Vec<(Value, Vec<usize>)>) {
    match node {
        Node::Leaf { keys, rows } => {
            for (k, rs) in keys.iter().zip(rows) {
                out.push((k.clone(), rs.clone()));
            }
        }
        Node::Internal { children, .. } => {
            for c in children {
                collect_rec(c, out);
            }
        }
    }
}

fn check_rec(node: &Node, min: Option<&Value>, max: Option<&Value>, is_root: bool) -> usize {
    match node {
        Node::Leaf { keys, rows } => {
            assert_eq!(keys.len(), rows.len(), "leaf keys/rows length mismatch");
            assert!(keys.windows(2).all(|w| w[0] < w[1]), "leaf keys not sorted");
            for k in keys {
                if let Some(m) = min {
                    assert!(k >= m, "leaf key below subtree min");
                }
                if let Some(m) = max {
                    assert!(k < m, "leaf key at or above subtree max");
                }
            }
            assert!(rows.iter().all(|r| !r.is_empty()), "empty posting list");
            1
        }
        Node::Internal { keys, children } => {
            assert_eq!(children.len(), keys.len() + 1, "internal arity mismatch");
            assert!(!keys.is_empty() || is_root, "internal node with no keys");
            assert!(
                keys.windows(2).all(|w| w[0] < w[1]),
                "internal keys not sorted"
            );
            let mut depth = None;
            for (i, child) in children.iter().enumerate() {
                let lo = if i == 0 { min } else { Some(&keys[i - 1]) };
                let hi = if i == keys.len() { max } else { Some(&keys[i]) };
                let d = check_rec(child, lo, hi, false);
                if let Some(prev) = depth {
                    assert_eq!(prev, d, "unbalanced children");
                }
                depth = Some(d);
            }
            depth.unwrap_or(0) + 1
        }
    }
}

/// Hash index for equality lookups.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: HashMap<Value, Vec<usize>>,
    len: usize,
}

impl HashIndex {
    /// An empty hash index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a (key, row id) pair.
    pub fn insert(&mut self, key: Value, row: usize) {
        self.map.entry(key).or_default().push(row);
        self.len += 1;
    }

    /// Remove a specific (key, row id) pair.
    pub fn remove(&mut self, key: &Value, row: usize) -> bool {
        if let Some(rows) = self.map.get_mut(key) {
            if let Some(pos) = rows.iter().position(|r| *r == row) {
                rows.swap_remove(pos);
                if rows.is_empty() {
                    self.map.remove(key);
                }
                self.len -= 1;
                return true;
            }
        }
        false
    }

    /// Row ids with exactly this key.
    pub fn get(&self, key: &Value) -> &[usize] {
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of (key, row) entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut idx = BTreeIndex::new();
        for i in 0..100 {
            idx.insert(Value::Int(i % 10), i as usize);
        }
        idx.check_invariants();
        assert_eq!(idx.len(), 100);
        let mut rows = idx.get(&Value::Int(3));
        rows.sort_unstable();
        assert_eq!(rows, vec![3, 13, 23, 33, 43, 53, 63, 73, 83, 93]);
        assert!(idx.get(&Value::Int(11)).is_empty());
    }

    #[test]
    fn splits_grow_height() {
        let mut idx = BTreeIndex::new();
        assert_eq!(idx.height(), 1);
        for i in 0..1000 {
            idx.insert(Value::Int(i), i as usize);
        }
        idx.check_invariants();
        assert!(idx.height() >= 3, "height {} too small", idx.height());
        // Ordered iteration yields sorted unique keys.
        let entries = idx.iter_ordered();
        assert_eq!(entries.len(), 1000);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn range_bounds() {
        let mut idx = BTreeIndex::new();
        for i in 0..50 {
            idx.insert(Value::Int(i), i as usize);
        }
        let lo = Value::Int(10);
        let hi = Value::Int(15);
        let mut rows = idx.range(Bound::Included(&lo), Bound::Excluded(&hi));
        rows.sort_unstable();
        assert_eq!(rows, vec![10, 11, 12, 13, 14]);
        let rows = idx.range(Bound::Excluded(&lo), Bound::Included(&hi));
        assert_eq!(rows, vec![11, 12, 13, 14, 15]);
        let all = idx.range(Bound::Unbounded, Bound::Unbounded);
        assert_eq!(all.len(), 50);
    }

    #[test]
    fn remove_entries() {
        let mut idx = BTreeIndex::new();
        for i in 0..200 {
            idx.insert(Value::Int(i / 2), i as usize);
        }
        assert!(idx.remove(&Value::Int(5), 10));
        assert!(idx.remove(&Value::Int(5), 11));
        assert!(!idx.remove(&Value::Int(5), 10));
        assert!(idx.get(&Value::Int(5)).is_empty());
        assert_eq!(idx.len(), 198);
        idx.check_invariants();
    }

    #[test]
    fn mixed_type_keys_order() {
        let mut idx = BTreeIndex::new();
        idx.insert(Value::text("zebra"), 0);
        idx.insert(Value::Int(5), 1);
        idx.insert(Value::Null, 2);
        idx.insert(Value::Float(2.5), 3);
        idx.check_invariants();
        let keys: Vec<Value> = idx.iter_ordered().into_iter().map(|(k, _)| k).collect();
        assert_eq!(
            keys,
            vec![
                Value::Null,
                Value::Float(2.5),
                Value::Int(5),
                Value::text("zebra")
            ]
        );
    }

    #[test]
    fn hash_index_basics() {
        let mut h = HashIndex::new();
        h.insert(Value::text("a"), 1);
        h.insert(Value::text("a"), 2);
        h.insert(Value::text("b"), 3);
        assert_eq!(h.get(&Value::text("a")), &[1, 2]);
        assert!(h.remove(&Value::text("a"), 1));
        assert_eq!(h.get(&Value::text("a")), &[2]);
        assert!(!h.remove(&Value::text("c"), 9));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn hash_index_int_float_unify() {
        // Int(2) and Float(2.0) compare equal and hash alike, so they must
        // share a posting list.
        let mut h = HashIndex::new();
        h.insert(Value::Int(2), 1);
        h.insert(Value::Float(2.0), 2);
        assert_eq!(h.get(&Value::Int(2)), &[1, 2]);
    }
}
