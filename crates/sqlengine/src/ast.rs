//! Abstract syntax tree for the supported SQL dialect.

use crate::schema::DataType;
use crate::value::Value;
use std::fmt;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Statement {
    /// `SELECT ...`
    Select(SelectStmt),
    /// `SELECT ... UNION [ALL] SELECT ... [...]` (top-level only).
    CompoundSelect {
        first: SelectStmt,
        /// Each arm: (is UNION ALL, the select).
        rest: Vec<(bool, SelectStmt)>,
    },
    /// `CREATE TABLE name (col type [constraints], ...)`
    CreateTable(CreateTableStmt),
    /// `INSERT INTO name [(cols)] VALUES (...), ...`
    Insert(InsertStmt),
    /// `DROP TABLE [IF EXISTS] name`
    DropTable { name: String, if_exists: bool },
    /// `DELETE FROM name [WHERE expr]`
    Delete {
        table: String,
        predicate: Option<Expr>,
    },
    /// `UPDATE name SET col = expr, ... [WHERE expr]`
    Update {
        table: String,
        assignments: Vec<(String, Expr)>,
        predicate: Option<Expr>,
    },
    /// `CREATE INDEX name ON table (col)`
    CreateIndex {
        name: String,
        table: String,
        column: String,
        unique: bool,
    },
}

/// A full SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Select list items.
    pub items: Vec<SelectItem>,
    /// FROM clause; `None` for table-less selects like `SELECT 1`.
    pub from: Option<TableRef>,
    /// Joins applied after `from`, in order.
    pub joins: Vec<Join>,
    /// WHERE predicate.
    pub predicate: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY keys.
    pub order_by: Vec<OrderKey>,
    /// LIMIT count.
    pub limit: Option<u64>,
    /// OFFSET count.
    pub offset: Option<u64>,
}

/// One item of the select list.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// A base table reference or a parenthesised subquery in FROM.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum TableRef {
    /// `name [AS alias]`
    Table { name: String, alias: Option<String> },
    /// `(SELECT ...) AS alias`
    Subquery {
        query: Box<SelectStmt>,
        alias: String,
    },
}

impl TableRef {
    /// The name this relation is visible as in scopes.
    pub fn visible_name(&self) -> &str {
        match self {
            TableRef::Table { name, alias } => alias.as_deref().unwrap_or(name),
            TableRef::Subquery { alias, .. } => alias,
        }
    }
}

/// Join type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinKind::Inner => write!(f, "INNER"),
            JoinKind::Left => write!(f, "LEFT"),
            JoinKind::Cross => write!(f, "CROSS"),
        }
    }
}

/// One JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// Join type.
    pub kind: JoinKind,
    /// The joined relation.
    pub table: TableRef,
    /// ON condition; absent for CROSS joins.
    pub on: Option<Expr>,
}

/// ORDER BY key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    /// The key expression.
    pub expr: Expr,
    /// Sort descending?
    pub descending: bool,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Concat,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
    Like,
    NotLike,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Concat => "||",
            BinOp::Eq => "=",
            BinOp::NotEq => "!=",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Like => "LIKE",
            BinOp::NotLike => "NOT LIKE",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum UnOp {
    Neg,
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Possibly-qualified column reference: `[table.]column`.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
    },
    /// Unary operation.
    Unary { op: UnOp, operand: Box<Expr> },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull { expr: Box<Expr>, negated: bool },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (list)`.
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSubquery {
        expr: Box<Expr>,
        query: Box<SelectStmt>,
        negated: bool,
    },
    /// Scalar subquery `(SELECT ...)`.
    ScalarSubquery(Box<SelectStmt>),
    /// `EXISTS (SELECT ...)`.
    Exists {
        query: Box<SelectStmt>,
        negated: bool,
    },
    /// Function call, including aggregate functions and LM UDFs.
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
    },
    /// `COUNT(*)` — kept distinct from `Function` since it has no argument.
    CountStar,
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`.
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_branch: Option<Box<Expr>>,
    },
    /// `CAST(expr AS type)`.
    Cast { expr: Box<Expr>, dtype: DataType },
}

impl Expr {
    /// Convenience constructor for a bare column.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Convenience constructor for a qualified column.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.into()),
            name: name.into(),
        }
    }

    /// Convenience constructor for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Convenience constructor for a binary expression.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// A short display name used for unaliased select-list columns.
    pub fn display_name(&self) -> String {
        match self {
            Expr::Column { name, .. } => name.clone(),
            Expr::Literal(v) => v.to_sql_literal(),
            Expr::Function { name, .. } => {
                format!("{}(...)", name.to_ascii_lowercase())
            }
            Expr::CountStar => "count(*)".into(),
            Expr::Cast { expr, .. } => expr.display_name(),
            _ => "expr".into(),
        }
    }

    /// Does this expression (transitively) contain an aggregate call?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::CountStar => true,
            Expr::Function { name, args, .. } => {
                is_aggregate_name(name) || args.iter().any(Expr::contains_aggregate)
            }
            Expr::Binary { lhs, rhs, .. } => lhs.contains_aggregate() || rhs.contains_aggregate(),
            Expr::Unary { operand, .. } => operand.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => {
                operand.as_deref().is_some_and(Expr::contains_aggregate)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_branch.as_deref().is_some_and(Expr::contains_aggregate)
            }
            Expr::Cast { expr, .. } => expr.contains_aggregate(),
            Expr::Literal(_)
            | Expr::Column { .. }
            | Expr::ScalarSubquery(_)
            | Expr::Exists { .. } => false,
        }
    }
}

/// Is `name` one of the built-in aggregate functions?
pub fn is_aggregate_name(name: &str) -> bool {
    matches!(
        name.to_ascii_uppercase().as_str(),
        "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" | "GROUP_CONCAT" | "TOTAL"
    )
}

/// CREATE TABLE statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTableStmt {
    /// New table name.
    pub name: String,
    /// `IF NOT EXISTS` given?
    pub if_not_exists: bool,
    /// Column definitions.
    pub columns: Vec<ColumnDef>,
}

/// One column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared affinity.
    pub dtype: DataType,
    /// NOT NULL constraint?
    pub not_null: bool,
    /// PRIMARY KEY constraint?
    pub primary_key: bool,
}

/// INSERT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Optional explicit column list.
    pub columns: Option<Vec<String>>,
    /// Rows of value expressions.
    pub rows: Vec<Vec<Expr>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_detection_descends() {
        let e = Expr::binary(
            BinOp::Add,
            Expr::lit(1),
            Expr::Function {
                name: "SUM".into(),
                args: vec![Expr::col("x")],
                distinct: false,
            },
        );
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        assert!(Expr::CountStar.contains_aggregate());
    }

    #[test]
    fn aggregate_names() {
        assert!(is_aggregate_name("count"));
        assert!(is_aggregate_name("AVG"));
        assert!(!is_aggregate_name("lower"));
    }

    #[test]
    fn display_names() {
        assert_eq!(Expr::col("x").display_name(), "x");
        assert_eq!(Expr::CountStar.display_name(), "count(*)");
        assert_eq!(Expr::lit(3).display_name(), "3");
    }

    #[test]
    fn table_ref_visible_name() {
        let t = TableRef::Table {
            name: "schools".into(),
            alias: Some("s".into()),
        };
        assert_eq!(t.visible_name(), "s");
        let t2 = TableRef::Table {
            name: "schools".into(),
            alias: None,
        };
        assert_eq!(t2.visible_name(), "schools");
    }
}
