//! Minimal CSV parsing and loading (RFC-4180-ish, from scratch).
//!
//! Supports quoted fields with embedded commas/newlines and `""` escapes.
//! Types are inferred per column (integer → float → text) when no schema
//! is supplied.

use crate::error::{SqlError, SqlResult};
use crate::schema::{Column, DataType, Schema};
use crate::table::Table;
use crate::value::Value;

/// Parse CSV text into records of string fields.
pub fn parse_csv(text: &str) -> SqlResult<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => {
                    if !field.is_empty() {
                        return Err(SqlError::Parse(
                            "unexpected quote inside unquoted CSV field".into(),
                        ));
                    }
                    in_quotes = true;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {} // tolerate CRLF
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(SqlError::Parse("unterminated quoted CSV field".into()));
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Infer a column type from sample string values (empty = NULL ignored).
fn infer_type(values: &[&str]) -> DataType {
    let mut all_int = true;
    let mut all_num = true;
    let mut saw_any = false;
    for v in values {
        if v.is_empty() {
            continue;
        }
        saw_any = true;
        if v.parse::<i64>().is_err() {
            all_int = false;
        }
        if v.parse::<f64>().is_err() {
            all_num = false;
        }
    }
    if !saw_any {
        DataType::Text
    } else if all_int {
        DataType::Integer
    } else if all_num {
        DataType::Real
    } else {
        DataType::Text
    }
}

/// Build a table from CSV text whose first record is the header.
/// Column types are inferred from the data.
pub fn table_from_csv(name: &str, text: &str) -> SqlResult<Table> {
    let records = parse_csv(text)?;
    let mut iter = records.into_iter();
    let header = iter
        .next()
        .ok_or_else(|| SqlError::Parse("CSV must contain a header record".into()))?;
    let data: Vec<Vec<String>> = iter.collect();

    let mut columns = Vec::with_capacity(header.len());
    for (i, h) in header.iter().enumerate() {
        let samples: Vec<&str> = data
            .iter()
            .filter_map(|r| r.get(i).map(String::as_str))
            .collect();
        columns.push(Column::new(h.trim(), infer_type(&samples)));
    }
    let schema = Schema::new(columns)?;
    let mut table = Table::new(name, schema);
    for (line, record) in data.iter().enumerate() {
        if record.len() != header.len() {
            return Err(SqlError::Parse(format!(
                "CSV record {} has {} fields, expected {}",
                line + 2,
                record.len(),
                header.len()
            )));
        }
        let row: Vec<Value> = record
            .iter()
            .map(|s| {
                if s.is_empty() {
                    Value::Null
                } else {
                    Value::text(s.clone())
                }
            })
            .collect();
        table.insert(row)?; // schema affinity coerces numerics
    }
    Ok(table)
}

/// Serialize a table back to CSV (header + rows); NULL becomes empty.
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<String> = table
        .schema()
        .columns()
        .iter()
        .map(|c| escape_field(&c.name))
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in table.rows() {
        let fields: Vec<String> = row
            .iter()
            .map(|v| {
                if v.is_null() {
                    String::new()
                } else {
                    escape_field(&v.to_string())
                }
            })
            .collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn escape_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_parse() {
        let recs = parse_csv("a,b,c\n1,2,3\n").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], vec!["1", "2", "3"]);
    }

    #[test]
    fn quoted_fields() {
        let recs = parse_csv("name,quote\nAlice,\"said \"\"hi\"\", then left\"\n").unwrap();
        assert_eq!(recs[1][1], "said \"hi\", then left");
        let recs = parse_csv("a\n\"multi\nline\"\n").unwrap();
        assert_eq!(recs[1][0], "multi\nline");
    }

    #[test]
    fn missing_trailing_newline_and_crlf() {
        let recs = parse_csv("a,b\r\n1,2").unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], vec!["1", "2"]);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_csv("a\n\"open").is_err());
        assert!(parse_csv("a\nx\"y\n").is_err());
    }

    #[test]
    fn table_with_inference() {
        let t = table_from_csv("t", "id,score,name\n1,2.5,alpha\n2,3.5,beta\n,,\n").unwrap();
        assert_eq!(t.schema().column(0).dtype, DataType::Integer);
        assert_eq!(t.schema().column(1).dtype, DataType::Real);
        assert_eq!(t.schema().column(2).dtype, DataType::Text);
        assert_eq!(t.len(), 3);
        assert_eq!(t.row(0)[0], Value::Int(1));
        assert!(t.row(2)[0].is_null());
    }

    #[test]
    fn round_trip() {
        let csv = "id,name\n1,\"a,b\"\n2,plain\n";
        let t = table_from_csv("t", csv).unwrap();
        let back = table_to_csv(&t);
        let t2 = table_from_csv("t", &back).unwrap();
        assert_eq!(t.rows(), t2.rows());
    }

    #[test]
    fn ragged_record_rejected() {
        assert!(table_from_csv("t", "a,b\n1\n").is_err());
    }
}
