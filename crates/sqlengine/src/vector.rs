//! Vectorized expression kernels over [`Batch`]es.
//!
//! Two entry points:
//!
//! - [`eval_column`]: evaluate an expression for every row of a batch,
//!   producing an owned [`ColumnData`].
//! - [`eval_pred_mask`]: evaluate an expression as a three-valued
//!   predicate, producing one `Option<bool>` (truthiness) per row.
//!
//! Both use typed fast paths where the expression shape allows
//! (column/literal comparisons over `Int`/`Float`/`Text` columns run as
//! tight loops over the typed vectors) and otherwise fall back to
//! row-at-a-time [`BoundExpr::eval_ctx`] over a *scratch row*: a
//! reusable `Vec<Value>` where only the columns the expression actually
//! references are filled in. The scratch row never materializes the
//! full input — the chunked operators stay columnar even for complex
//! expressions (correlated subqueries, UDFs, CASE).
//!
//! Semantics are defined by the row-at-a-time path: every fast path
//! must produce exactly what `eval_ctx` + [`Value::total_cmp`] would.
//! `AND`/`OR` mirror the serial executor's short-circuit rule — the
//! right side is only evaluated on rows where the left side did not
//! already decide the outcome — so error propagation matches too.

use crate::ast::BinOp;
use crate::chunk::{Batch, ColumnData};
use crate::error::SqlResult;
use crate::expr::{BoundExpr, EvalCtx};
use crate::value::Value;
use std::cmp::Ordering;

/// Evaluate `expr` for every row of `batch` into an owned column.
pub fn eval_column(expr: &BoundExpr, batch: &Batch, ctx: &EvalCtx<'_>) -> SqlResult<ColumnData> {
    match expr {
        BoundExpr::ColumnRef(i) => Ok(batch.gather_column(*i)),
        BoundExpr::Literal(v) => Ok(ColumnData::broadcast(v, batch.len())),
        BoundExpr::Binary { op, lhs, rhs }
            if is_cmp(*op) && operand_shape(lhs).is_some() && operand_shape(rhs).is_some() =>
        {
            let mask = cmp_mask(*op, lhs, rhs, batch)?;
            Ok(mask_to_column(&mask))
        }
        _ => fallback_column(expr, batch, ctx),
    }
}

/// Evaluate `expr` as a predicate: per-row three-valued truthiness.
pub fn eval_pred_mask(
    expr: &BoundExpr,
    batch: &Batch,
    ctx: &EvalCtx<'_>,
) -> SqlResult<Vec<Option<bool>>> {
    match expr {
        BoundExpr::Binary { op, lhs, rhs } if *op == BinOp::And || *op == BinOp::Or => {
            // Mirror the serial short-circuit: AND skips the right side
            // where the left is definite false; OR where it is definite
            // true. Rows outside the re-evaluated subset keep the
            // short-circuited result.
            let l = eval_pred_mask(lhs, batch, ctx)?;
            let skip_on = Some(*op == BinOp::Or);
            let retry: Vec<u32> = l
                .iter()
                .enumerate()
                .filter(|(_, v)| **v != skip_on)
                .map(|(i, _)| i as u32)
                .collect();
            let mut out: Vec<Option<bool>> = l
                .iter()
                .map(|v| if *v == skip_on { skip_on } else { None })
                .collect();
            if !retry.is_empty() {
                let sub = batch.narrow(&retry);
                let r = eval_pred_mask(rhs, &sub, ctx)?;
                for (slot, (lv, rv)) in retry
                    .iter()
                    .map(|&i| i as usize)
                    .zip(retry.iter().map(|&i| l[i as usize]).zip(r))
                {
                    out[slot] = if *op == BinOp::And {
                        match (lv, rv) {
                            (_, Some(false)) => Some(false),
                            (Some(true), Some(true)) => Some(true),
                            _ => None,
                        }
                    } else {
                        match (lv, rv) {
                            (_, Some(true)) => Some(true),
                            (Some(false), Some(false)) => Some(false),
                            _ => None,
                        }
                    };
                }
            }
            Ok(out)
        }
        BoundExpr::Binary { op, lhs, rhs }
            if is_cmp(*op) && operand_shape(lhs).is_some() && operand_shape(rhs).is_some() =>
        {
            cmp_mask(*op, lhs, rhs, batch)
        }
        BoundExpr::Unary {
            op: crate::ast::UnOp::Not,
            operand,
        } => {
            let m = eval_pred_mask(operand, batch, ctx)?;
            Ok(m.into_iter().map(|v| v.map(|b| !b)).collect())
        }
        BoundExpr::IsNull { expr, negated } if matches!(**expr, BoundExpr::ColumnRef(_)) => {
            let BoundExpr::ColumnRef(c) = **expr else {
                unreachable!("guarded by the match arm");
            };
            Ok((0..batch.len())
                .map(|i| Some(batch.is_null(i, c) != *negated))
                .collect())
        }
        _ => {
            let col = eval_column(expr, batch, ctx)?;
            Ok((0..col.len())
                .map(|i| col.value_at(i).truthiness())
                .collect())
        }
    }
}

fn is_cmp(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
    )
}

/// Operand shapes the comparison kernel accepts without a scratch row.
enum Operand<'a> {
    Col(usize),
    Lit(&'a Value),
}

fn operand_shape(e: &BoundExpr) -> Option<Operand<'_>> {
    match e {
        BoundExpr::ColumnRef(i) => Some(Operand::Col(*i)),
        BoundExpr::Literal(v) => Some(Operand::Lit(v)),
        _ => None,
    }
}

fn ord_matches(op: BinOp, o: Ordering) -> bool {
    match op {
        BinOp::Eq => o == Ordering::Equal,
        BinOp::NotEq => o != Ordering::Equal,
        BinOp::Lt => o == Ordering::Less,
        BinOp::LtEq => o != Ordering::Greater,
        BinOp::Gt => o == Ordering::Greater,
        BinOp::GtEq => o != Ordering::Less,
        _ => unreachable!("comparison kernel called with non-comparison op"),
    }
}

/// Comparison kernel over column/literal operands. NULL on either side
/// yields `None`, matching `Value::sql_cmp`.
fn cmp_mask(
    op: BinOp,
    lhs: &BoundExpr,
    rhs: &BoundExpr,
    batch: &Batch,
) -> SqlResult<Vec<Option<bool>>> {
    let (Some(l), Some(r)) = (operand_shape(lhs), operand_shape(rhs)) else {
        unreachable!("cmp_mask callers check operand shapes");
    };
    // Typed fast path: column vs non-null literal over a typed column.
    if let (Operand::Col(c), Operand::Lit(lit)) = (&l, &r) {
        if let Some(mask) = typed_col_lit_cmp(op, batch, *c, lit, false) {
            return Ok(mask);
        }
    }
    if let (Operand::Lit(lit), Operand::Col(c)) = (&l, &r) {
        if let Some(mask) = typed_col_lit_cmp(op, batch, *c, lit, true) {
            return Ok(mask);
        }
    }
    // General path: exact Value-level comparison per row (no scratch
    // rows — operands are at most single columns).
    let n = batch.len();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let a = match &l {
            Operand::Col(c) => batch.value_at(i, *c),
            Operand::Lit(v) => (*v).clone(),
        };
        let b = match &r {
            Operand::Col(c) => batch.value_at(i, *c),
            Operand::Lit(v) => (*v).clone(),
        };
        out.push(a.sql_cmp(&b).map(|o| ord_matches(op, o)));
    }
    Ok(out)
}

/// Tight typed loops for `col <op> literal` (or reversed). Returns
/// `None` when the column/literal pairing has no specialized kernel.
fn typed_col_lit_cmp(
    op: BinOp,
    batch: &Batch,
    col: usize,
    lit: &Value,
    reversed: bool,
) -> Option<Vec<Option<bool>>> {
    if lit.is_null() {
        // NULL literal: every comparison is NULL.
        return Some(vec![None; batch.len()]);
    }
    let column = batch.data.column(col);
    let test = |o: Ordering| ord_matches(op, if reversed { o.reverse() } else { o });
    let mut out = Vec::with_capacity(batch.len());
    match (column, lit) {
        (ColumnData::Int { values, validity }, Value::Int(b)) => {
            batch_for_each(batch, |i| {
                out.push(validity[i].then(|| test(values[i].cmp(b))));
            });
        }
        (ColumnData::Int { values, validity }, Value::Float(b)) => {
            batch_for_each(batch, |i| {
                out.push(validity[i].then(|| test((values[i] as f64).total_cmp(b))));
            });
        }
        (ColumnData::Float { values, validity }, Value::Int(b)) => {
            let b = *b as f64;
            batch_for_each(batch, |i| {
                out.push(validity[i].then(|| test(values[i].total_cmp(&b))));
            });
        }
        (ColumnData::Float { values, validity }, Value::Float(b)) => {
            batch_for_each(batch, |i| {
                out.push(validity[i].then(|| test(values[i].total_cmp(b))));
            });
        }
        (ColumnData::Text { values, validity }, Value::Text(b)) => {
            batch_for_each(batch, |i| {
                out.push(validity[i].then(|| test(values[i].as_str().cmp(b.as_str()))));
            });
        }
        // Cross-rank (number vs text): rank ordering is constant, but
        // route through the general path to keep this kernel small.
        _ => return None,
    }
    Some(out)
}

/// Visit backing-chunk row ids of a batch in output order.
fn batch_for_each(batch: &Batch, mut f: impl FnMut(usize)) {
    match &batch.rows {
        crate::chunk::Rows::Range(s, e) => {
            for i in *s..*e {
                f(i);
            }
        }
        crate::chunk::Rows::Ids(ids) => {
            for &i in ids {
                f(i as usize);
            }
        }
    }
}

/// SQL booleans are integers (`Value::from(bool)`); NULL stays NULL.
fn mask_to_column(mask: &[Option<bool>]) -> ColumnData {
    ColumnData::Int {
        values: mask.iter().map(|v| i64::from(v.unwrap_or(false))).collect(),
        validity: mask.iter().map(Option::is_some).collect(),
    }
}

/// Row-at-a-time fallback over a scratch row holding only the columns
/// `expr` references.
fn fallback_column(expr: &BoundExpr, batch: &Batch, ctx: &EvalCtx<'_>) -> SqlResult<ColumnData> {
    let mut referenced = std::collections::BTreeSet::new();
    expr.referenced_columns(&mut referenced);
    let width = batch.width();
    let mut scratch: Vec<Value> = vec![Value::Null; width];
    let mut vals = Vec::with_capacity(batch.len());
    for i in 0..batch.len() {
        for &c in &referenced {
            if c < width {
                scratch[c] = batch.value_at(i, c);
            }
        }
        vals.push(expr.eval_ctx(&scratch, ctx)?);
    }
    Ok(ColumnData::from_values(vals))
}

/// Evaluate a filter predicate: view-local indices of surviving rows
/// (rows whose truthiness is definite true, SQL WHERE semantics).
pub fn eval_filter(expr: &BoundExpr, batch: &Batch, ctx: &EvalCtx<'_>) -> SqlResult<Vec<u32>> {
    let mask = eval_pred_mask(expr, batch, ctx)?;
    Ok(mask
        .iter()
        .enumerate()
        .filter(|(_, v)| **v == Some(true))
        .map(|(i, _)| i as u32)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::Chunk;
    use crate::schema::Row;

    fn batch() -> Batch {
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::Float(1.5), Value::text("a")],
            vec![Value::Int(5), Value::Null, Value::text("b")],
            vec![Value::Null, Value::Float(-2.0), Value::Null],
            vec![Value::Int(3), Value::Float(9.0), Value::text("a")],
        ];
        Batch::owned(Chunk::from_rows(3, &rows))
    }

    fn col(i: usize) -> BoundExpr {
        BoundExpr::ColumnRef(i)
    }

    fn lit(v: impl Into<Value>) -> BoundExpr {
        BoundExpr::Literal(v.into())
    }

    fn bin(op: BinOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
        }
    }

    /// Every kernel must match row-at-a-time eval exactly.
    fn assert_matches_row_path(expr: &BoundExpr, b: &Batch) {
        let ctx = EvalCtx::default();
        let col = eval_column(expr, b, &ctx).unwrap();
        let rows = b.to_rows();
        for (i, row) in rows.iter().enumerate() {
            let want = expr.eval_ctx(row, &ctx).unwrap();
            assert_eq!(
                format!("{:?}", col.value_at(i)),
                format!("{want:?}"),
                "row {i} of {expr:?}"
            );
        }
        let mask = eval_pred_mask(expr, b, &ctx).unwrap();
        for (i, row) in rows.iter().enumerate() {
            let want = expr.eval_ctx(row, &ctx).unwrap().truthiness();
            assert_eq!(mask[i], want, "mask row {i} of {expr:?}");
        }
    }

    #[test]
    fn typed_comparisons_match_row_path() {
        let b = batch();
        for op in [
            BinOp::Eq,
            BinOp::NotEq,
            BinOp::Lt,
            BinOp::LtEq,
            BinOp::Gt,
            BinOp::GtEq,
        ] {
            assert_matches_row_path(&bin(op, col(0), lit(3)), &b);
            assert_matches_row_path(&bin(op, col(0), lit(2.5)), &b);
            assert_matches_row_path(&bin(op, col(1), lit(1.5)), &b);
            assert_matches_row_path(&bin(op, col(1), lit(2)), &b);
            assert_matches_row_path(&bin(op, col(2), lit("a")), &b);
            assert_matches_row_path(&bin(op, lit(3), col(0)), &b);
            // cross-rank: numeric column vs text literal
            assert_matches_row_path(&bin(op, col(0), lit("a")), &b);
            // column vs column
            assert_matches_row_path(&bin(op, col(0), col(1)), &b);
            // NULL literal
            assert_matches_row_path(&bin(op, col(0), lit(Value::Null)), &b);
        }
    }

    #[test]
    fn and_or_short_circuit_matches_row_path() {
        let b = batch();
        let p = bin(
            BinOp::And,
            bin(BinOp::Gt, col(0), lit(1)),
            bin(BinOp::Lt, col(1), lit(10.0)),
        );
        assert_matches_row_path(&p, &b);
        let q = bin(
            BinOp::Or,
            bin(BinOp::Gt, col(0), lit(4)),
            bin(BinOp::Eq, col(2), lit("a")),
        );
        assert_matches_row_path(&q, &b);
        // NULL-involving combinations
        let r = bin(BinOp::Or, bin(BinOp::Eq, col(1), lit(0.0)), col(0));
        assert_matches_row_path(&r, &b);
    }

    #[test]
    fn fallback_covers_complex_exprs() {
        let b = batch();
        let e = BoundExpr::Case {
            operand: None,
            branches: vec![(bin(BinOp::Gt, col(0), lit(2)), lit("big"))],
            else_branch: Some(Box::new(lit("small"))),
        };
        assert_matches_row_path(&e, &b);
        let arith = bin(BinOp::Add, col(0), bin(BinOp::Mul, col(1), lit(2)));
        assert_matches_row_path(&arith, &b);
    }

    #[test]
    fn is_null_kernel() {
        let b = batch();
        assert_matches_row_path(
            &BoundExpr::IsNull {
                expr: Box::new(col(1)),
                negated: false,
            },
            &b,
        );
        assert_matches_row_path(
            &BoundExpr::IsNull {
                expr: Box::new(col(1)),
                negated: true,
            },
            &b,
        );
    }

    #[test]
    fn filter_selects_definite_true_rows() {
        let b = batch();
        let sel = eval_filter(&bin(BinOp::Gt, col(0), lit(1)), &b, &EvalCtx::default()).unwrap();
        assert_eq!(sel, vec![1, 3]);
    }
}
