//! Error types for the SQL engine.

use std::fmt;

/// All errors produced by the SQL engine.
///
/// Each variant carries a human-readable message describing the failing
/// construct, mirroring the error surface a driver would expose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The tokenizer found a character sequence that is not valid SQL.
    Lex(String),
    /// The parser found a token sequence that is not valid SQL.
    Parse(String),
    /// Name resolution failed (unknown table, column, or function).
    Binding(String),
    /// A value had the wrong type for the requested operation.
    Type(String),
    /// Runtime evaluation failed (division by zero, bad cast, ...).
    Eval(String),
    /// Catalog-level failure (duplicate table, missing table, arity mismatch).
    Catalog(String),
    /// A user-defined function reported an error.
    Udf(String),
    /// The statement is recognized but not supported by this engine.
    Unsupported(String),
}

impl SqlError {
    /// The error category as a static string, useful for test assertions.
    pub fn category(&self) -> &'static str {
        match self {
            SqlError::Lex(_) => "lex",
            SqlError::Parse(_) => "parse",
            SqlError::Binding(_) => "binding",
            SqlError::Type(_) => "type",
            SqlError::Eval(_) => "eval",
            SqlError::Catalog(_) => "catalog",
            SqlError::Udf(_) => "udf",
            SqlError::Unsupported(_) => "unsupported",
        }
    }

    /// The embedded message.
    pub fn message(&self) -> &str {
        match self {
            SqlError::Lex(m)
            | SqlError::Parse(m)
            | SqlError::Binding(m)
            | SqlError::Type(m)
            | SqlError::Eval(m)
            | SqlError::Catalog(m)
            | SqlError::Udf(m)
            | SqlError::Unsupported(m) => m,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.category(), self.message())
    }
}

impl std::error::Error for SqlError {}

/// Convenience alias used across the engine.
pub type SqlResult<T> = Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = SqlError::Parse("unexpected token `FROM`".into());
        assert_eq!(e.to_string(), "parse error: unexpected token `FROM`");
        assert_eq!(e.category(), "parse");
        assert_eq!(e.message(), "unexpected token `FROM`");
    }

    #[test]
    fn categories_are_distinct() {
        let variants = [
            SqlError::Lex(String::new()),
            SqlError::Parse(String::new()),
            SqlError::Binding(String::new()),
            SqlError::Type(String::new()),
            SqlError::Eval(String::new()),
            SqlError::Catalog(String::new()),
            SqlError::Udf(String::new()),
            SqlError::Unsupported(String::new()),
        ];
        let mut cats: Vec<_> = variants.iter().map(|v| v.category()).collect();
        cats.sort_unstable();
        cats.dedup();
        assert_eq!(cats.len(), variants.len());
    }
}
