//! The SemPlan IR: semantic plan nodes unifying relational computation
//! with LM-powered operators (the paper's §2 "declarative pipelines of
//! relational and semantic operators").
//!
//! A [`SemNode`] tree is a *data-only* description of a TAG pipeline:
//! exact predicates and sort/cuts that run on the data system, and
//! semantic operators (`sem_filter`, `sem_topk`, `sem_agg`, ...) whose
//! execution is delegated to the semantic-operator runtime through the
//! [`SemDelegate`] trait. Keeping the nodes free of closures and LM
//! handles means plans can live in the [plan cache](crate::PlanCache),
//! render through `EXPLAIN SEMPLAN`, and be rewritten by the optimizer
//! rules in [`crate::semopt`] — exactly like relational plans.
//!
//! The executor ([`execute_sem`]) walks the tree bottom-up, threading an
//! optional [`PlanProfiler`] so every node records rows in/out, elapsed
//! wall-clock time, and the LM calls/tokens it caused (via
//! [`SemDelegate::lm_snapshot`] deltas).

use crate::profile::PlanProfiler;
use crate::value::Value;
use std::fmt::Write as _;

/// A data-only mirror of the LM layer's semantic claims. The SQL layer
/// sits below the LM crates, so claims are carried structurally here and
/// converted back to prompt-level claims by the delegate.
#[derive(Debug, Clone, PartialEq)]
pub enum SemClaimSpec {
    /// Value is a city in the given region.
    CityInRegion {
        /// Region name.
        region: String,
    },
    /// Value is a film considered a classic.
    ClassicMovie,
    /// Value is an EU member country.
    EuCountry,
    /// Value is an F1 circuit on the given continent.
    CircuitInContinent {
        /// Continent name.
        continent: String,
    },
    /// Value is a company in the given business vertical.
    CompanyInVertical {
        /// Vertical name.
        vertical: String,
    },
    /// Value (a height) is greater than the person's height.
    HeightTallerThan {
        /// Person to compare against.
        person: String,
    },
    /// Value (text) exhibits the named semantic property
    /// ("positive", "sarcastic", ...).
    Property {
        /// The property word.
        word: String,
    },
}

impl SemClaimSpec {
    fn describe(&self) -> String {
        match self {
            SemClaimSpec::CityInRegion { region } => format!("city in {region}"),
            SemClaimSpec::ClassicMovie => "classic movie".to_owned(),
            SemClaimSpec::EuCountry => "EU country".to_owned(),
            SemClaimSpec::CircuitInContinent { continent } => {
                format!("circuit in {continent}")
            }
            SemClaimSpec::CompanyInVertical { vertical } => {
                format!("company in {vertical}")
            }
            SemClaimSpec::HeightTallerThan { person } => {
                format!("taller than {person}")
            }
            SemClaimSpec::Property { word } => format!("property:{word}"),
        }
    }
}

/// An exact (non-semantic) predicate evaluated with frame semantics
/// (lenient numeric coercion, case-insensitive text equality) — the
/// comparisons the hand-written pipelines run on the data system.
#[derive(Debug, Clone, PartialEq)]
pub enum SemPredicate {
    /// Numeric comparison `attr > value` / `attr < value`.
    NumCmp {
        /// Column name.
        attr: String,
        /// True for `>`, false for `<`.
        over: bool,
        /// Comparison constant.
        value: f64,
    },
    /// Case-insensitive text equality with numeric fallback.
    TextEq {
        /// Column name.
        attr: String,
        /// Comparison value.
        value: String,
    },
    /// Case-insensitive text equality on the first existing column of
    /// `columns` (schema-candidate resolution, no numeric fallback).
    TextEqAny {
        /// Column-name candidates, tried in order.
        columns: Vec<String>,
        /// Comparison value.
        value: String,
    },
}

impl SemPredicate {
    fn describe(&self) -> String {
        match self {
            SemPredicate::NumCmp { attr, over, value } => {
                format!("{attr} {} {value}", if *over { ">" } else { "<" })
            }
            SemPredicate::TextEq { attr, value } => format!("{attr} = '{value}'"),
            SemPredicate::TextEqAny { columns, value } => {
                format!("{} = '{value}'", columns.join("|"))
            }
        }
    }
}

/// An exact sort + head cut (`ORDER BY sort_by LIMIT k`).
#[derive(Debug, Clone, PartialEq)]
pub struct CutSpec {
    /// Sort column.
    pub sort_by: String,
    /// Sort direction.
    pub descending: bool,
    /// Rows kept.
    pub k: usize,
}

/// Which phrasing a [`SemNode::Retrieve`] uses for its trace span and
/// annotation (kept distinct so traces stay identical to the
/// hand-rolled baselines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrieveKind {
    /// RAG-style final retrieval ("row embeddings", `k`).
    Rows,
    /// Rerank-style candidate pool ("candidate pool", `pool`).
    Candidates,
}

/// Prompt format of a [`SemNode::Generate`] node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenFormat {
    /// The list-answer prompt.
    List,
    /// The free-form prompt.
    Free,
    /// Free-form, falling back to hierarchical `sem_agg` when the
    /// rendered prompt exceeds the model's context window.
    FreeOrAgg,
}

/// Pipeline stage of a plan node — the taxonomy `tag-trace` spans,
/// `trace-report` tables, and the `tag-serve` pipeline derive from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemStage {
    /// Exact computation + row-transforming semantic operators.
    Exec,
    /// Embedding retrieval.
    Retrieve,
    /// LM relevance scoring / ordering between retrieval and generation.
    Rerank,
    /// Text-producing LM work.
    Gen,
}

impl SemStage {
    /// Stable wire token (matches `tag_trace::Stage::as_str`).
    pub fn as_str(self) -> &'static str {
        match self {
            SemStage::Exec => "exec",
            SemStage::Retrieve => "retrieve",
            SemStage::Rerank => "rerank",
            SemStage::Gen => "gen",
        }
    }
}

/// One node of a semantic plan.
#[derive(Debug, Clone, PartialEq)]
pub enum SemNode {
    /// Base scan of an entity table (`SELECT * FROM table` through the
    /// SQL engine, sharing its plan cache).
    Scan {
        /// Table name.
        table: String,
    },
    /// Materialized input rows (e.g. the result of LM-synthesized SQL).
    Input {
        /// Column names.
        columns: Vec<String>,
        /// Row values.
        rows: Vec<Vec<Value>>,
    },
    /// Exact predicate on the data system.
    Predicate {
        /// Input node.
        input: Box<SemNode>,
        /// The predicate.
        pred: SemPredicate,
    },
    /// Semantic filter: keep rows whose column value satisfies `claim`
    /// per the LM.
    SemFilter {
        /// Input node.
        input: Box<SemNode>,
        /// Column-name candidates (first existing wins when `resolve`).
        columns: Vec<String>,
        /// Resolve `columns` as schema candidates (hand-written
        /// pipelines' schema knowledge) vs use `columns[0]` directly.
        resolve: bool,
        /// The claim judged per value.
        claim: SemClaimSpec,
        /// Judge each *distinct* value once (the Appendix C rewrite)
        /// instead of row-wise.
        distinct: bool,
        /// When set, the exact cut that follows this filter has been
        /// fused in: sort first, judge values in sorted order, and stop
        /// as soon as `k` rows survive.
        early_stop: Option<CutSpec>,
    },
    /// Exact sort + head on the data system.
    Cut {
        /// Input node.
        input: Box<SemNode>,
        /// The sort/cut.
        cut: CutSpec,
    },
    /// Semantic top-k ordering by an LM-judged property (`sem_topk`).
    SemTopK {
        /// Input node.
        input: Box<SemNode>,
        /// Column ranked on.
        on_attr: String,
        /// Property word ("technical", ...).
        property: String,
        /// Rows kept, in ranked order.
        k: usize,
    },
    /// Hierarchical LM aggregation over the rows (`sem_agg`).
    SemAgg {
        /// Input node.
        input: Box<SemNode>,
        /// The aggregation instruction.
        request: String,
    },
    /// Per-row LM projection (`sem_map`): append a derived column.
    SemMap {
        /// Input node.
        input: Box<SemNode>,
        /// Column mapped over.
        on_attr: String,
        /// Mapping instruction.
        instruction: String,
        /// Name of the appended output column.
        out_column: String,
    },
    /// Semantic join (`sem_join`): keep left×right pairs the LM accepts.
    SemJoin {
        /// Left input.
        left: Box<SemNode>,
        /// Right input.
        right: Box<SemNode>,
        /// Left join column.
        left_on: String,
        /// Right join column.
        right_on: String,
        /// Property word for the pairwise claim.
        property: String,
    },
    /// Embedding retrieval over the row store (leaf).
    Retrieve {
        /// The retrieval query (the question text).
        query: String,
        /// Rows retrieved.
        k: usize,
        /// Span/annotation phrasing.
        kind: RetrieveKind,
    },
    /// LM relevance reranking of retrieved points.
    Rerank {
        /// Input node (retrieved points).
        input: Box<SemNode>,
        /// The question scored against.
        query: String,
        /// Points kept after reranking.
        keep: usize,
    },
    /// Final LM generation over the rows in context.
    Generate {
        /// Input node.
        input: Box<SemNode>,
        /// The question answered.
        request: String,
        /// Prompt format.
        format: GenFormat,
        /// Trace span name ("answer", "answer (no data)").
        span_name: String,
    },
}

impl SemNode {
    /// The node's pipeline stage (see [`SemStage`]).
    pub fn stage(&self) -> SemStage {
        match self {
            SemNode::Scan { .. }
            | SemNode::Input { .. }
            | SemNode::Predicate { .. }
            | SemNode::Cut { .. }
            | SemNode::SemFilter { .. }
            | SemNode::SemTopK { .. }
            | SemNode::SemMap { .. }
            | SemNode::SemJoin { .. } => SemStage::Exec,
            SemNode::Retrieve { .. } => SemStage::Retrieve,
            SemNode::Rerank { .. } => SemStage::Rerank,
            SemNode::SemAgg { .. } | SemNode::Generate { .. } => SemStage::Gen,
        }
    }

    /// One-line operator label (EXPLAIN vocabulary).
    pub fn label(&self) -> String {
        match self {
            SemNode::Scan { table } => format!("Scan {table}"),
            SemNode::Input { rows, .. } => format!("Input ({} rows)", rows.len()),
            SemNode::Predicate { pred, .. } => format!("Predicate {}", pred.describe()),
            SemNode::SemFilter {
                columns,
                claim,
                distinct,
                early_stop,
                ..
            } => {
                let mut s = format!("SemFilter {} [{}]", columns.join("|"), claim.describe());
                if *distinct {
                    s.push_str(" distinct");
                }
                if let Some(cut) = early_stop {
                    let _ = write!(
                        s,
                        " early_stop(sort={} {} k={})",
                        cut.sort_by,
                        if cut.descending { "desc" } else { "asc" },
                        cut.k
                    );
                }
                s
            }
            SemNode::Cut { cut, .. } => format!(
                "Cut sort={} {} k={}",
                cut.sort_by,
                if cut.descending { "desc" } else { "asc" },
                cut.k
            ),
            SemNode::SemTopK {
                on_attr,
                property,
                k,
                ..
            } => format!("SemTopK {on_attr} property={property} k={k}"),
            SemNode::SemAgg { .. } => "SemAgg".to_owned(),
            SemNode::SemMap {
                on_attr,
                out_column,
                ..
            } => format!("SemMap {on_attr} -> {out_column}"),
            SemNode::SemJoin {
                left_on,
                right_on,
                property,
                ..
            } => format!("SemJoin {left_on} x {right_on} property={property}"),
            SemNode::Retrieve { k, kind, .. } => format!(
                "Retrieve {}={k}",
                match kind {
                    RetrieveKind::Rows => "k",
                    RetrieveKind::Candidates => "pool",
                }
            ),
            SemNode::Rerank { keep, .. } => format!("Rerank keep={keep}"),
            SemNode::Generate { format, .. } => format!(
                "Generate {}",
                match format {
                    GenFormat::List => "list",
                    GenFormat::Free => "free",
                    GenFormat::FreeOrAgg => "free|agg",
                }
            ),
        }
    }

    /// Child nodes, in execution order.
    pub fn children(&self) -> Vec<&SemNode> {
        match self {
            SemNode::Scan { .. } | SemNode::Input { .. } | SemNode::Retrieve { .. } => vec![],
            SemNode::Predicate { input, .. }
            | SemNode::SemFilter { input, .. }
            | SemNode::Cut { input, .. }
            | SemNode::SemTopK { input, .. }
            | SemNode::SemAgg { input, .. }
            | SemNode::SemMap { input, .. }
            | SemNode::Rerank { input, .. }
            | SemNode::Generate { input, .. } => vec![input],
            SemNode::SemJoin { left, right, .. } => vec![left, right],
        }
    }

    /// Render the plan tree, root first, two-space indent per level, one
    /// `[stage]`-tagged line per node.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(0, &mut out);
        out
    }

    fn explain_into(&self, depth: usize, out: &mut String) {
        let _ = writeln!(
            out,
            "{}{}  [{}]",
            "  ".repeat(depth),
            self.label(),
            self.stage().as_str()
        );
        for child in self.children() {
            child.explain_into(depth + 1, out);
        }
    }
}

/// Tabular data flowing between semantic plan nodes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SemFrame {
    /// Column names.
    pub columns: Vec<String>,
    /// Row values.
    pub rows: Vec<Vec<Value>>,
}

impl SemFrame {
    /// A frame from columns + rows.
    pub fn new(columns: Vec<String>, rows: Vec<Vec<Value>>) -> Self {
        SemFrame { columns, rows }
    }
}

/// Cumulative LM cost counters, used as before/after snapshots for
/// per-node attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LmCost {
    /// Prompts that reached the model.
    pub calls: u64,
    /// Prompt tokens consumed.
    pub prompt_tokens: u64,
    /// Completion tokens produced.
    pub completion_tokens: u64,
}

impl LmCost {
    /// Saturating element-wise difference (`self - earlier`).
    pub fn since(self, earlier: LmCost) -> LmCost {
        LmCost {
            calls: self.calls.saturating_sub(earlier.calls),
            prompt_tokens: self.prompt_tokens.saturating_sub(earlier.prompt_tokens),
            completion_tokens: self
                .completion_tokens
                .saturating_sub(earlier.completion_tokens),
        }
    }

    /// Total tokens (prompt + completion).
    pub fn tokens(self) -> u64 {
        self.prompt_tokens + self.completion_tokens
    }
}

/// Executes individual semantic plan nodes. Implemented by the semantic
/// runtime (over `tag-semops` + the LM); the SQL layer stays free of LM
/// dependencies.
pub trait SemDelegate {
    /// Execute one node given its children's output frames (in
    /// [`SemNode::children`] order; empty for leaves). Implementations
    /// must not recurse into the node's children — the executor has
    /// already run them.
    fn exec_node(&self, node: &SemNode, inputs: Vec<SemFrame>) -> Result<SemFrame, String>;

    /// Current cumulative LM cost, read before/after each node for
    /// attribution. A delegate without metering may return the default.
    fn lm_snapshot(&self) -> LmCost {
        LmCost::default()
    }
}

/// Execute a semantic plan bottom-up through `delegate`.
pub fn execute_sem(root: &SemNode, delegate: &dyn SemDelegate) -> Result<SemFrame, String> {
    exec_sem_node(root, delegate, None)
}

/// [`execute_sem`] with per-node profiling: rows in/out, elapsed time,
/// and LM calls/tokens land in `profiler`.
pub fn execute_sem_profiled(
    root: &SemNode,
    delegate: &dyn SemDelegate,
    profiler: &PlanProfiler,
) -> Result<SemFrame, String> {
    exec_sem_node(root, delegate, Some(profiler))
}

fn exec_sem_node(
    node: &SemNode,
    delegate: &dyn SemDelegate,
    prof: Option<&PlanProfiler>,
) -> Result<SemFrame, String> {
    let token = prof.map(|p| p.enter(node.label()));
    let mut inputs = Vec::new();
    for child in node.children() {
        inputs.push(exec_sem_node(child, delegate, prof)?);
    }
    let before = prof.map(|_| delegate.lm_snapshot());
    let result = delegate.exec_node(node, inputs);
    if let (Some(p), Some(token)) = (prof, token) {
        let cost = before
            .map(|b| delegate.lm_snapshot().since(b))
            .unwrap_or_default();
        let rows_out = result.as_ref().map(|f| f.rows.len()).unwrap_or(0);
        p.exit_lm(token, rows_out, cost);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: usize) -> SemFrame {
        SemFrame::new(
            vec!["x".into()],
            (0..n).map(|i| vec![Value::Int(i as i64)]).collect(),
        )
    }

    /// A delegate that halves row counts and charges one LM call per
    /// semantic node.
    struct HalvingDelegate(std::cell::Cell<u64>);

    impl SemDelegate for HalvingDelegate {
        fn exec_node(&self, node: &SemNode, inputs: Vec<SemFrame>) -> Result<SemFrame, String> {
            match node {
                SemNode::Scan { .. } => Ok(frame(8)),
                SemNode::SemFilter { .. } => {
                    self.0.set(self.0.get() + 1);
                    let f = &inputs[0];
                    Ok(SemFrame::new(
                        f.columns.clone(),
                        f.rows[..f.rows.len() / 2].to_vec(),
                    ))
                }
                other => Err(format!("unexpected node {}", other.label())),
            }
        }

        fn lm_snapshot(&self) -> LmCost {
            LmCost {
                calls: self.0.get(),
                prompt_tokens: 10 * self.0.get(),
                completion_tokens: self.0.get(),
            }
        }
    }

    fn filter_over_scan() -> SemNode {
        SemNode::SemFilter {
            input: Box::new(SemNode::Scan { table: "t".into() }),
            columns: vec!["x".into()],
            resolve: true,
            claim: SemClaimSpec::EuCountry,
            distinct: false,
            early_stop: None,
        }
    }

    #[test]
    fn executes_bottom_up() {
        let d = HalvingDelegate(std::cell::Cell::new(0));
        let out = execute_sem(&filter_over_scan(), &d).unwrap();
        assert_eq!(out.rows.len(), 4);
    }

    #[test]
    fn profiler_attributes_rows_and_lm_cost() {
        let d = HalvingDelegate(std::cell::Cell::new(0));
        let p = PlanProfiler::new();
        execute_sem_profiled(&filter_over_scan(), &d, &p).unwrap();
        let nodes = p.nodes();
        assert_eq!(nodes.len(), 2);
        assert!(nodes[0].label.starts_with("SemFilter"));
        assert_eq!(nodes[0].rows_in, 8);
        assert_eq!(nodes[0].rows_out, 4);
        assert_eq!(nodes[0].lm_calls, 1, "filter charged one call");
        assert_eq!(nodes[0].lm_prompt_tokens, 10);
        assert_eq!(nodes[1].label, "Scan t");
        assert_eq!(nodes[1].lm_calls, 0, "scan is LM-free");
        let rendered = p.render();
        assert!(rendered.contains("lm_calls=1"), "{rendered}");
    }

    #[test]
    fn explain_renders_stages_and_indent() {
        let plan = SemNode::Generate {
            input: Box::new(SemNode::Rerank {
                input: Box::new(SemNode::Retrieve {
                    query: "q".into(),
                    k: 30,
                    kind: RetrieveKind::Candidates,
                }),
                query: "q".into(),
                keep: 10,
            }),
            request: "q".into(),
            format: GenFormat::List,
            span_name: "answer".into(),
        };
        let text = plan.explain();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("Generate list"), "{text}");
        assert!(lines[0].ends_with("[gen]"), "{text}");
        assert!(lines[1].starts_with("  Rerank keep=10"), "{text}");
        assert!(lines[1].ends_with("[rerank]"), "{text}");
        assert!(lines[2].starts_with("    Retrieve pool=30"), "{text}");
        assert!(lines[2].ends_with("[retrieve]"), "{text}");
    }

    #[test]
    fn errors_propagate_and_release_profiler() {
        let d = HalvingDelegate(std::cell::Cell::new(0));
        let p = PlanProfiler::new();
        let bad = SemNode::Cut {
            input: Box::new(SemNode::Scan { table: "t".into() }),
            cut: CutSpec {
                sort_by: "x".into(),
                descending: true,
                k: 1,
            },
        };
        assert!(execute_sem_profiled(&bad, &d, &p).is_err());
        assert_eq!(p.nodes().len(), 2, "profiler flushed on error");
    }

    #[test]
    fn stage_taxonomy() {
        assert_eq!(filter_over_scan().stage(), SemStage::Exec);
        assert_eq!(
            SemNode::Retrieve {
                query: "q".into(),
                k: 1,
                kind: RetrieveKind::Rows
            }
            .stage(),
            SemStage::Retrieve
        );
        assert_eq!(SemStage::Rerank.as_str(), "rerank");
    }
}
