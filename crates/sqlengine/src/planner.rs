//! Binding and planning: turns parsed statements into executable plans.
//!
//! The planner resolves names against the catalog, executes uncorrelated
//! subqueries eagerly (materializing them into literals / sets), embeds
//! *correlated* subqueries as per-row re-executed plans with outer-ref
//! placeholders (one level deep), detects aggregation, and assembles the
//! physical [`Plan`] tree. The optimizer (see [`crate::optimizer`]) then
//! rewrites the tree.

use crate::ast::{is_aggregate_name, Expr, Join, OrderKey, SelectItem, SelectStmt, TableRef};
use crate::catalog::Catalog;
use crate::error::{SqlError, SqlResult};
use crate::exec::execute;
use crate::expr::BoundExpr;
use crate::plan::{AggCall, AggFunc, Plan, SortKey};
use crate::udf::UdfRegistry;
use crate::value::Value;
use std::collections::HashSet;
use std::sync::Arc;

/// A visible column during binding: `(relation qualifier, column name)`.
#[derive(Debug, Clone)]
pub struct ScopeColumn {
    /// The relation's visible name (table name or alias), if any.
    pub qualifier: Option<String>,
    /// The column's name.
    pub name: String,
}

/// The set of columns visible to an expression.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    /// Columns in row order.
    pub columns: Vec<ScopeColumn>,
}

impl Scope {
    fn from_relation(qualifier: &str, names: &[String]) -> Scope {
        Scope {
            columns: names
                .iter()
                .map(|n| ScopeColumn {
                    qualifier: Some(qualifier.to_owned()),
                    name: n.clone(),
                })
                .collect(),
        }
    }

    fn extend(&mut self, other: Scope) {
        self.columns.extend(other.columns);
    }

    /// Like [`Self::resolve`] but returns `Ok(None)` when the column is
    /// simply absent (ambiguity is still an error) — used for falling
    /// back to an enclosing query's scope.
    fn try_resolve(&self, qualifier: Option<&str>, name: &str) -> SqlResult<Option<usize>> {
        match self.resolve(qualifier, name) {
            Ok(i) => Ok(Some(i)),
            Err(e) if e.message().contains("ambiguous") => Err(e),
            Err(_) => Ok(None),
        }
    }

    /// Resolve `[qualifier.]name` to a column position.
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> SqlResult<usize> {
        let mut matches = self.columns.iter().enumerate().filter(|(_, c)| {
            c.name.eq_ignore_ascii_case(name)
                && match qualifier {
                    None => true,
                    Some(q) => c
                        .qualifier
                        .as_deref()
                        .map(|cq| cq.eq_ignore_ascii_case(q))
                        .unwrap_or(false),
                }
        });
        let first = matches.next();
        let second = matches.next();
        match (first, second) {
            (Some((i, _)), None) => Ok(i),
            (Some(_), Some(_)) => Err(SqlError::Binding(format!(
                "ambiguous column reference {}{name}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
            (None, _) => Err(SqlError::Binding(format!(
                "no such column: {}{name}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default()
            ))),
        }
    }
}

/// Case-insensitive structural equality of AST expressions, used to match
/// GROUP BY expressions and duplicate aggregate calls. Qualifiers compare
/// equal when either side omits one.
fn ast_eq(a: &Expr, b: &Expr) -> bool {
    use Expr::*;
    match (a, b) {
        (Literal(x), Literal(y)) => x == y,
        (
            Column {
                qualifier: qa,
                name: na,
            },
            Column {
                qualifier: qb,
                name: nb,
            },
        ) => {
            na.eq_ignore_ascii_case(nb)
                && match (qa, qb) {
                    (Some(x), Some(y)) => x.eq_ignore_ascii_case(y),
                    _ => true,
                }
        }
        (
            Binary {
                op: oa,
                lhs: la,
                rhs: ra,
            },
            Binary {
                op: ob,
                lhs: lb,
                rhs: rb,
            },
        ) => oa == ob && ast_eq(la, lb) && ast_eq(ra, rb),
        (
            Unary {
                op: oa,
                operand: xa,
            },
            Unary {
                op: ob,
                operand: xb,
            },
        ) => oa == ob && ast_eq(xa, xb),
        (
            Function {
                name: na,
                args: aa,
                distinct: da,
            },
            Function {
                name: nb,
                args: ab,
                distinct: db,
            },
        ) => {
            na.eq_ignore_ascii_case(nb)
                && da == db
                && aa.len() == ab.len()
                && aa.iter().zip(ab).all(|(x, y)| ast_eq(x, y))
        }
        (CountStar, CountStar) => true,
        (
            Cast {
                expr: ea,
                dtype: ta,
            },
            Cast {
                expr: eb,
                dtype: tb,
            },
        ) => ta == tb && ast_eq(ea, eb),
        _ => false,
    }
}

/// A bound select list: expressions, output names, and the projection
/// index of each original item (`None` for wildcards, which expand).
type BoundSelectList = (Vec<BoundExpr>, Vec<String>, Vec<Option<usize>>);

/// Aggregate-rewrite context: maps GROUP BY expressions and aggregate
/// calls (as AST) to positions in the Aggregate node's output.
pub(crate) struct AggCtx<'a> {
    group_asts: &'a [Expr],
    agg_asts: &'a [Expr],
}

/// The planner. Holds references to the catalog (for name resolution and
/// eager subquery execution) and the UDF registry.
pub struct Planner<'a> {
    catalog: &'a Catalog,
    udfs: &'a UdfRegistry,
}

impl<'a> Planner<'a> {
    /// Create a planner over a catalog and UDF registry.
    pub fn new(catalog: &'a Catalog, udfs: &'a UdfRegistry) -> Self {
        Planner { catalog, udfs }
    }

    /// Plan a full SELECT statement.
    pub fn plan_select(&self, stmt: &SelectStmt) -> SqlResult<Plan> {
        self.plan_select_outer(stmt, None)
    }

    /// Plan a SELECT with an optional enclosing-query scope (correlated
    /// subqueries resolve unknown columns against it as outer refs).
    fn plan_select_outer(&self, stmt: &SelectStmt, outer: Option<&Scope>) -> SqlResult<Plan> {
        let (mut plan, scope) = self.plan_from(stmt, outer)?;

        // WHERE
        if let Some(pred) = &stmt.predicate {
            if pred.contains_aggregate() {
                return Err(SqlError::Binding(
                    "aggregate functions are not allowed in WHERE".into(),
                ));
            }
            let bound = self.bind_outer(pred, &scope, None, outer)?;
            plan = Plan::Filter {
                input: Box::new(plan),
                predicate: bound,
            };
        }

        let has_agg = !stmt.group_by.is_empty()
            || stmt
                .items
                .iter()
                .any(|i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate()))
            || stmt.having.as_ref().is_some_and(Expr::contains_aggregate)
            || stmt.order_by.iter().any(|k| k.expr.contains_aggregate());

        // Post-aggregation binding context.
        let (plan, bind_scope, agg_group_asts, agg_asts) = if has_agg {
            let (plan, group_asts, agg_asts, agg_scope) =
                self.plan_aggregate(plan, &scope, stmt, outer)?;
            (plan, agg_scope, group_asts, agg_asts)
        } else {
            if stmt.having.is_some() {
                return Err(SqlError::Binding(
                    "HAVING requires GROUP BY or aggregates".into(),
                ));
            }
            (plan, scope, Vec::new(), Vec::new())
        };
        let agg_ctx = if has_agg {
            Some(AggCtx {
                group_asts: &agg_group_asts,
                agg_asts: &agg_asts,
            })
        } else {
            None
        };
        let mut plan = plan;

        // HAVING
        if let Some(having) = &stmt.having {
            let bound = self.bind_outer(having, &bind_scope, agg_ctx.as_ref(), outer)?;
            plan = Plan::Filter {
                input: Box::new(plan),
                predicate: bound,
            };
        }

        // Select list
        let (proj_exprs, proj_names, item_proj) =
            self.bind_select_items(&stmt.items, &bind_scope, agg_ctx.as_ref(), has_agg, outer)?;

        // ORDER BY: resolve against output aliases / ordinals first, then
        // fall back to hidden expressions over the pre-projection scope.
        let mut sort_specs: Vec<(usize, bool)> = Vec::new(); // (proj index, desc)
        let mut hidden: Vec<BoundExpr> = Vec::new();
        for key in &stmt.order_by {
            let idx = self.resolve_order_key(
                key,
                &proj_names,
                &stmt.items,
                &item_proj,
                &bind_scope,
                agg_ctx.as_ref(),
                proj_exprs.len(),
                &mut hidden,
                outer,
            )?;
            sort_specs.push((idx, key.descending));
        }

        if stmt.distinct && !hidden.is_empty() {
            return Err(SqlError::Unsupported(
                "SELECT DISTINCT with ORDER BY over non-output expressions".into(),
            ));
        }

        let visible = proj_exprs.len();
        let mut all_exprs = proj_exprs;
        let mut all_names = proj_names;
        for (i, h) in hidden.into_iter().enumerate() {
            all_exprs.push(h);
            all_names.push(format!("__sort_{i}"));
        }

        plan = Plan::Project {
            input: Box::new(plan),
            exprs: all_exprs,
            columns: all_names.clone(),
        };

        if stmt.distinct {
            plan = Plan::Distinct {
                input: Box::new(plan),
            };
        }

        if !sort_specs.is_empty() {
            plan = Plan::Sort {
                input: Box::new(plan),
                keys: sort_specs
                    .into_iter()
                    .map(|(i, desc)| SortKey {
                        expr: BoundExpr::ColumnRef(i),
                        descending: desc,
                    })
                    .collect(),
            };
        }

        if all_names.len() > visible {
            // Strip hidden sort columns.
            plan = Plan::Project {
                input: Box::new(plan),
                exprs: (0..visible).map(BoundExpr::ColumnRef).collect(),
                columns: all_names[..visible].to_vec(),
            };
        }

        if stmt.limit.is_some() || stmt.offset.is_some() {
            plan = Plan::Limit {
                input: Box::new(plan),
                limit: stmt.limit,
                offset: stmt.offset.unwrap_or(0),
            };
        }
        Ok(plan)
    }

    /// Plan the FROM clause (base relation plus joins), returning the
    /// combined input plan and scope.
    fn plan_from(&self, stmt: &SelectStmt, outer: Option<&Scope>) -> SqlResult<(Plan, Scope)> {
        let Some(from) = &stmt.from else {
            // Table-less SELECT: a single empty row to project over.
            return Ok((
                Plan::Values {
                    columns: Vec::new(),
                    rows: vec![Vec::new()],
                },
                Scope::default(),
            ));
        };
        let (mut plan, mut scope) = self.plan_table_ref(from)?;
        let mut seen: HashSet<String> = HashSet::new();
        seen.insert(from.visible_name().to_ascii_uppercase());
        for Join { kind, table, on } in &stmt.joins {
            let vis = table.visible_name().to_ascii_uppercase();
            if !seen.insert(vis) {
                return Err(SqlError::Binding(format!(
                    "duplicate table name or alias {:?} in FROM (use AS to disambiguate)",
                    table.visible_name()
                )));
            }
            let (right_plan, right_scope) = self.plan_table_ref(table)?;
            let mut combined = scope.clone();
            combined.extend(right_scope);
            let bound_on = match on {
                Some(e) => {
                    if e.contains_aggregate() {
                        return Err(SqlError::Binding(
                            "aggregates are not allowed in JOIN conditions".into(),
                        ));
                    }
                    Some(self.bind_outer(e, &combined, None, outer)?)
                }
                None => None,
            };
            plan = Plan::NestedLoopJoin {
                left: Box::new(plan),
                right: Box::new(right_plan),
                kind: *kind,
                on: bound_on,
            };
            scope = combined;
        }
        Ok((plan, scope))
    }

    fn plan_table_ref(&self, table: &TableRef) -> SqlResult<(Plan, Scope)> {
        match table {
            TableRef::Table { name, alias } => {
                let t = self.catalog.table(name)?;
                let columns = t.schema().names();
                let vis = alias.as_deref().unwrap_or(name);
                let scope = Scope::from_relation(vis, &columns);
                Ok((
                    Plan::TableScan {
                        table: t.name().to_owned(),
                        columns,
                    },
                    scope,
                ))
            }
            TableRef::Subquery { query, alias } => {
                let plan = self.plan_select(query)?;
                let columns = plan.columns();
                let scope = Scope::from_relation(alias, &columns);
                Ok((plan, scope))
            }
        }
    }

    /// Build the Aggregate node. Returns (plan, group ASTs, agg ASTs,
    /// post-aggregate scope).
    fn plan_aggregate(
        &self,
        input: Plan,
        scope: &Scope,
        stmt: &SelectStmt,
        outer: Option<&Scope>,
    ) -> SqlResult<(Plan, Vec<Expr>, Vec<Expr>, Scope)> {
        // Gather the distinct aggregate calls appearing anywhere.
        let mut agg_asts: Vec<Expr> = Vec::new();
        let mut collect = |e: &Expr| collect_aggregates(e, &mut agg_asts);
        for item in &stmt.items {
            if let SelectItem::Expr { expr, .. } = item {
                collect(expr)?;
            }
        }
        if let Some(h) = &stmt.having {
            collect(h)?;
        }
        for k in &stmt.order_by {
            collect(&k.expr)?;
        }

        // Bind group expressions against the input scope.
        let mut group_bound = Vec::with_capacity(stmt.group_by.len());
        let mut group_names = Vec::with_capacity(stmt.group_by.len());
        for g in &stmt.group_by {
            if g.contains_aggregate() {
                return Err(SqlError::Binding(
                    "aggregate functions are not allowed in GROUP BY".into(),
                ));
            }
            group_bound.push(self.bind_outer(g, scope, None, outer)?);
            group_names.push(g.display_name());
        }

        // Bind aggregate arguments against the input scope.
        let mut aggs = Vec::with_capacity(agg_asts.len());
        for a in &agg_asts {
            let call = self.bind_agg_call(a, scope, outer)?;
            aggs.push(call);
        }

        // Post-aggregate scope: group columns keep their qualifier when
        // they are simple column references so `s.city` still resolves.
        let mut out_scope = Scope::default();
        for (g, name) in stmt.group_by.iter().zip(&group_names) {
            let qualifier = match g {
                Expr::Column { qualifier, .. } => qualifier.clone(),
                _ => None,
            };
            out_scope.columns.push(ScopeColumn {
                qualifier,
                name: name.clone(),
            });
        }
        for a in &aggs {
            out_scope.columns.push(ScopeColumn {
                qualifier: None,
                name: a.name.clone(),
            });
        }

        let plan = Plan::Aggregate {
            input: Box::new(input),
            group: group_bound,
            group_names,
            aggs,
        };
        Ok((plan, stmt.group_by.clone(), agg_asts, out_scope))
    }

    fn bind_agg_call(
        &self,
        ast: &Expr,
        scope: &Scope,
        outer: Option<&Scope>,
    ) -> SqlResult<AggCall> {
        match ast {
            Expr::CountStar => Ok(AggCall {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
                separator: ",".into(),
                name: "count(*)".into(),
            }),
            Expr::Function {
                name,
                args,
                distinct,
            } => {
                let func = AggFunc::parse(name).ok_or_else(|| {
                    SqlError::Binding(format!("{name} is not an aggregate function"))
                })?;
                let mut separator = ",".to_owned();
                let arg = match func {
                    AggFunc::GroupConcat => {
                        if args.is_empty() || args.len() > 2 {
                            return Err(SqlError::Binding(
                                "GROUP_CONCAT takes 1 or 2 arguments".into(),
                            ));
                        }
                        if let Some(sep) = args.get(1) {
                            match sep {
                                Expr::Literal(Value::Text(s)) => separator = s.clone(),
                                _ => {
                                    return Err(SqlError::Binding(
                                        "GROUP_CONCAT separator must be a string literal".into(),
                                    ))
                                }
                            }
                        }
                        Some(self.bind_outer(&args[0], scope, None, outer)?)
                    }
                    _ => {
                        if args.len() != 1 {
                            return Err(SqlError::Binding(format!(
                                "{name} takes exactly one argument"
                            )));
                        }
                        if args[0].contains_aggregate() {
                            return Err(SqlError::Binding(
                                "nested aggregate functions are not allowed".into(),
                            ));
                        }
                        Some(self.bind_outer(&args[0], scope, None, outer)?)
                    }
                };
                let display = format!(
                    "{}({}{})",
                    name.to_ascii_lowercase(),
                    if *distinct { "DISTINCT " } else { "" },
                    args.first().map(|a| a.display_name()).unwrap_or_default()
                );
                Ok(AggCall {
                    func,
                    arg,
                    distinct: *distinct,
                    separator,
                    name: display,
                })
            }
            other => Err(SqlError::Binding(format!(
                "not an aggregate call: {other:?}"
            ))),
        }
    }

    fn bind_select_items(
        &self,
        items: &[SelectItem],
        scope: &Scope,
        agg: Option<&AggCtx<'_>>,
        has_agg: bool,
        outer: Option<&Scope>,
    ) -> SqlResult<BoundSelectList> {
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        // Projection index of each `SelectItem::Expr` (wildcards expand to
        // many columns and get `None`) — ORDER BY structural matching must
        // map through this, not through the raw item position.
        let mut item_proj: Vec<Option<usize>> = Vec::with_capacity(items.len());
        for item in items {
            match item {
                SelectItem::Wildcard => {
                    if has_agg {
                        return Err(SqlError::Binding(
                            "SELECT * cannot be combined with GROUP BY or aggregates".into(),
                        ));
                    }
                    item_proj.push(None);
                    for (i, c) in scope.columns.iter().enumerate() {
                        exprs.push(BoundExpr::ColumnRef(i));
                        names.push(c.name.clone());
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    if has_agg {
                        return Err(SqlError::Binding(
                            "qualified * cannot be combined with GROUP BY or aggregates".into(),
                        ));
                    }
                    item_proj.push(None);
                    let mut any = false;
                    for (i, c) in scope.columns.iter().enumerate() {
                        if c.qualifier
                            .as_deref()
                            .map(|cq| cq.eq_ignore_ascii_case(q))
                            .unwrap_or(false)
                        {
                            exprs.push(BoundExpr::ColumnRef(i));
                            names.push(c.name.clone());
                            any = true;
                        }
                    }
                    if !any {
                        return Err(SqlError::Binding(format!("no such table or alias: {q}")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    item_proj.push(Some(exprs.len()));
                    exprs.push(self.bind_outer(expr, scope, agg, outer)?);
                    names.push(alias.clone().unwrap_or_else(|| expr.display_name()));
                }
            }
        }
        Ok((exprs, names, item_proj))
    }

    #[allow(clippy::too_many_arguments)]
    fn resolve_order_key(
        &self,
        key: &OrderKey,
        proj_names: &[String],
        items: &[SelectItem],
        item_proj: &[Option<usize>],
        scope: &Scope,
        agg: Option<&AggCtx<'_>>,
        visible: usize,
        hidden: &mut Vec<BoundExpr>,
        outer: Option<&Scope>,
    ) -> SqlResult<usize> {
        // `ORDER BY <ordinal>`
        if let Expr::Literal(Value::Int(n)) = &key.expr {
            let n = *n;
            if n < 1 || n as usize > visible {
                return Err(SqlError::Binding(format!(
                    "ORDER BY position {n} is out of range (1..={visible})"
                )));
            }
            return Ok(n as usize - 1);
        }
        // Alias / output-name match (unqualified names only).
        if let Expr::Column {
            qualifier: None,
            name,
        } = &key.expr
        {
            if let Some(i) = proj_names[..visible]
                .iter()
                .position(|p| p.eq_ignore_ascii_case(name))
            {
                return Ok(i);
            }
        }
        // Structural match against a select item expression, mapped to its
        // projection index (wildcards shift positions).
        for (item, proj) in items.iter().zip(item_proj) {
            if let (SelectItem::Expr { expr, .. }, Some(p)) = (item, proj) {
                if ast_eq(expr, &key.expr) && *p < visible {
                    return Ok(*p);
                }
            }
        }
        // Hidden sort expression over the pre-projection scope.
        let bound = self.bind_outer(&key.expr, scope, agg, outer)?;
        hidden.push(bound);
        Ok(visible + hidden.len() - 1)
    }

    // ---- expression binding -------------------------------------------

    /// Bind an AST expression to a [`BoundExpr`] against `scope`.
    /// With `agg` set, GROUP BY expressions and aggregate calls rewrite to
    /// references into the Aggregate node's output.
    pub(crate) fn bind(
        &self,
        expr: &Expr,
        scope: &Scope,
        agg: Option<&AggCtx<'_>>,
    ) -> SqlResult<BoundExpr> {
        self.bind_outer(expr, scope, agg, None)
    }

    /// Bind with an optional enclosing-query scope for correlated
    /// references (one level deep).
    fn bind_outer(
        &self,
        expr: &Expr,
        scope: &Scope,
        agg: Option<&AggCtx<'_>>,
        outer: Option<&Scope>,
    ) -> SqlResult<BoundExpr> {
        if let Some(ctx) = agg {
            for (i, g) in ctx.group_asts.iter().enumerate() {
                if ast_eq(g, expr) {
                    return Ok(BoundExpr::ColumnRef(i));
                }
            }
            for (j, a) in ctx.agg_asts.iter().enumerate() {
                if ast_eq(a, expr) {
                    return Ok(BoundExpr::ColumnRef(ctx.group_asts.len() + j));
                }
            }
            if matches!(expr, Expr::CountStar)
                || matches!(expr, Expr::Function { name, .. } if is_aggregate_name(name))
            {
                // An aggregate call that wasn't collected can only mean a
                // planner bug; surface it clearly.
                return Err(SqlError::Binding(format!(
                    "internal: uncollected aggregate {expr:?}"
                )));
            }
        }
        match expr {
            Expr::Literal(v) => Ok(BoundExpr::Literal(v.clone())),
            Expr::Column { qualifier, name } => {
                if agg.is_none() {
                    if let Some(i) = scope.try_resolve(qualifier.as_deref(), name)? {
                        return Ok(BoundExpr::ColumnRef(i));
                    }
                }
                // Correlated reference to the enclosing query's row.
                if let Some(out) = outer {
                    if let Some(i) = out.try_resolve(qualifier.as_deref(), name)? {
                        return Ok(BoundExpr::OuterRef(i));
                    }
                }
                if agg.is_some() {
                    return Err(SqlError::Binding(format!(
                        "column {name:?} must appear in GROUP BY or inside an aggregate"
                    )));
                }
                // Re-run resolve for its precise error message.
                let idx = scope.resolve(qualifier.as_deref(), name)?;
                Ok(BoundExpr::ColumnRef(idx))
            }
            Expr::Binary { op, lhs, rhs } => Ok(BoundExpr::Binary {
                op: *op,
                lhs: Box::new(self.bind_outer(lhs, scope, agg, outer)?),
                rhs: Box::new(self.bind_outer(rhs, scope, agg, outer)?),
            }),
            Expr::Unary { op, operand } => Ok(BoundExpr::Unary {
                op: *op,
                operand: Box::new(self.bind_outer(operand, scope, agg, outer)?),
            }),
            Expr::IsNull { expr, negated } => Ok(BoundExpr::IsNull {
                expr: Box::new(self.bind_outer(expr, scope, agg, outer)?),
                negated: *negated,
            }),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Ok(BoundExpr::Between {
                expr: Box::new(self.bind_outer(expr, scope, agg, outer)?),
                low: Box::new(self.bind_outer(low, scope, agg, outer)?),
                high: Box::new(self.bind_outer(high, scope, agg, outer)?),
                negated: *negated,
            }),
            Expr::InList {
                expr,
                list,
                negated,
            } => Ok(BoundExpr::InList {
                expr: Box::new(self.bind_outer(expr, scope, agg, outer)?),
                list: list
                    .iter()
                    .map(|e| self.bind_outer(e, scope, agg, outer))
                    .collect::<SqlResult<_>>()?,
                negated: *negated,
            }),
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let plan = self.plan_select_outer(query, Some(scope))?;
                if plan.width() != 1 {
                    return Err(SqlError::Binding(format!(
                        "IN subquery must return one column, got {}",
                        plan.width()
                    )));
                }
                if plan.contains_outer_ref() {
                    return Ok(BoundExpr::CorrelatedIn {
                        expr: Box::new(self.bind_outer(expr, scope, agg, outer)?),
                        plan: Box::new(plan),
                        negated: *negated,
                    });
                }
                let rows = self.run_plan(plan)?;
                let mut set = HashSet::with_capacity(rows.len());
                let mut set_has_null = false;
                for mut row in rows {
                    let v = row.pop().expect("one column");
                    if v.is_null() {
                        set_has_null = true;
                    } else {
                        set.insert(v);
                    }
                }
                Ok(BoundExpr::InSet {
                    expr: Box::new(self.bind_outer(expr, scope, agg, outer)?),
                    set: Arc::new(set),
                    set_has_null,
                    negated: *negated,
                })
            }
            Expr::ScalarSubquery(query) => {
                let plan = self.plan_select_outer(query, Some(scope))?;
                if plan.width() != 1 {
                    return Err(SqlError::Binding(format!(
                        "scalar subquery must return one column, got {}",
                        plan.width()
                    )));
                }
                if plan.contains_outer_ref() {
                    return Ok(BoundExpr::CorrelatedScalar {
                        plan: Box::new(plan),
                    });
                }
                let rows = self.run_plan(plan)?;
                if rows.len() > 1 {
                    return Err(SqlError::Eval(format!(
                        "scalar subquery returned {} rows",
                        rows.len()
                    )));
                }
                let v = match rows.into_iter().next() {
                    Some(row) => row.into_iter().next().expect("one column"),
                    None => Value::Null,
                };
                Ok(BoundExpr::Literal(v))
            }
            Expr::Exists { query, negated } => {
                let plan = self.plan_select_outer(query, Some(scope))?;
                if plan.contains_outer_ref() {
                    return Ok(BoundExpr::CorrelatedExists {
                        plan: Box::new(plan),
                        negated: *negated,
                    });
                }
                let rows = self.run_plan(plan)?;
                Ok(BoundExpr::Literal(Value::from(rows.is_empty() == *negated)))
            }
            Expr::Function {
                name,
                args,
                distinct,
            } => {
                if is_aggregate_name(name) && args.len() <= 1 {
                    return Err(SqlError::Binding(format!(
                        "aggregate function {name} is not allowed here"
                    )));
                }
                if *distinct {
                    return Err(SqlError::Binding(format!(
                        "DISTINCT is only valid in aggregate functions, not {name}"
                    )));
                }
                let bound_args: Vec<BoundExpr> = args
                    .iter()
                    .map(|a| self.bind_outer(a, scope, agg, outer))
                    .collect::<SqlResult<_>>()?;
                if is_builtin_name(name, args.len()) {
                    Ok(BoundExpr::Builtin {
                        name: name.clone(),
                        args: bound_args,
                    })
                } else if let Some(udf) = self.udfs.get(name) {
                    Ok(BoundExpr::Udf {
                        udf: Arc::clone(udf),
                        args: bound_args,
                    })
                } else {
                    Err(SqlError::Binding(format!("unknown function {name:?}")))
                }
            }
            Expr::CountStar => Err(SqlError::Binding("COUNT(*) is not allowed here".into())),
            Expr::Case {
                operand,
                branches,
                else_branch,
            } => Ok(BoundExpr::Case {
                operand: match operand {
                    Some(o) => Some(Box::new(self.bind_outer(o, scope, agg, outer)?)),
                    None => None,
                },
                branches: branches
                    .iter()
                    .map(|(w, t)| {
                        Ok((
                            self.bind_outer(w, scope, agg, outer)?,
                            self.bind_outer(t, scope, agg, outer)?,
                        ))
                    })
                    .collect::<SqlResult<_>>()?,
                else_branch: match else_branch {
                    Some(e) => Some(Box::new(self.bind_outer(e, scope, agg, outer)?)),
                    None => None,
                },
            }),
            Expr::Cast { expr, dtype } => Ok(BoundExpr::Cast {
                expr: Box::new(self.bind_outer(expr, scope, agg, outer)?),
                dtype: *dtype,
            }),
        }
    }

    /// Optimize and execute an already-planned uncorrelated subquery.
    fn run_plan(&self, plan: Plan) -> SqlResult<Vec<crate::schema::Row>> {
        let plan = crate::optimizer::optimize(plan, self.catalog);
        execute(&plan, self.catalog)
    }
}

/// Collect the distinct aggregate calls in an expression (not descending
/// into aggregate arguments). Errors on nested aggregates.
fn collect_aggregates(expr: &Expr, out: &mut Vec<Expr>) -> SqlResult<()> {
    let mut push = |e: &Expr| {
        if !out.iter().any(|x| ast_eq(x, e)) {
            out.push(e.clone());
        }
    };
    match expr {
        Expr::CountStar => push(expr),
        Expr::Function { name, args, .. } if is_aggregate_name(name) => {
            for a in args {
                if a.contains_aggregate() {
                    return Err(SqlError::Binding(
                        "nested aggregate functions are not allowed".into(),
                    ));
                }
            }
            push(expr);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, out)?;
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            collect_aggregates(lhs, out)?;
            collect_aggregates(rhs, out)?;
        }
        Expr::Unary { operand, .. } => collect_aggregates(operand, out)?,
        Expr::IsNull { expr, .. } => collect_aggregates(expr, out)?,
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, out)?;
            collect_aggregates(low, out)?;
            collect_aggregates(high, out)?;
        }
        Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out)?;
            for e in list {
                collect_aggregates(e, out)?;
            }
        }
        Expr::InSubquery { expr, .. } => collect_aggregates(expr, out)?,
        Expr::Case {
            operand,
            branches,
            else_branch,
        } => {
            if let Some(o) = operand {
                collect_aggregates(o, out)?;
            }
            for (w, t) in branches {
                collect_aggregates(w, out)?;
                collect_aggregates(t, out)?;
            }
            if let Some(e) = else_branch {
                collect_aggregates(e, out)?;
            }
        }
        Expr::Cast { expr, .. } => collect_aggregates(expr, out)?,
        Expr::Literal(_) | Expr::Column { .. } | Expr::ScalarSubquery(_) | Expr::Exists { .. } => {}
    }
    Ok(())
}

/// Names handled by [`crate::functions::eval_builtin`].
fn is_builtin_name(name: &str, arity: usize) -> bool {
    let upper = name.to_ascii_uppercase();
    matches!(
        upper.as_str(),
        "ABS"
            | "LOWER"
            | "UPPER"
            | "LENGTH"
            | "TRIM"
            | "LTRIM"
            | "RTRIM"
            | "ROUND"
            | "COALESCE"
            | "IFNULL"
            | "NULLIF"
            | "SUBSTR"
            | "SUBSTRING"
            | "REPLACE"
            | "INSTR"
            | "TYPEOF"
    ) || (matches!(upper.as_str(), "MIN" | "MAX") && arity >= 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType, Schema};
    use crate::table::Table;

    fn setup() -> (Catalog, UdfRegistry) {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("id", DataType::Integer),
                Column::new("name", DataType::Text),
                Column::new("score", DataType::Real),
            ])
            .unwrap(),
        );
        for (i, (n, s)) in [("a", 1.0), ("b", 2.0), ("c", 3.0), ("a", 4.0)]
            .iter()
            .enumerate()
        {
            t.insert(vec![
                Value::Int(i as i64),
                Value::text(*n),
                Value::Float(*s),
            ])
            .unwrap();
        }
        let mut c = Catalog::new();
        c.add_table(t).unwrap();
        (c, UdfRegistry::new())
    }

    fn run(catalog: &Catalog, udfs: &UdfRegistry, sql: &str) -> Vec<crate::schema::Row> {
        let stmt = crate::parser::parse_statement(sql).unwrap();
        let sel = match stmt {
            crate::ast::Statement::Select(s) => s,
            other => panic!("{other:?}"),
        };
        let planner = Planner::new(catalog, udfs);
        let plan = planner.plan_select(&sel).unwrap();
        execute(&plan, catalog).unwrap()
    }

    #[test]
    fn select_star_and_projection() {
        let (c, u) = setup();
        let rows = run(&c, &u, "SELECT * FROM t");
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].len(), 3);
        let rows = run(&c, &u, "SELECT name, score * 2 AS dbl FROM t WHERE id >= 2");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][1], Value::Float(6.0));
    }

    #[test]
    fn group_by_and_having() {
        let (c, u) = setup();
        let rows = run(
            &c,
            &u,
            "SELECT name, COUNT(*), AVG(score) FROM t GROUP BY name HAVING COUNT(*) > 1",
        );
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::text("a"));
        assert_eq!(rows[0][1], Value::Int(2));
        assert_eq!(rows[0][2], Value::Float(2.5));
    }

    #[test]
    fn order_by_alias_ordinal_and_hidden() {
        let (c, u) = setup();
        // alias
        let rows = run(&c, &u, "SELECT score AS s FROM t ORDER BY s DESC");
        assert_eq!(rows[0][0], Value::Float(4.0));
        // ordinal
        let rows = run(&c, &u, "SELECT name, score FROM t ORDER BY 2 DESC LIMIT 1");
        assert_eq!(rows[0][1], Value::Float(4.0));
        // hidden expression (not in select list)
        let rows = run(&c, &u, "SELECT name FROM t ORDER BY score DESC LIMIT 1");
        assert_eq!(rows[0], vec![Value::text("a")]);
        assert_eq!(rows[0].len(), 1, "hidden sort column must be stripped");
    }

    #[test]
    fn scalar_and_in_subqueries() {
        let (c, u) = setup();
        let rows = run(
            &c,
            &u,
            "SELECT name FROM t WHERE score = (SELECT MAX(score) FROM t)",
        );
        assert_eq!(rows, vec![vec![Value::text("a")]]);
        let rows = run(
            &c,
            &u,
            "SELECT COUNT(*) FROM t WHERE id IN (SELECT id FROM t WHERE score > 1.5)",
        );
        assert_eq!(rows[0][0], Value::Int(3));
        let rows = run(&c, &u, "SELECT 1 WHERE EXISTS (SELECT 1 FROM t)");
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn ambiguous_and_missing_columns() {
        let (c, u) = setup();
        let planner = Planner::new(&c, &u);
        let stmt =
            crate::parser::parse_statement("SELECT id FROM t AS a JOIN t AS b ON a.id = b.id")
                .unwrap();
        let sel = match stmt {
            crate::ast::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let err = planner.plan_select(&sel).unwrap_err();
        assert!(err.message().contains("ambiguous"));

        let stmt = crate::parser::parse_statement("SELECT nope FROM t").unwrap();
        let sel = match stmt {
            crate::ast::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let err = planner.plan_select(&sel).unwrap_err();
        assert!(err.message().contains("no such column"));
    }

    #[test]
    fn non_grouped_column_rejected() {
        let (c, u) = setup();
        let planner = Planner::new(&c, &u);
        let stmt =
            crate::parser::parse_statement("SELECT id, COUNT(*) FROM t GROUP BY name").unwrap();
        let sel = match stmt {
            crate::ast::Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let err = planner.plan_select(&sel).unwrap_err();
        assert!(err.message().contains("GROUP BY"));
    }

    #[test]
    fn expression_group_key_reused_in_select() {
        let (c, u) = setup();
        let rows = run(
            &c,
            &u,
            "SELECT UPPER(name), COUNT(*) FROM t GROUP BY UPPER(name) ORDER BY 1",
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::text("A"));
        assert_eq!(rows[0][1], Value::Int(2));
    }

    #[test]
    fn join_plans() {
        let (mut c, u) = setup();
        let mut other = Table::new(
            "u",
            Schema::new(vec![
                Column::new("id", DataType::Integer),
                Column::new("tag", DataType::Text),
            ])
            .unwrap(),
        );
        other
            .insert(vec![Value::Int(0), Value::text("zero")])
            .unwrap();
        c.add_table(other).unwrap();
        let rows = run(&c, &u, "SELECT t.name, u.tag FROM t JOIN u ON t.id = u.id");
        assert_eq!(rows, vec![vec![Value::text("a"), Value::text("zero")]]);
        let rows = run(
            &c,
            &u,
            "SELECT t.name, u.tag FROM t LEFT JOIN u ON t.id = u.id ORDER BY t.id",
        );
        assert_eq!(rows.len(), 4);
        assert!(rows[1][1].is_null());
    }

    #[test]
    fn subquery_in_from() {
        let (c, u) = setup();
        let rows = run(
            &c,
            &u,
            "SELECT sub.name FROM (SELECT name, score FROM t WHERE score > 2) AS sub \
             ORDER BY sub.score DESC",
        );
        assert_eq!(rows, vec![vec![Value::text("a")], vec![Value::text("c")]]);
    }

    #[test]
    fn distinct() {
        let (c, u) = setup();
        let rows = run(&c, &u, "SELECT DISTINCT name FROM t ORDER BY name");
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn table_less_select() {
        let (c, u) = setup();
        let rows = run(&c, &u, "SELECT 1 + 1, UPPER('x')");
        assert_eq!(rows, vec![vec![Value::Int(2), Value::text("X")]]);
    }

    #[test]
    fn order_by_structural_match_after_wildcard() {
        let (c, u) = setup();
        // The sort key expression appears in the select list *after* a
        // wildcard; the structural match must map to the projection
        // index, not the item index.
        let rows = run(&c, &u, "SELECT *, 0 - id FROM t ORDER BY 0 - id");
        let neg: Vec<i64> = rows.iter().map(|r| r[3].as_i64().unwrap()).collect();
        assert_eq!(neg, vec![-3, -2, -1, 0]);
    }

    #[test]
    fn count_star_order_by_aggregate() {
        let (c, u) = setup();
        let rows = run(
            &c,
            &u,
            "SELECT name FROM t GROUP BY name ORDER BY COUNT(*) DESC, name LIMIT 1",
        );
        assert_eq!(rows, vec![vec![Value::text("a")]]);
    }
}
