//! Column types, schemas, and rows.

use crate::error::{SqlError, SqlResult};
use crate::value::Value;
use std::fmt;

/// Declared column type. Storage is dynamically typed (SQLite-style);
/// declared types act as affinities used by `CAST` and the CSV loader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit signed integer affinity.
    Integer,
    /// 64-bit float affinity.
    Real,
    /// UTF-8 text affinity.
    Text,
}

impl DataType {
    /// Parse a declared type name (case-insensitive, SQLite-ish aliases).
    pub fn parse(name: &str) -> SqlResult<DataType> {
        match name.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" | "BOOLEAN" | "BOOL" => {
                Ok(DataType::Integer)
            }
            "REAL" | "FLOAT" | "DOUBLE" | "NUMERIC" | "DECIMAL" => Ok(DataType::Real),
            "TEXT" | "VARCHAR" | "CHAR" | "STRING" | "CLOB" | "DATE" | "DATETIME" => {
                Ok(DataType::Text)
            }
            other => Err(SqlError::Parse(format!("unknown type name {other:?}"))),
        }
    }

    /// Apply this affinity to a value (used by CAST and column coercion).
    pub fn coerce(&self, v: &Value) -> Value {
        match (self, v) {
            (_, Value::Null) => Value::Null,
            (DataType::Integer, v) => match v {
                Value::Int(i) => Value::Int(*i),
                Value::Float(f) => Value::Int(*f as i64),
                Value::Text(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .or_else(|_| s.trim().parse::<f64>().map(|f| Value::Int(f as i64)))
                    .unwrap_or(Value::Int(0)),
                Value::Null => Value::Null,
            },
            (DataType::Real, v) => match v {
                Value::Int(i) => Value::Float(*i as f64),
                Value::Float(f) => Value::Float(*f),
                Value::Text(s) => Value::Float(s.trim().parse::<f64>().unwrap_or(0.0)),
                Value::Null => Value::Null,
            },
            (DataType::Text, v) => Value::Text(v.to_string()),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Integer => write!(f, "INTEGER"),
            DataType::Real => write!(f, "REAL"),
            DataType::Text => write!(f, "TEXT"),
        }
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name as declared.
    pub name: String,
    /// Declared affinity.
    pub dtype: DataType,
    /// Whether NULLs are rejected on insert.
    pub not_null: bool,
    /// Whether this column is the (single-column) primary key.
    pub primary_key: bool,
}

impl Column {
    /// A plain nullable column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Self {
        Column {
            name: name.into(),
            dtype,
            not_null: false,
            primary_key: false,
        }
    }

    /// Builder: mark NOT NULL.
    pub fn not_null(mut self) -> Self {
        self.not_null = true;
        self
    }

    /// Builder: mark PRIMARY KEY (implies NOT NULL).
    pub fn primary_key(mut self) -> Self {
        self.primary_key = true;
        self.not_null = true;
        self
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema from columns, rejecting duplicate names
    /// (case-insensitive, as in SQLite).
    pub fn new(columns: Vec<Column>) -> SqlResult<Schema> {
        for (i, c) in columns.iter().enumerate() {
            for other in &columns[i + 1..] {
                if c.name.eq_ignore_ascii_case(&other.name) {
                    return Err(SqlError::Catalog(format!(
                        "duplicate column name {:?}",
                        c.name
                    )));
                }
            }
        }
        Ok(Schema { columns })
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Index of a column by case-insensitive name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Column at index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Validate and coerce a row against the schema: arity must match,
    /// NOT NULL enforced, declared affinities applied.
    pub fn check_row(&self, row: &[Value]) -> SqlResult<Vec<Value>> {
        if row.len() != self.columns.len() {
            return Err(SqlError::Catalog(format!(
                "row has {} values but table has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        let mut out = Vec::with_capacity(row.len());
        for (col, v) in self.columns.iter().zip(row) {
            if v.is_null() && col.not_null {
                return Err(SqlError::Catalog(format!(
                    "NOT NULL constraint failed: {}",
                    col.name
                )));
            }
            out.push(if v.is_null() {
                Value::Null
            } else {
                col.dtype.coerce(v)
            });
        }
        Ok(out)
    }
}

/// A row is a vector of values, one per schema column.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Integer).primary_key(),
            Column::new("name", DataType::Text).not_null(),
            Column::new("score", DataType::Real),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_columns_rejected_case_insensitively() {
        let err = Schema::new(vec![
            Column::new("Name", DataType::Text),
            Column::new("name", DataType::Integer),
        ])
        .unwrap_err();
        assert_eq!(err.category(), "catalog");
    }

    #[test]
    fn index_of_is_case_insensitive() {
        let s = schema();
        assert_eq!(s.index_of("NAME"), Some(1));
        assert_eq!(s.index_of("missing"), None);
    }

    #[test]
    fn check_row_coerces_affinities() {
        let s = schema();
        let row = s
            .check_row(&[Value::text("7"), Value::text("x"), Value::Int(3)])
            .unwrap();
        assert_eq!(
            row,
            vec![Value::Int(7), Value::text("x"), Value::Float(3.0)]
        );
    }

    #[test]
    fn check_row_enforces_not_null_and_arity() {
        let s = schema();
        assert!(s
            .check_row(&[Value::Int(1), Value::Null, Value::Null])
            .is_err());
        assert!(s.check_row(&[Value::Int(1)]).is_err());
        // score is nullable
        assert!(s
            .check_row(&[Value::Int(1), Value::text("a"), Value::Null])
            .is_ok());
    }

    #[test]
    fn type_parsing_aliases() {
        assert_eq!(DataType::parse("varchar").unwrap(), DataType::Text);
        assert_eq!(DataType::parse("BIGINT").unwrap(), DataType::Integer);
        assert_eq!(DataType::parse("double").unwrap(), DataType::Real);
        assert!(DataType::parse("blobby").is_err());
    }

    #[test]
    fn cast_semantics() {
        assert_eq!(DataType::Integer.coerce(&Value::Float(3.9)), Value::Int(3));
        assert_eq!(DataType::Text.coerce(&Value::Int(12)), Value::text("12"));
        assert_eq!(
            DataType::Real.coerce(&Value::text("bad")),
            Value::Float(0.0)
        );
        assert_eq!(DataType::Integer.coerce(&Value::Null), Value::Null);
    }
}
