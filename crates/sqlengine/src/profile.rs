//! Operator-level execution profiling: `EXPLAIN ANALYZE` for the plan
//! tree.
//!
//! A [`PlanProfiler`] is threaded (as `Option<&PlanProfiler>`) through
//! the executor so both the profiled and unprofiled paths run *the same
//! code* — profiling only observes; it never changes results. Each plan
//! node records rows out and elapsed wall-clock time; rows in are
//! derived from the children's rows out via parent links.

use crate::plan::Plan;
use crate::semplan::LmCost;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Stats for one executed plan node.
#[derive(Debug, Clone)]
pub struct NodeProfile {
    /// One-line operator label ("TableScan schools", "HashJoin Inner ...").
    pub label: String,
    /// Depth in the plan tree (0 = root).
    pub depth: usize,
    /// Index of the parent node in the profile vector.
    pub parent: Option<usize>,
    /// Rows received from child operators (sum of children's rows out;
    /// 0 for leaves, which read from storage instead).
    pub rows_in: usize,
    /// Rows produced.
    pub rows_out: usize,
    /// Wall-clock time in this node *including* its children.
    pub elapsed: Duration,
    /// LM prompts this node caused (semantic plan nodes only; always 0
    /// for relational operators). Excludes work done by children.
    pub lm_calls: u64,
    /// Prompt tokens consumed by this node's LM calls.
    pub lm_prompt_tokens: u64,
    /// Completion tokens produced by this node's LM calls.
    pub lm_completion_tokens: u64,
}

struct OpenNode {
    label: String,
    depth: usize,
    parent: Option<usize>,
    started: Instant,
}

#[derive(Default)]
struct ProfState {
    /// Completed + in-flight nodes, in pre-order (enter order).
    nodes: Vec<Option<NodeProfile>>,
    open: Vec<(usize, OpenNode)>,
}

/// Records per-node execution stats for one plan execution. Single-
/// threaded by design (the executor is single-threaded); not `Sync`.
#[derive(Default)]
pub struct PlanProfiler {
    state: RefCell<ProfState>,
}

impl PlanProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a node; returns a token to pass to [`PlanProfiler::exit`].
    pub(crate) fn enter(&self, label: String) -> usize {
        let mut s = self.state.borrow_mut();
        let idx = s.nodes.len();
        let depth = s.open.len();
        let parent = s.open.last().map(|(i, _)| *i);
        s.nodes.push(None);
        s.open.push((
            idx,
            OpenNode {
                label,
                depth,
                parent,
                started: Instant::now(),
            },
        ));
        idx
    }

    /// Finish the node `token`, recording its output cardinality.
    pub(crate) fn exit(&self, token: usize, rows_out: usize) {
        self.exit_lm(token, rows_out, LmCost::default());
    }

    /// Finish the node `token`, recording output cardinality plus the LM
    /// cost this node caused (semantic plan nodes).
    pub(crate) fn exit_lm(&self, token: usize, rows_out: usize, cost: LmCost) {
        let mut s = self.state.borrow_mut();
        // Normally the token is the top of the open stack; pop down to it
        // so error unwinds (which skip exits) cannot wedge the stack.
        while let Some((idx, open)) = s.open.pop() {
            let done = idx == token;
            let profile = NodeProfile {
                label: open.label,
                depth: open.depth,
                parent: open.parent,
                rows_in: 0,
                rows_out: if done { rows_out } else { 0 },
                elapsed: open.started.elapsed(),
                lm_calls: if done { cost.calls } else { 0 },
                lm_prompt_tokens: if done { cost.prompt_tokens } else { 0 },
                lm_completion_tokens: if done { cost.completion_tokens } else { 0 },
            };
            s.nodes[idx] = Some(profile);
            if done {
                break;
            }
        }
    }

    /// Completed node profiles in pre-order, with `rows_in` filled from
    /// the children's `rows_out`.
    pub fn nodes(&self) -> Vec<NodeProfile> {
        let s = self.state.borrow();
        let mut out: Vec<NodeProfile> = s.nodes.iter().flatten().cloned().collect();
        let ins: Vec<usize> = out
            .iter()
            .enumerate()
            .map(|(i, _)| {
                out.iter()
                    .filter(|n| n.parent == Some(i))
                    .map(|n| n.rows_out)
                    .sum()
            })
            .collect();
        for (n, rows_in) in out.iter_mut().zip(ins) {
            n.rows_in = rows_in;
        }
        out
    }

    /// Render the `EXPLAIN ANALYZE`-style annotated plan.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for n in self.nodes() {
            let pad = "  ".repeat(n.depth);
            let lm = if n.lm_calls > 0 {
                format!(
                    " lm_calls={} lm_tokens={}",
                    n.lm_calls,
                    n.lm_prompt_tokens + n.lm_completion_tokens
                )
            } else {
                String::new()
            };
            let _ = writeln!(
                out,
                "{pad}{}  (in={} out={} time={}{lm})",
                n.label,
                n.rows_in,
                n.rows_out,
                fmt_duration(n.elapsed)
            );
        }
        out
    }
}

fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

/// One-line label for a plan node (no children), matching the vocabulary
/// of [`Plan::explain`].
pub(crate) fn node_label(plan: &Plan) -> String {
    match plan {
        Plan::TableScan { table, .. } => format!("TableScan {table}"),
        Plan::IndexProbe {
            table, key_column, ..
        } => format!("IndexProbe {table} col#{key_column}"),
        Plan::IndexRangeScan {
            table, key_column, ..
        } => format!("IndexRangeScan {table} col#{key_column}"),
        Plan::Values { rows, .. } => format!("Values ({} rows)", rows.len()),
        Plan::Filter { .. } => "Filter".to_string(),
        Plan::Project { .. } => "Project".to_string(),
        Plan::NestedLoopJoin { kind, .. } => format!("NestedLoopJoin {kind}"),
        Plan::HashJoin { kind, .. } => format!("HashJoin {kind}"),
        Plan::Aggregate { group, aggs, .. } => {
            format!("Aggregate groups={} aggs={}", group.len(), aggs.len())
        }
        Plan::Sort { keys, .. } => format!("Sort {} keys", keys.len()),
        Plan::TopK { k, offset, .. } => format!("TopK k={k} offset={offset}"),
        Plan::Limit { limit, offset, .. } => format!("Limit limit={limit:?} offset={offset}"),
        Plan::Distinct { .. } => "Distinct".to_string(),
        Plan::Sem { root } => root.label(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_enters_build_a_tree() {
        let p = PlanProfiler::new();
        let root = p.enter("Filter".into());
        let child = p.enter("TableScan t".into());
        p.exit(child, 10);
        p.exit(root, 4);
        let nodes = p.nodes();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[0].label, "Filter");
        assert_eq!(nodes[0].depth, 0);
        assert_eq!(nodes[0].parent, None);
        assert_eq!(nodes[0].rows_in, 10, "filter input = scan output");
        assert_eq!(nodes[0].rows_out, 4);
        assert_eq!(nodes[1].parent, Some(0));
        assert_eq!(nodes[1].rows_in, 0, "leaf reads storage");
        assert!(nodes[1].elapsed <= nodes[0].elapsed);
    }

    #[test]
    fn render_is_indented_and_annotated() {
        let p = PlanProfiler::new();
        let root = p.enter("Sort 1 keys".into());
        let child = p.enter("TableScan t".into());
        p.exit(child, 3);
        p.exit(root, 3);
        let text = p.render();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with("Sort 1 keys  (in=3 out=3"), "{text}");
        assert!(lines[1].starts_with("  TableScan t  (in=0 out=3"), "{text}");
        assert!(lines[0].contains("time="), "{text}");
    }

    #[test]
    fn missing_exit_is_flushed_with_zero_rows() {
        // Simulates an executor error unwind: the child never exits.
        let p = PlanProfiler::new();
        let root = p.enter("Filter".into());
        let _child = p.enter("TableScan t".into());
        p.exit(root, 0);
        let nodes = p.nodes();
        assert_eq!(nodes.len(), 2);
        assert_eq!(nodes[1].rows_out, 0);
    }
}
