//! User-defined scalar functions.
//!
//! The TAG paper (§2.1) notes that some database APIs "execute LM UDFs
//! within SQL queries". This registry is the extension point: the LM
//! crates register functions such as `LLM_FILTER('is {x} a classic', col)`
//! here, and the expression evaluator dispatches unknown function names
//! through it.

use crate::error::{SqlError, SqlResult};
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// A scalar user-defined function.
pub trait ScalarUdf: Send + Sync {
    /// Function name as used in SQL (matched case-insensitively).
    fn name(&self) -> &str;
    /// Evaluate over one row's argument values.
    fn call(&self, args: &[Value]) -> SqlResult<Value>;
    /// Arity check; `None` means variadic. Default: variadic.
    fn arity(&self) -> Option<usize> {
        None
    }
}

/// A UDF built from a closure.
pub struct FnUdf<F> {
    name: String,
    arity: Option<usize>,
    f: F,
}

impl<F> FnUdf<F>
where
    F: Fn(&[Value]) -> SqlResult<Value> + Send + Sync,
{
    /// Wrap a closure as a UDF.
    pub fn new(name: impl Into<String>, arity: Option<usize>, f: F) -> Self {
        FnUdf {
            name: name.into(),
            arity,
            f,
        }
    }
}

impl<F> ScalarUdf for FnUdf<F>
where
    F: Fn(&[Value]) -> SqlResult<Value> + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }
    fn call(&self, args: &[Value]) -> SqlResult<Value> {
        (self.f)(args)
    }
    fn arity(&self) -> Option<usize> {
        self.arity
    }
}

/// Registry of UDFs, keyed by upper-cased name.
#[derive(Clone, Default)]
pub struct UdfRegistry {
    funcs: HashMap<String, Arc<dyn ScalarUdf>>,
}

impl UdfRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a UDF; replaces any previous function of the same name.
    pub fn register(&mut self, udf: Arc<dyn ScalarUdf>) {
        self.funcs.insert(udf.name().to_ascii_uppercase(), udf);
    }

    /// Register a closure-based UDF.
    pub fn register_fn<F>(&mut self, name: &str, arity: Option<usize>, f: F)
    where
        F: Fn(&[Value]) -> SqlResult<Value> + Send + Sync + 'static,
    {
        self.register(Arc::new(FnUdf::new(name, arity, f)));
    }

    /// Look up by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&Arc<dyn ScalarUdf>> {
        self.funcs.get(&name.to_ascii_uppercase())
    }

    /// Invoke a registered UDF with arity checking.
    pub fn call(&self, name: &str, args: &[Value]) -> SqlResult<Value> {
        let udf = self
            .get(name)
            .ok_or_else(|| SqlError::Binding(format!("unknown function {name:?}")))?;
        if let Some(n) = udf.arity() {
            if args.len() != n {
                return Err(SqlError::Udf(format!(
                    "{} expects {} argument(s), got {}",
                    udf.name(),
                    n,
                    args.len()
                )));
            }
        }
        udf.call(args)
    }

    /// Names of all registered functions.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.funcs.keys().cloned().collect();
        v.sort_unstable();
        v
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }
}

impl std::fmt::Debug for UdfRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UdfRegistry")
            .field("functions", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_call() {
        let mut reg = UdfRegistry::new();
        reg.register_fn("double", Some(1), |args| {
            crate::value::arith::mul(&args[0], &Value::Int(2))
        });
        assert_eq!(
            reg.call("DOUBLE", &[Value::Int(21)]).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            reg.call("double", &[Value::Float(1.5)]).unwrap(),
            Value::Float(3.0)
        );
    }

    #[test]
    fn arity_enforced() {
        let mut reg = UdfRegistry::new();
        reg.register_fn("one_arg", Some(1), |_| Ok(Value::Null));
        let err = reg.call("one_arg", &[]).unwrap_err();
        assert_eq!(err.category(), "udf");
    }

    #[test]
    fn unknown_function_is_binding_error() {
        let reg = UdfRegistry::new();
        let err = reg.call("nope", &[]).unwrap_err();
        assert_eq!(err.category(), "binding");
    }

    #[test]
    fn replace_same_name() {
        let mut reg = UdfRegistry::new();
        reg.register_fn("f", None, |_| Ok(Value::Int(1)));
        reg.register_fn("F", None, |_| Ok(Value::Int(2)));
        assert_eq!(reg.call("f", &[]).unwrap(), Value::Int(2));
        assert_eq!(reg.names(), vec!["F".to_string()]);
    }
}
