//! The catalog: a named collection of tables.

use crate::error::{SqlError, SqlResult};
use crate::table::Table;
use std::collections::BTreeMap;

/// A case-insensitive table namespace.
///
/// Keys are stored upper-cased; original table names are preserved on the
/// [`Table`] values themselves.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a table; errors if the name is taken.
    pub fn add_table(&mut self, table: Table) -> SqlResult<()> {
        let key = table.name().to_ascii_uppercase();
        if self.tables.contains_key(&key) {
            return Err(SqlError::Catalog(format!(
                "table {} already exists",
                table.name()
            )));
        }
        self.tables.insert(key, table);
        Ok(())
    }

    /// Replace or insert a table unconditionally.
    pub fn put_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_ascii_uppercase(), table);
    }

    /// Remove a table; returns it if present.
    pub fn remove_table(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(&name.to_ascii_uppercase())
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> SqlResult<&Table> {
        self.tables
            .get(&name.to_ascii_uppercase())
            .ok_or_else(|| SqlError::Catalog(format!("no such table: {name}")))
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, name: &str) -> SqlResult<&mut Table> {
        self.tables
            .get_mut(&name.to_ascii_uppercase())
            .ok_or_else(|| SqlError::Catalog(format!("no such table: {name}")))
    }

    /// Does a table exist?
    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&name.to_ascii_uppercase())
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.values().map(|t| t.name().to_owned()).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables exist.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType, Schema};

    fn table(name: &str) -> Table {
        Table::new(
            name,
            Schema::new(vec![Column::new("id", DataType::Integer)]).unwrap(),
        )
    }

    #[test]
    fn add_and_lookup_case_insensitive() {
        let mut c = Catalog::new();
        c.add_table(table("Schools")).unwrap();
        assert!(c.table("schools").is_ok());
        assert!(c.table("SCHOOLS").is_ok());
        assert_eq!(c.table("schools").unwrap().name(), "Schools");
        assert!(c.table("missing").is_err());
        assert!(c.contains("sChOoLs"));
    }

    #[test]
    fn duplicate_rejected() {
        let mut c = Catalog::new();
        c.add_table(table("t")).unwrap();
        assert!(c.add_table(table("T")).is_err());
        c.put_table(table("T")); // replace is fine
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove() {
        let mut c = Catalog::new();
        c.add_table(table("t")).unwrap();
        assert!(c.remove_table("T").is_some());
        assert!(c.remove_table("T").is_none());
        assert!(c.is_empty());
    }
}
