//! Rule-based plan optimizer.
//!
//! Rules applied (in order, to fixpoint-ish effect):
//!
//! 1. **Constant folding** of deterministic constant predicates.
//! 2. **Predicate pushdown**: filters split into conjuncts and pushed
//!    below projections (when safe), through joins to the producing side,
//!    and merged with adjacent filters.
//! 3. **Hash-join selection**: nested-loop equi-joins become hash joins
//!    with any non-equi conjuncts kept as residual predicates.
//! 4. **Index selection**: equality / range conjuncts over an indexed
//!    base-table column turn scans into index probes / range scans.
//! 5. **Top-k**: `Limit(Sort(x))` becomes a heap-based `TopK`.

use crate::ast::{BinOp, JoinKind};
use crate::catalog::Catalog;
use crate::expr::BoundExpr;
use crate::plan::{IndexRange, Plan};
use crate::table::IndexKind;
use crate::value::Value;
use std::collections::BTreeSet;
use std::ops::Bound;

/// Optimize a plan against the given catalog (used to discover indexes).
pub fn optimize(plan: Plan, catalog: &Catalog) -> Plan {
    let plan = rewrite(plan, catalog);
    // A second pass lets pushdowns enable index selection.
    rewrite(plan, catalog)
}

fn rewrite(plan: Plan, catalog: &Catalog) -> Plan {
    // Bottom-up: rewrite children first.
    let plan = map_children(plan, catalog);
    match plan {
        Plan::Filter { input, predicate } => rewrite_filter(*input, predicate, catalog),
        Plan::NestedLoopJoin {
            left,
            right,
            kind,
            on: Some(on),
        } => try_hash_join(*left, *right, kind, on),
        Plan::Limit {
            input,
            limit: Some(limit),
            offset,
        } => try_topk(*input, limit, offset),
        other => other,
    }
}

fn map_children(plan: Plan, catalog: &Catalog) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => Plan::Filter {
            input: Box::new(rewrite(*input, catalog)),
            predicate,
        },
        Plan::Project {
            input,
            exprs,
            columns,
        } => Plan::Project {
            input: Box::new(rewrite(*input, catalog)),
            exprs,
            columns,
        },
        Plan::NestedLoopJoin {
            left,
            right,
            kind,
            on,
        } => Plan::NestedLoopJoin {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
            kind,
            on,
        },
        Plan::HashJoin {
            left,
            right,
            kind,
            left_key,
            right_key,
            residual,
        } => Plan::HashJoin {
            left: Box::new(rewrite(*left, catalog)),
            right: Box::new(rewrite(*right, catalog)),
            kind,
            left_key,
            right_key,
            residual,
        },
        Plan::Aggregate {
            input,
            group,
            group_names,
            aggs,
        } => Plan::Aggregate {
            input: Box::new(rewrite(*input, catalog)),
            group,
            group_names,
            aggs,
        },
        Plan::Sort { input, keys } => Plan::Sort {
            input: Box::new(rewrite(*input, catalog)),
            keys,
        },
        Plan::TopK {
            input,
            keys,
            k,
            offset,
        } => Plan::TopK {
            input: Box::new(rewrite(*input, catalog)),
            keys,
            k,
            offset,
        },
        Plan::Limit {
            input,
            limit,
            offset,
        } => Plan::Limit {
            input: Box::new(rewrite(*input, catalog)),
            limit,
            offset,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(rewrite(*input, catalog)),
        },
        // Semantic plans have their own rule set (crate::semopt), applied
        // by the semantic runtime before caching; the relational
        // optimizer passes them through untouched.
        leaf @ (Plan::TableScan { .. }
        | Plan::IndexProbe { .. }
        | Plan::IndexRangeScan { .. }
        | Plan::Values { .. }
        | Plan::Sem { .. }) => leaf,
    }
}

/// Split a predicate into AND-ed conjuncts.
pub fn split_conjuncts(expr: BoundExpr, out: &mut Vec<BoundExpr>) {
    match expr {
        BoundExpr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => {
            split_conjuncts(*lhs, out);
            split_conjuncts(*rhs, out);
        }
        other => out.push(other),
    }
}

/// Reassemble conjuncts into one predicate.
fn conjoin(mut parts: Vec<BoundExpr>) -> Option<BoundExpr> {
    let first = parts.pop()?;
    Some(parts.into_iter().fold(first, |acc, p| BoundExpr::Binary {
        op: BinOp::And,
        lhs: Box::new(p),
        rhs: Box::new(acc),
    }))
}

fn rewrite_filter(input: Plan, predicate: BoundExpr, catalog: &Catalog) -> Plan {
    let mut conjuncts = Vec::new();
    split_conjuncts(predicate, &mut conjuncts);

    // Constant folding on each conjunct.
    let mut kept = Vec::new();
    for c in conjuncts {
        if c.is_constant() {
            match c.eval(&[]) {
                Ok(v) => match v.truthiness() {
                    Some(true) => continue, // always true: drop
                    Some(false) | None => {
                        // Always-false filter: emit an empty Values node
                        // with the right arity.
                        return empty_result_like(&input);
                    }
                },
                Err(_) => kept.push(c), // fold failed; evaluate at runtime
            }
        } else {
            kept.push(c);
        }
    }
    if kept.is_empty() {
        return input;
    }

    match input {
        // Merge stacked filters.
        Plan::Filter {
            input: inner,
            predicate: inner_pred,
        } => {
            let mut inner_parts = Vec::new();
            split_conjuncts(inner_pred, &mut inner_parts);
            inner_parts.extend(kept);
            rewrite_filter(*inner, conjoin(inner_parts).expect("nonempty"), catalog)
        }
        // Push through pure-column projections.
        Plan::Project {
            input: inner,
            exprs,
            columns,
        } => {
            let all_colrefs = exprs.iter().all(|e| matches!(e, BoundExpr::ColumnRef(_)));
            if all_colrefs {
                let mapping: Vec<usize> = exprs
                    .iter()
                    .map(|e| match e {
                        BoundExpr::ColumnRef(i) => *i,
                        _ => unreachable!(),
                    })
                    .collect();
                let remapped: Vec<BoundExpr> = kept
                    .into_iter()
                    .map(|c| c.remap_columns(&|i| mapping[i]))
                    .collect();
                let pushed = Plan::Filter {
                    input: inner,
                    predicate: conjoin(remapped).expect("nonempty"),
                };
                Plan::Project {
                    input: Box::new(rewrite(pushed, catalog)),
                    exprs,
                    columns,
                }
            } else {
                Plan::Filter {
                    input: Box::new(Plan::Project {
                        input: inner,
                        exprs,
                        columns,
                    }),
                    predicate: conjoin(kept).expect("nonempty"),
                }
            }
        }
        // Push into join sides.
        Plan::NestedLoopJoin {
            left,
            right,
            kind,
            on,
        } => push_into_join(*left, *right, kind, on, kept, catalog, |l, r, k, o| {
            Plan::NestedLoopJoin {
                left: Box::new(l),
                right: Box::new(r),
                kind: k,
                on: o,
            }
        }),
        Plan::HashJoin {
            left,
            right,
            kind,
            left_key,
            right_key,
            residual,
        } => push_into_join(*left, *right, kind, residual, kept, catalog, {
            let left_key = left_key.clone();
            let right_key = right_key.clone();
            move |l, r, k, res| Plan::HashJoin {
                left: Box::new(l),
                right: Box::new(r),
                kind: k,
                left_key: left_key.clone(),
                right_key: right_key.clone(),
                residual: res,
            }
        }),
        // Index selection over a base table scan.
        Plan::TableScan { table, columns } => index_select(table, columns, kept, catalog),
        other => Plan::Filter {
            input: Box::new(other),
            predicate: conjoin(kept).expect("nonempty"),
        },
    }
}

fn empty_result_like(input: &Plan) -> Plan {
    Plan::Values {
        columns: input.columns(),
        rows: Vec::new(),
    }
}

#[allow(clippy::too_many_arguments)]
fn push_into_join(
    left: Plan,
    right: Plan,
    kind: JoinKind,
    on: Option<BoundExpr>,
    conjuncts: Vec<BoundExpr>,
    catalog: &Catalog,
    rebuild: impl Fn(Plan, Plan, JoinKind, Option<BoundExpr>) -> Plan,
) -> Plan {
    let left_width = left.width();
    let mut push_left = Vec::new();
    let mut push_right = Vec::new();
    let mut stay = Vec::new();
    for c in conjuncts {
        let mut cols = BTreeSet::new();
        c.referenced_columns(&mut cols);
        let only_left = cols.iter().all(|&i| i < left_width);
        let only_right = cols.iter().all(|&i| i >= left_width);
        if only_left && !cols.is_empty() {
            push_left.push(c);
        } else if only_right && kind == JoinKind::Inner {
            // For LEFT joins, filtering the right side below the join
            // would turn non-matches into NULL rows instead of dropping
            // them, so the predicate must stay above.
            push_right.push(c.remap_columns(&|i| i - left_width));
        } else {
            stay.push(c);
        }
    }
    let new_left = if let Some(p) = conjoin(push_left) {
        rewrite(
            Plan::Filter {
                input: Box::new(left),
                predicate: p,
            },
            catalog,
        )
    } else {
        left
    };
    let new_right = if let Some(p) = conjoin(push_right) {
        rewrite(
            Plan::Filter {
                input: Box::new(right),
                predicate: p,
            },
            catalog,
        )
    } else {
        right
    };
    let joined = rewrite(rebuild(new_left, new_right, kind, on), catalog);
    match conjoin(stay) {
        Some(p) => Plan::Filter {
            input: Box::new(joined),
            predicate: p,
        },
        None => joined,
    }
}

/// Convert `Filter(TableScan)` into an index probe / range scan when an
/// index covers one of the conjuncts.
fn index_select(
    table: String,
    columns: Vec<String>,
    conjuncts: Vec<BoundExpr>,
    catalog: &Catalog,
) -> Plan {
    let Ok(t) = catalog.table(&table) else {
        return fallback_filter(table, columns, conjuncts);
    };

    // Find the first conjunct usable with an existing index.
    for (i, c) in conjuncts.iter().enumerate() {
        if let Some((col, key)) = as_eq_literal(c) {
            if let Some(idx) = t.index_on(col) {
                let _ = idx;
                let mut rest = conjuncts.clone();
                rest.remove(i);
                let probe = Plan::IndexProbe {
                    table,
                    columns,
                    key_column: col,
                    key,
                };
                return match conjoin(rest) {
                    Some(p) => Plan::Filter {
                        input: Box::new(probe),
                        predicate: p,
                    },
                    None => probe,
                };
            }
        }
        if let Some((col, range)) = as_range_literal(c) {
            if let Some(idx) = t.index_on(col) {
                if idx.kind() == IndexKind::BTree {
                    let mut rest = conjuncts.clone();
                    rest.remove(i);
                    let scan = Plan::IndexRangeScan {
                        table,
                        columns,
                        key_column: col,
                        range,
                    };
                    return match conjoin(rest) {
                        Some(p) => Plan::Filter {
                            input: Box::new(scan),
                            predicate: p,
                        },
                        None => scan,
                    };
                }
            }
        }
    }
    fallback_filter(table, columns, conjuncts)
}

fn fallback_filter(table: String, columns: Vec<String>, conjuncts: Vec<BoundExpr>) -> Plan {
    let scan = Plan::TableScan { table, columns };
    match conjoin(conjuncts) {
        Some(p) => Plan::Filter {
            input: Box::new(scan),
            predicate: p,
        },
        None => scan,
    }
}

/// Match `col = literal` (either orientation).
fn as_eq_literal(expr: &BoundExpr) -> Option<(usize, Value)> {
    if let BoundExpr::Binary {
        op: BinOp::Eq,
        lhs,
        rhs,
    } = expr
    {
        match (lhs.as_ref(), rhs.as_ref()) {
            (BoundExpr::ColumnRef(i), BoundExpr::Literal(v))
            | (BoundExpr::Literal(v), BoundExpr::ColumnRef(i))
                if !v.is_null() =>
            {
                return Some((*i, v.clone()));
            }
            _ => {}
        }
    }
    None
}

/// Match `col < / <= / > / >= literal` or `col BETWEEN lit AND lit`.
fn as_range_literal(expr: &BoundExpr) -> Option<(usize, IndexRange)> {
    match expr {
        BoundExpr::Binary { op, lhs, rhs } => {
            let (col, lit, op) = match (lhs.as_ref(), rhs.as_ref()) {
                (BoundExpr::ColumnRef(i), BoundExpr::Literal(v)) if !v.is_null() => {
                    (*i, v.clone(), *op)
                }
                (BoundExpr::Literal(v), BoundExpr::ColumnRef(i)) if !v.is_null() => {
                    // Flip the comparison: lit op col  ==  col flip(op) lit
                    let flipped = match op {
                        BinOp::Lt => BinOp::Gt,
                        BinOp::LtEq => BinOp::GtEq,
                        BinOp::Gt => BinOp::Lt,
                        BinOp::GtEq => BinOp::LtEq,
                        other => *other,
                    };
                    (*i, v.clone(), flipped)
                }
                _ => return None,
            };
            let range = match op {
                BinOp::Lt => IndexRange {
                    // Exclude NULLs, which sort below every value.
                    low: Bound::Excluded(Value::Null),
                    high: Bound::Excluded(lit),
                },
                BinOp::LtEq => IndexRange {
                    low: Bound::Excluded(Value::Null),
                    high: Bound::Included(lit),
                },
                BinOp::Gt => IndexRange {
                    low: Bound::Excluded(lit),
                    high: Bound::Unbounded,
                },
                BinOp::GtEq => IndexRange {
                    low: Bound::Included(lit),
                    high: Bound::Unbounded,
                },
                _ => return None,
            };
            Some((col, range))
        }
        BoundExpr::Between {
            expr,
            low,
            high,
            negated: false,
        } => match (expr.as_ref(), low.as_ref(), high.as_ref()) {
            (BoundExpr::ColumnRef(i), BoundExpr::Literal(lo), BoundExpr::Literal(hi))
                if !lo.is_null() && !hi.is_null() =>
            {
                Some((
                    *i,
                    IndexRange {
                        low: Bound::Included(lo.clone()),
                        high: Bound::Included(hi.clone()),
                    },
                ))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Detect equi-join conjuncts in `on` and build a hash join.
fn try_hash_join(left: Plan, right: Plan, kind: JoinKind, on: BoundExpr) -> Plan {
    let left_width = left.width();
    let mut conjuncts = Vec::new();
    split_conjuncts(on, &mut conjuncts);

    let mut key_pair: Option<(BoundExpr, BoundExpr)> = None;
    let mut residual = Vec::new();
    for c in conjuncts {
        if key_pair.is_none() {
            if let BoundExpr::Binary {
                op: BinOp::Eq,
                lhs,
                rhs,
            } = &c
            {
                let mut lcols = BTreeSet::new();
                let mut rcols = BTreeSet::new();
                lhs.referenced_columns(&mut lcols);
                rhs.referenced_columns(&mut rcols);
                let l_left = !lcols.is_empty() && lcols.iter().all(|&i| i < left_width);
                let l_right = !lcols.is_empty() && lcols.iter().all(|&i| i >= left_width);
                let r_left = !rcols.is_empty() && rcols.iter().all(|&i| i < left_width);
                let r_right = !rcols.is_empty() && rcols.iter().all(|&i| i >= left_width);
                if l_left && r_right {
                    key_pair = Some(((**lhs).clone(), rhs.remap_columns(&|i| i - left_width)));
                    continue;
                }
                if l_right && r_left {
                    key_pair = Some(((**rhs).clone(), lhs.remap_columns(&|i| i - left_width)));
                    continue;
                }
            }
        }
        residual.push(c);
    }

    match key_pair {
        Some((left_key, right_key)) => Plan::HashJoin {
            left: Box::new(left),
            right: Box::new(right),
            kind,
            left_key,
            right_key,
            residual: conjoin(residual),
        },
        None => Plan::NestedLoopJoin {
            left: Box::new(left),
            right: Box::new(right),
            kind,
            on: conjoin(residual),
        },
    }
}

/// `Limit(Sort)` and `Limit(Project(Sort))` become TopK.
fn try_topk(input: Plan, limit: u64, offset: u64) -> Plan {
    match input {
        Plan::Sort { input, keys } => Plan::TopK {
            input,
            keys,
            k: limit as usize,
            offset: offset as usize,
        },
        Plan::Project {
            input: proj_input,
            exprs,
            columns,
        } => match *proj_input {
            Plan::Sort { input, keys } => Plan::Project {
                input: Box::new(Plan::TopK {
                    input,
                    keys,
                    k: limit as usize,
                    offset: offset as usize,
                }),
                exprs,
                columns,
            },
            other => Plan::Limit {
                input: Box::new(Plan::Project {
                    input: Box::new(other),
                    exprs,
                    columns,
                }),
                limit: Some(limit),
                offset,
            },
        },
        other => Plan::Limit {
            input: Box::new(other),
            limit: Some(limit),
            offset,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SortKey;
    use crate::schema::{Column, DataType, Schema};
    use crate::table::Table;

    fn catalog_with_index() -> Catalog {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("id", DataType::Integer),
                Column::new("name", DataType::Text),
            ])
            .unwrap(),
        );
        for i in 0..100 {
            t.insert(vec![Value::Int(i), Value::text(format!("n{i}"))])
                .unwrap();
        }
        t.create_index("idx_id", "id", IndexKind::BTree, false)
            .unwrap();
        let mut c = Catalog::new();
        c.add_table(t).unwrap();
        c
    }

    fn scan() -> Plan {
        Plan::TableScan {
            table: "t".into(),
            columns: vec!["id".into(), "name".into()],
        }
    }

    fn eq(col: usize, v: i64) -> BoundExpr {
        BoundExpr::Binary {
            op: BinOp::Eq,
            lhs: Box::new(BoundExpr::ColumnRef(col)),
            rhs: Box::new(BoundExpr::Literal(Value::Int(v))),
        }
    }

    #[test]
    fn equality_filter_uses_index() {
        let c = catalog_with_index();
        let plan = Plan::Filter {
            input: Box::new(scan()),
            predicate: eq(0, 42),
        };
        let opt = optimize(plan, &c);
        assert!(
            matches!(opt, Plan::IndexProbe { key_column: 0, .. }),
            "expected IndexProbe, got:\n{}",
            opt.explain()
        );
        let rows = crate::exec::execute(&opt, &c).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(42));
    }

    #[test]
    fn range_filter_uses_btree() {
        let c = catalog_with_index();
        let plan = Plan::Filter {
            input: Box::new(scan()),
            predicate: BoundExpr::Binary {
                op: BinOp::Lt,
                lhs: Box::new(BoundExpr::ColumnRef(0)),
                rhs: Box::new(BoundExpr::Literal(Value::Int(5))),
            },
        };
        let opt = optimize(plan, &c);
        assert!(
            matches!(opt, Plan::IndexRangeScan { .. }),
            "got:\n{}",
            opt.explain()
        );
        let rows = crate::exec::execute(&opt, &c).unwrap();
        assert_eq!(rows.len(), 5);
    }

    #[test]
    fn residual_kept_when_index_used() {
        let c = catalog_with_index();
        let pred = BoundExpr::Binary {
            op: BinOp::And,
            lhs: Box::new(eq(0, 42)),
            rhs: Box::new(BoundExpr::Binary {
                op: BinOp::Like,
                lhs: Box::new(BoundExpr::ColumnRef(1)),
                rhs: Box::new(BoundExpr::Literal(Value::text("n%"))),
            }),
        };
        let plan = Plan::Filter {
            input: Box::new(scan()),
            predicate: pred,
        };
        let opt = optimize(plan, &c);
        match &opt {
            Plan::Filter { input, .. } => {
                assert!(matches!(**input, Plan::IndexProbe { .. }));
            }
            other => panic!("expected Filter(IndexProbe), got:\n{}", other.explain()),
        }
    }

    #[test]
    fn always_false_becomes_empty_values() {
        let c = catalog_with_index();
        let plan = Plan::Filter {
            input: Box::new(scan()),
            predicate: BoundExpr::Literal(Value::from(false)),
        };
        let opt = optimize(plan, &c);
        assert!(matches!(&opt, Plan::Values { rows, .. } if rows.is_empty()));
        // Arity preserved.
        assert_eq!(opt.width(), 2);
    }

    #[test]
    fn always_true_dropped() {
        let c = catalog_with_index();
        let plan = Plan::Filter {
            input: Box::new(scan()),
            predicate: BoundExpr::Literal(Value::from(true)),
        };
        let opt = optimize(plan, &c);
        assert!(matches!(opt, Plan::TableScan { .. }));
    }

    #[test]
    fn equi_join_becomes_hash_join() {
        let c = catalog_with_index();
        let plan = Plan::NestedLoopJoin {
            left: Box::new(scan()),
            right: Box::new(scan()),
            kind: JoinKind::Inner,
            on: Some(BoundExpr::Binary {
                op: BinOp::Eq,
                lhs: Box::new(BoundExpr::ColumnRef(0)),
                rhs: Box::new(BoundExpr::ColumnRef(2)),
            }),
        };
        let opt = optimize(plan, &c);
        match &opt {
            Plan::HashJoin { residual, .. } => assert!(residual.is_none()),
            other => panic!("expected HashJoin, got:\n{}", other.explain()),
        }
        let rows = crate::exec::execute(&opt, &c).unwrap();
        assert_eq!(rows.len(), 100);
    }

    #[test]
    fn filter_pushes_through_join() {
        let c = catalog_with_index();
        let join = Plan::NestedLoopJoin {
            left: Box::new(scan()),
            right: Box::new(scan()),
            kind: JoinKind::Inner,
            on: Some(BoundExpr::Binary {
                op: BinOp::Eq,
                lhs: Box::new(BoundExpr::ColumnRef(0)),
                rhs: Box::new(BoundExpr::ColumnRef(2)),
            }),
        };
        // Left-side predicate id = 7 should reach the left scan and
        // become an index probe.
        let plan = Plan::Filter {
            input: Box::new(join),
            predicate: eq(0, 7),
        };
        let opt = optimize(plan, &c);
        fn contains_probe(p: &Plan) -> bool {
            match p {
                Plan::IndexProbe { .. } => true,
                Plan::Filter { input, .. }
                | Plan::Project { input, .. }
                | Plan::Sort { input, .. }
                | Plan::TopK { input, .. }
                | Plan::Limit { input, .. }
                | Plan::Distinct { input } => contains_probe(input),
                Plan::NestedLoopJoin { left, right, .. } | Plan::HashJoin { left, right, .. } => {
                    contains_probe(left) || contains_probe(right)
                }
                Plan::Aggregate { input, .. } => contains_probe(input),
                _ => false,
            }
        }
        assert!(contains_probe(&opt), "plan:\n{}", opt.explain());
        let rows = crate::exec::execute(&opt, &c).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn left_join_right_filter_not_pushed() {
        let c = catalog_with_index();
        let join = Plan::NestedLoopJoin {
            left: Box::new(scan()),
            right: Box::new(scan()),
            kind: JoinKind::Left,
            on: Some(BoundExpr::Binary {
                op: BinOp::Eq,
                lhs: Box::new(BoundExpr::ColumnRef(0)),
                rhs: Box::new(BoundExpr::ColumnRef(2)),
            }),
        };
        let plan = Plan::Filter {
            input: Box::new(join),
            predicate: eq(2, 7), // right-side column
        };
        let opt = optimize(plan, &c);
        // Must stay a Filter above the join.
        assert!(
            matches!(&opt, Plan::Filter { input, .. }
                if matches!(**input, Plan::HashJoin { .. } | Plan::NestedLoopJoin { .. })),
            "plan:\n{}",
            opt.explain()
        );
    }

    #[test]
    fn limit_sort_becomes_topk() {
        let c = catalog_with_index();
        let plan = Plan::Limit {
            input: Box::new(Plan::Sort {
                input: Box::new(scan()),
                keys: vec![SortKey {
                    expr: BoundExpr::ColumnRef(0),
                    descending: true,
                }],
            }),
            limit: Some(5),
            offset: 0,
        };
        let opt = optimize(plan, &c);
        assert!(matches!(opt, Plan::TopK { k: 5, .. }));
    }

    #[test]
    fn filter_pushes_through_colref_project() {
        let c = catalog_with_index();
        let plan = Plan::Filter {
            input: Box::new(Plan::Project {
                input: Box::new(scan()),
                exprs: vec![BoundExpr::ColumnRef(1), BoundExpr::ColumnRef(0)],
                columns: vec!["name".into(), "id".into()],
            }),
            predicate: eq(1, 33), // projected col 1 is base col 0 (id)
        };
        let opt = optimize(plan, &c);
        match &opt {
            Plan::Project { input, .. } => {
                assert!(
                    matches!(**input, Plan::IndexProbe { .. }),
                    "plan:\n{}",
                    opt.explain()
                );
            }
            other => panic!("expected Project on top, got:\n{}", other.explain()),
        }
    }
}
