//! Built-in scalar functions (SQLite-compatible subset).

use crate::error::{SqlError, SqlResult};
use crate::value::Value;

/// Evaluate a built-in scalar function, or return `None` if the name is
/// not a built-in (the caller then consults the UDF registry).
pub fn eval_builtin(name: &str, args: &[Value]) -> Option<SqlResult<Value>> {
    let upper = name.to_ascii_uppercase();
    let result = match upper.as_str() {
        "ABS" => Some(unary(args, &upper, |v| match v.coerce_numeric()? {
            Value::Int(i) => Ok(Value::Int(i.abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            _ => Ok(Value::Null),
        })),
        "LOWER" => Some(unary_text(args, &upper, |s| s.to_lowercase())),
        "UPPER" => Some(unary_text(args, &upper, |s| s.to_uppercase())),
        "LENGTH" => Some(unary(args, &upper, |v| match v {
            Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
            other => Ok(Value::Int(other.to_string().chars().count() as i64)),
        })),
        "TRIM" => Some(unary_text(args, &upper, |s| s.trim().to_owned())),
        "LTRIM" => Some(unary_text(args, &upper, |s| s.trim_start().to_owned())),
        "RTRIM" => Some(unary_text(args, &upper, |s| s.trim_end().to_owned())),
        "ROUND" => Some(round(args)),
        "COALESCE" => Some(Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null))),
        "IFNULL" => Some(if args.len() == 2 {
            Ok(if args[0].is_null() {
                args[1].clone()
            } else {
                args[0].clone()
            })
        } else {
            Err(arity_err(&upper, 2, args.len()))
        }),
        "NULLIF" => Some(if args.len() == 2 {
            Ok(match args[0].sql_eq(&args[1]) {
                Some(true) => Value::Null,
                _ => args[0].clone(),
            })
        } else {
            Err(arity_err(&upper, 2, args.len()))
        }),
        "SUBSTR" | "SUBSTRING" => Some(substr(args)),
        "REPLACE" => Some(if args.len() == 3 {
            if args.iter().any(Value::is_null) {
                Ok(Value::Null)
            } else {
                Ok(Value::Text(
                    args[0]
                        .to_string()
                        .replace(&args[1].to_string(), &args[2].to_string()),
                ))
            }
        } else {
            Err(arity_err(&upper, 3, args.len()))
        }),
        "INSTR" => Some(if args.len() == 2 {
            if args.iter().any(Value::is_null) {
                Ok(Value::Null)
            } else {
                let hay = args[0].to_string();
                let needle = args[1].to_string();
                Ok(Value::Int(
                    hay.find(&needle)
                        .map(|byte| hay[..byte].chars().count() as i64 + 1)
                        .unwrap_or(0),
                ))
            }
        } else {
            Err(arity_err(&upper, 2, args.len()))
        }),
        "TYPEOF" => Some(unary(args, &upper, |v| {
            Ok(Value::text(match v {
                Value::Null => "null",
                Value::Int(_) => "integer",
                Value::Float(_) => "real",
                Value::Text(_) => "text",
            }))
        })),
        // Scalar MIN/MAX over 2+ arguments (SQLite semantics). Note the
        // single-argument forms are aggregates and never reach here.
        "MIN" if args.len() >= 2 => Some(Ok(minmax(args, true))),
        "MAX" if args.len() >= 2 => Some(Ok(minmax(args, false))),
        _ => None,
    };
    result
}

fn arity_err(name: &str, want: usize, got: usize) -> SqlError {
    SqlError::Eval(format!("{name} expects {want} argument(s), got {got}"))
}

fn unary(args: &[Value], name: &str, f: impl Fn(&Value) -> SqlResult<Value>) -> SqlResult<Value> {
    if args.len() != 1 {
        return Err(arity_err(name, 1, args.len()));
    }
    if args[0].is_null() {
        return Ok(Value::Null);
    }
    f(&args[0])
}

fn unary_text(args: &[Value], name: &str, f: impl Fn(&str) -> String) -> SqlResult<Value> {
    unary(args, name, |v| Ok(Value::Text(f(&v.to_string()))))
}

fn round(args: &[Value]) -> SqlResult<Value> {
    if args.is_empty() || args.len() > 2 {
        return Err(SqlError::Eval(format!(
            "ROUND expects 1 or 2 arguments, got {}",
            args.len()
        )));
    }
    if args[0].is_null() {
        return Ok(Value::Null);
    }
    let x = args[0]
        .as_f64()
        .ok_or_else(|| SqlError::Type("ROUND expects a numeric argument".into()))?;
    let digits = if args.len() == 2 {
        args[1].as_i64().unwrap_or(0).clamp(-15, 15)
    } else {
        0
    };
    let factor = 10f64.powi(digits as i32);
    Ok(Value::Float((x * factor).round() / factor))
}

fn substr(args: &[Value]) -> SqlResult<Value> {
    if args.len() < 2 || args.len() > 3 {
        return Err(SqlError::Eval(format!(
            "SUBSTR expects 2 or 3 arguments, got {}",
            args.len()
        )));
    }
    if args[0].is_null() || args[1].is_null() {
        return Ok(Value::Null);
    }
    let s: Vec<char> = args[0].to_string().chars().collect();
    // SQLite: 1-based start; negative counts from the end.
    let start = args[1]
        .as_i64()
        .ok_or_else(|| SqlError::Type("SUBSTR start must be an integer".into()))?;
    let len = match args.get(2) {
        Some(v) if v.is_null() => return Ok(Value::Null),
        Some(v) => Some(
            v.as_i64()
                .ok_or_else(|| SqlError::Type("SUBSTR length must be an integer".into()))?
                .max(0) as usize,
        ),
        None => None,
    };
    let begin = if start > 0 {
        (start - 1) as usize
    } else if start == 0 {
        0
    } else {
        s.len().saturating_sub((-start) as usize)
    };
    if begin >= s.len() {
        return Ok(Value::text(""));
    }
    let end = match len {
        Some(l) => (begin + l).min(s.len()),
        None => s.len(),
    };
    Ok(Value::Text(s[begin..end].iter().collect()))
}

fn minmax(args: &[Value], want_min: bool) -> Value {
    if args.iter().any(Value::is_null) {
        return Value::Null;
    }
    let mut best = args[0].clone();
    for v in &args[1..] {
        let replace = if want_min { v < &best } else { v > &best };
        if replace {
            best = v.clone();
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(name: &str, args: &[Value]) -> Value {
        eval_builtin(name, args).unwrap().unwrap()
    }

    #[test]
    fn abs_lower_upper_length() {
        assert_eq!(call("abs", &[Value::Int(-3)]), Value::Int(3));
        assert_eq!(call("ABS", &[Value::Float(-2.5)]), Value::Float(2.5));
        assert_eq!(call("lower", &[Value::text("AbC")]), Value::text("abc"));
        assert_eq!(call("UPPER", &[Value::text("aé")]), Value::text("AÉ"));
        assert_eq!(call("length", &[Value::text("héllo")]), Value::Int(5));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(call("abs", &[Value::Null]), Value::Null);
        assert_eq!(call("lower", &[Value::Null]), Value::Null);
        assert_eq!(
            call("coalesce", &[Value::Null, Value::Null, Value::Int(3)]),
            Value::Int(3)
        );
        assert_eq!(call("coalesce", &[Value::Null]), Value::Null);
    }

    #[test]
    fn round_with_digits() {
        assert_eq!(call("round", &[Value::Float(2.567)]), Value::Float(3.0));
        assert_eq!(
            call("round", &[Value::Float(2.567), Value::Int(2)]),
            Value::Float(2.57)
        );
        assert_eq!(
            call("round", &[Value::Float(1234.5), Value::Int(-2)]),
            Value::Float(1200.0)
        );
    }

    #[test]
    fn substr_positions() {
        let s = Value::text("database");
        assert_eq!(
            call("substr", &[s.clone(), Value::Int(1), Value::Int(4)]),
            Value::text("data")
        );
        assert_eq!(
            call("substr", &[s.clone(), Value::Int(5)]),
            Value::text("base")
        );
        assert_eq!(
            call("substr", &[s.clone(), Value::Int(-4)]),
            Value::text("base")
        );
        assert_eq!(
            call("substr", &[s.clone(), Value::Int(100)]),
            Value::text("")
        );
        assert_eq!(
            call("substr", &[s, Value::Int(0), Value::Int(2)]),
            Value::text("da")
        );
    }

    #[test]
    fn replace_instr() {
        assert_eq!(
            call(
                "replace",
                &[Value::text("a-b-c"), Value::text("-"), Value::text("+")]
            ),
            Value::text("a+b+c")
        );
        assert_eq!(
            call("instr", &[Value::text("hello"), Value::text("ll")]),
            Value::Int(3)
        );
        assert_eq!(
            call("instr", &[Value::text("hello"), Value::text("z")]),
            Value::Int(0)
        );
    }

    #[test]
    fn nullif_ifnull_typeof() {
        assert_eq!(call("nullif", &[Value::Int(1), Value::Int(1)]), Value::Null);
        assert_eq!(
            call("nullif", &[Value::Int(1), Value::Int(2)]),
            Value::Int(1)
        );
        assert_eq!(
            call("ifnull", &[Value::Null, Value::text("x")]),
            Value::text("x")
        );
        assert_eq!(call("typeof", &[Value::Float(1.0)]), Value::text("real"));
    }

    #[test]
    fn scalar_min_max() {
        assert_eq!(
            call("min", &[Value::Int(3), Value::Int(1), Value::Int(2)]),
            Value::Int(1)
        );
        assert_eq!(
            call("max", &[Value::Int(3), Value::Float(3.5)]),
            Value::Float(3.5)
        );
        assert_eq!(call("max", &[Value::Int(3), Value::Null]), Value::Null);
    }

    #[test]
    fn unknown_returns_none() {
        assert!(eval_builtin("not_a_function", &[]).is_none());
        // MIN with one arg is the aggregate, not the scalar builtin.
        assert!(eval_builtin("min", &[Value::Int(1)]).is_none());
    }

    #[test]
    fn arity_errors() {
        assert!(eval_builtin("abs", &[]).unwrap().is_err());
        assert!(eval_builtin("replace", &[Value::Null]).unwrap().is_err());
    }
}
