//! Bound expressions: name-resolved expression trees that evaluate
//! directly against a row.
//!
//! The planner binds [`crate::ast::Expr`] syntax trees into [`BoundExpr`]
//! by resolving column references to positions, executing *uncorrelated*
//! subqueries eagerly, embedding *correlated* subqueries as plans with
//! [`BoundExpr::OuterRef`] placeholders (re-executed per outer row), and
//! resolving function names against built-ins and the UDF registry.

use crate::ast::{BinOp, UnOp};
use crate::error::{SqlError, SqlResult};
use crate::functions::eval_builtin;
use crate::schema::DataType;
use crate::udf::ScalarUdf;
use crate::value::{arith, like_match, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// A fully bound expression, evaluable against a row slice.
#[derive(Clone)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum BoundExpr {
    /// Constant.
    Literal(Value),
    /// Input column by position.
    ColumnRef(usize),
    /// A reference to the *enclosing* query's row (inside a correlated
    /// subquery plan). Substituted with a literal before the subplan runs.
    OuterRef(usize),
    /// Binary operation.
    Binary {
        op: BinOp,
        lhs: Box<BoundExpr>,
        rhs: Box<BoundExpr>,
    },
    /// Unary operation.
    Unary { op: UnOp, operand: Box<BoundExpr> },
    /// `IS [NOT] NULL`.
    IsNull { expr: Box<BoundExpr>, negated: bool },
    /// `[NOT] BETWEEN`.
    Between {
        expr: Box<BoundExpr>,
        low: Box<BoundExpr>,
        high: Box<BoundExpr>,
        negated: bool,
    },
    /// `[NOT] IN (expr, ...)`.
    InList {
        expr: Box<BoundExpr>,
        list: Vec<BoundExpr>,
        negated: bool,
    },
    /// `[NOT] IN (<materialized subquery result>)`.
    InSet {
        expr: Box<BoundExpr>,
        set: Arc<HashSet<Value>>,
        set_has_null: bool,
        negated: bool,
    },
    /// CASE expression.
    Case {
        operand: Option<Box<BoundExpr>>,
        branches: Vec<(BoundExpr, BoundExpr)>,
        else_branch: Option<Box<BoundExpr>>,
    },
    /// CAST.
    Cast {
        expr: Box<BoundExpr>,
        dtype: DataType,
    },
    /// Correlated `[NOT] EXISTS (SELECT ...)`: the subplan contains
    /// `OuterRef`s and is re-executed per outer row.
    CorrelatedExists {
        plan: Box<crate::plan::Plan>,
        negated: bool,
    },
    /// Correlated scalar subquery, re-executed per outer row.
    CorrelatedScalar { plan: Box<crate::plan::Plan> },
    /// Correlated `[NOT] IN (SELECT ...)`, re-executed per outer row.
    CorrelatedIn {
        expr: Box<BoundExpr>,
        plan: Box<crate::plan::Plan>,
        negated: bool,
    },
    /// Built-in scalar function, dispatched by name.
    Builtin { name: String, args: Vec<BoundExpr> },
    /// User-defined scalar function.
    Udf {
        udf: Arc<dyn ScalarUdf>,
        args: Vec<BoundExpr>,
    },
}

impl std::fmt::Debug for BoundExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BoundExpr::Literal(v) => write!(f, "{}", v.to_sql_literal()),
            BoundExpr::ColumnRef(i) => write!(f, "#{i}"),
            BoundExpr::OuterRef(i) => write!(f, "outer#{i}"),
            BoundExpr::CorrelatedExists { negated, .. } => {
                write!(
                    f,
                    "({}EXISTS <correlated>)",
                    if *negated { "NOT " } else { "" }
                )
            }
            BoundExpr::CorrelatedScalar { .. } => write!(f, "<correlated scalar>"),
            BoundExpr::CorrelatedIn { expr, negated, .. } => write!(
                f,
                "({expr:?} {}IN <correlated>)",
                if *negated { "NOT " } else { "" }
            ),
            BoundExpr::Binary { op, lhs, rhs } => write!(f, "({lhs:?} {op} {rhs:?})"),
            BoundExpr::Unary { op, operand } => match op {
                UnOp::Neg => write!(f, "(-{operand:?})"),
                UnOp::Not => write!(f, "(NOT {operand:?})"),
            },
            BoundExpr::IsNull { expr, negated } => {
                write!(
                    f,
                    "({expr:?} IS {}NULL)",
                    if *negated { "NOT " } else { "" }
                )
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "({expr:?} {}BETWEEN {low:?} AND {high:?})",
                if *negated { "NOT " } else { "" }
            ),
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                write!(
                    f,
                    "({expr:?} {}IN {list:?})",
                    if *negated { "NOT " } else { "" }
                )
            }
            BoundExpr::InSet {
                expr, set, negated, ..
            } => write!(
                f,
                "({expr:?} {}IN <set of {}>)",
                if *negated { "NOT " } else { "" },
                set.len()
            ),
            BoundExpr::Case { .. } => write!(f, "CASE ..."),
            BoundExpr::Cast { expr, dtype } => write!(f, "CAST({expr:?} AS {dtype})"),
            BoundExpr::Builtin { name, args } => write!(f, "{name}({args:?})"),
            BoundExpr::Udf { udf, args } => write!(f, "{}({args:?})", udf.name()),
        }
    }
}

/// Evaluation context: correlated subqueries need catalog access to run
/// their subplans; plain expressions don't.
#[derive(Clone, Copy, Default)]
pub struct EvalCtx<'a> {
    /// The catalog for correlated-subquery execution, if available.
    pub catalog: Option<&'a crate::catalog::Catalog>,
}

impl BoundExpr {
    /// Evaluate against a row with no subquery context. Errors if the
    /// expression contains a correlated subquery (use [`Self::eval_ctx`]
    /// from execution paths that hold a catalog).
    pub fn eval(&self, row: &[Value]) -> SqlResult<Value> {
        self.eval_ctx(row, &EvalCtx::default())
    }

    /// Evaluate against a row, with catalog access for correlated
    /// subqueries.
    pub fn eval_ctx(&self, row: &[Value], ctx: &EvalCtx<'_>) -> SqlResult<Value> {
        match self {
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::ColumnRef(i) => row.get(*i).cloned().ok_or_else(|| {
                SqlError::Eval(format!(
                    "column reference #{i} out of bounds for row of width {}",
                    row.len()
                ))
            }),
            BoundExpr::OuterRef(i) => Err(SqlError::Eval(format!(
                "unsubstituted outer reference outer#{i} (correlated subquery \
                 evaluated outside its enclosing query)"
            ))),
            BoundExpr::CorrelatedExists { plan, negated } => {
                let rows = run_correlated(plan, row, ctx)?;
                Ok(Value::from(rows.is_empty() == *negated))
            }
            BoundExpr::CorrelatedScalar { plan } => {
                let rows = run_correlated(plan, row, ctx)?;
                if rows.len() > 1 {
                    return Err(SqlError::Eval(format!(
                        "correlated scalar subquery returned {} rows",
                        rows.len()
                    )));
                }
                match rows.into_iter().next() {
                    Some(r) if r.len() == 1 => Ok(r.into_iter().next().expect("one column")),
                    Some(r) => Err(SqlError::Eval(format!(
                        "correlated scalar subquery returned {} columns",
                        r.len()
                    ))),
                    None => Ok(Value::Null),
                }
            }
            BoundExpr::CorrelatedIn {
                expr,
                plan,
                negated,
            } => {
                let v = expr.eval_ctx(row, ctx)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let rows = run_correlated(plan, row, ctx)?;
                let mut saw_null = false;
                for mut r in rows {
                    if r.len() != 1 {
                        return Err(SqlError::Eval(
                            "correlated IN subquery must return one column".into(),
                        ));
                    }
                    let w = r.pop().expect("one column");
                    match v.sql_eq(&w) {
                        Some(true) => return Ok(Value::from(!*negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::from(*negated))
                }
            }
            BoundExpr::Binary { op, lhs, rhs } => eval_binary(*op, lhs, rhs, row, ctx),
            BoundExpr::Unary { op, operand } => {
                let v = operand.eval_ctx(row, ctx)?;
                match op {
                    UnOp::Neg => arith::neg(&v),
                    UnOp::Not => Ok(match v.truthiness() {
                        None => Value::Null,
                        Some(b) => Value::from(!b),
                    }),
                }
            }
            BoundExpr::IsNull { expr, negated } => {
                let v = expr.eval_ctx(row, ctx)?;
                Ok(Value::from(v.is_null() != *negated))
            }
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval_ctx(row, ctx)?;
                let lo = low.eval_ctx(row, ctx)?;
                let hi = high.eval_ctx(row, ctx)?;
                let ge = v.sql_cmp(&lo).map(|o| o != std::cmp::Ordering::Less);
                let le = v.sql_cmp(&hi).map(|o| o != std::cmp::Ordering::Greater);
                Ok(match (ge, le) {
                    (Some(a), Some(b)) => Value::from((a && b) != *negated),
                    // three-valued: definite false short-circuits NULL
                    (Some(false), None) | (None, Some(false)) => Value::from(*negated),
                    _ => Value::Null,
                })
            }
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval_ctx(row, ctx)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let w = item.eval_ctx(row, ctx)?;
                    match v.sql_eq(&w) {
                        Some(true) => return Ok(Value::from(!*negated)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::from(*negated))
                }
            }
            BoundExpr::InSet {
                expr,
                set,
                set_has_null,
                negated,
            } => {
                let v = expr.eval_ctx(row, ctx)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                if set.contains(&v) {
                    Ok(Value::from(!*negated))
                } else if *set_has_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::from(*negated))
                }
            }
            BoundExpr::Case {
                operand,
                branches,
                else_branch,
            } => {
                match operand {
                    Some(op_expr) => {
                        let v = op_expr.eval_ctx(row, ctx)?;
                        for (when, then) in branches {
                            let w = when.eval_ctx(row, ctx)?;
                            if v.sql_eq(&w) == Some(true) {
                                return then.eval_ctx(row, ctx);
                            }
                        }
                    }
                    None => {
                        for (when, then) in branches {
                            if when.eval_ctx(row, ctx)?.truthiness() == Some(true) {
                                return then.eval_ctx(row, ctx);
                            }
                        }
                    }
                }
                match else_branch {
                    Some(e) => e.eval_ctx(row, ctx),
                    None => Ok(Value::Null),
                }
            }
            BoundExpr::Cast { expr, dtype } => Ok(dtype.coerce(&expr.eval_ctx(row, ctx)?)),
            BoundExpr::Builtin { name, args } => {
                let vals = args
                    .iter()
                    .map(|a| a.eval_ctx(row, ctx))
                    .collect::<SqlResult<Vec<_>>>()?;
                eval_builtin(name, &vals)
                    .unwrap_or_else(|| Err(SqlError::Binding(format!("unknown built-in {name:?}"))))
            }
            BoundExpr::Udf { udf, args } => {
                let vals = args
                    .iter()
                    .map(|a| a.eval_ctx(row, ctx))
                    .collect::<SqlResult<Vec<_>>>()?;
                if let Some(n) = udf.arity() {
                    if vals.len() != n {
                        return Err(SqlError::Udf(format!(
                            "{} expects {n} argument(s), got {}",
                            udf.name(),
                            vals.len()
                        )));
                    }
                }
                udf.call(&vals)
            }
        }
    }

    /// Evaluate as a predicate: NULL counts as false (SQL WHERE semantics).
    pub fn eval_predicate(&self, row: &[Value]) -> SqlResult<bool> {
        Ok(self.eval(row)?.truthiness().unwrap_or(false))
    }

    /// Predicate evaluation with catalog context (correlated subqueries).
    pub fn eval_predicate_ctx(&self, row: &[Value], ctx: &EvalCtx<'_>) -> SqlResult<bool> {
        Ok(self.eval_ctx(row, ctx)?.truthiness().unwrap_or(false))
    }

    /// Is this a constant expression (no column references)?
    pub fn is_constant(&self) -> bool {
        match self {
            BoundExpr::Literal(_) => true,
            BoundExpr::ColumnRef(_) | BoundExpr::OuterRef(_) => false,
            BoundExpr::CorrelatedExists { .. }
            | BoundExpr::CorrelatedScalar { .. }
            | BoundExpr::CorrelatedIn { .. } => false,
            BoundExpr::Binary { lhs, rhs, .. } => lhs.is_constant() && rhs.is_constant(),
            BoundExpr::Unary { operand, .. } => operand.is_constant(),
            BoundExpr::IsNull { expr, .. } => expr.is_constant(),
            BoundExpr::Between {
                expr, low, high, ..
            } => expr.is_constant() && low.is_constant() && high.is_constant(),
            BoundExpr::InList { expr, list, .. } => {
                expr.is_constant() && list.iter().all(BoundExpr::is_constant)
            }
            BoundExpr::InSet { expr, .. } => expr.is_constant(),
            BoundExpr::Case {
                operand,
                branches,
                else_branch,
            } => {
                operand.as_deref().is_none_or(BoundExpr::is_constant)
                    && branches
                        .iter()
                        .all(|(w, t)| w.is_constant() && t.is_constant())
                    && else_branch.as_deref().is_none_or(BoundExpr::is_constant)
            }
            BoundExpr::Cast { expr, .. } => expr.is_constant(),
            // Function calls may be non-deterministic (LM UDFs!), so they
            // are never folded as constants.
            BoundExpr::Builtin { .. } | BoundExpr::Udf { .. } => false,
        }
    }

    /// Collect the set of referenced column positions.
    pub fn referenced_columns(&self, out: &mut std::collections::BTreeSet<usize>) {
        match self {
            BoundExpr::Literal(_) => {}
            BoundExpr::ColumnRef(i) | BoundExpr::OuterRef(i) => {
                out.insert(*i);
            }
            BoundExpr::CorrelatedExists { plan, .. } | BoundExpr::CorrelatedScalar { plan } => {
                plan.collect_outer_refs(out);
            }
            BoundExpr::CorrelatedIn { expr, plan, .. } => {
                expr.referenced_columns(out);
                plan.collect_outer_refs(out);
            }
            BoundExpr::Binary { lhs, rhs, .. } => {
                lhs.referenced_columns(out);
                rhs.referenced_columns(out);
            }
            BoundExpr::Unary { operand, .. } => operand.referenced_columns(out),
            BoundExpr::IsNull { expr, .. } => expr.referenced_columns(out),
            BoundExpr::Between {
                expr, low, high, ..
            } => {
                expr.referenced_columns(out);
                low.referenced_columns(out);
                high.referenced_columns(out);
            }
            BoundExpr::InList { expr, list, .. } => {
                expr.referenced_columns(out);
                for e in list {
                    e.referenced_columns(out);
                }
            }
            BoundExpr::InSet { expr, .. } => expr.referenced_columns(out),
            BoundExpr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(o) = operand {
                    o.referenced_columns(out);
                }
                for (w, t) in branches {
                    w.referenced_columns(out);
                    t.referenced_columns(out);
                }
                if let Some(e) = else_branch {
                    e.referenced_columns(out);
                }
            }
            BoundExpr::Cast { expr, .. } => expr.referenced_columns(out),
            BoundExpr::Builtin { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
            BoundExpr::Udf { args, .. } => {
                for a in args {
                    a.referenced_columns(out);
                }
            }
        }
    }

    /// Rewrite every column reference through `map` (used when pushing
    /// expressions through projections / join sides). Outer references
    /// — including those inside embedded correlated subplans, which point
    /// at this row — are remapped through the same map.
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> BoundExpr {
        self.rewrite_refs(&|i| BoundExpr::ColumnRef(map(i)), &|i| {
            BoundExpr::OuterRef(map(i))
        })
    }

    /// Replace every outer reference with the corresponding literal from
    /// `outer_row` (performed before a correlated subplan executes).
    /// Column references are untouched — they belong to the subplan.
    pub fn substitute_outer(&self, outer_row: &[Value]) -> BoundExpr {
        self.rewrite_refs(&|i| BoundExpr::ColumnRef(i), &|i| {
            BoundExpr::Literal(outer_row.get(i).cloned().unwrap_or(Value::Null))
        })
    }

    /// Collect outer-reference positions, descending into embedded
    /// correlated subplans (their outer refs point at this row too).
    pub fn collect_outer_refs(&self, out: &mut std::collections::BTreeSet<usize>) {
        self.visit_refs(&mut |e| {
            if let BoundExpr::OuterRef(i) = e {
                out.insert(*i);
            }
        });
    }

    /// Does the expression (or an embedded subplan) contain outer refs?
    pub fn contains_outer_ref(&self) -> bool {
        let mut found = false;
        self.visit_refs(&mut |e| {
            if matches!(e, BoundExpr::OuterRef(_)) {
                found = true;
            }
        });
        found
    }

    /// Visit every node of the expression, descending into the
    /// expressions of embedded correlated subplans.
    pub(crate) fn visit_refs(&self, f: &mut dyn FnMut(&BoundExpr)) {
        f(self);
        match self {
            BoundExpr::Literal(_) | BoundExpr::ColumnRef(_) | BoundExpr::OuterRef(_) => {}
            BoundExpr::CorrelatedExists { plan, .. } | BoundExpr::CorrelatedScalar { plan } => {
                plan.visit_exprs(f)
            }
            BoundExpr::CorrelatedIn { expr, plan, .. } => {
                expr.visit_refs(f);
                plan.visit_exprs(f);
            }
            BoundExpr::Binary { lhs, rhs, .. } => {
                lhs.visit_refs(f);
                rhs.visit_refs(f);
            }
            BoundExpr::Unary { operand, .. } => operand.visit_refs(f),
            BoundExpr::IsNull { expr, .. } => expr.visit_refs(f),
            BoundExpr::Between {
                expr, low, high, ..
            } => {
                expr.visit_refs(f);
                low.visit_refs(f);
                high.visit_refs(f);
            }
            BoundExpr::InList { expr, list, .. } => {
                expr.visit_refs(f);
                for e in list {
                    e.visit_refs(f);
                }
            }
            BoundExpr::InSet { expr, .. } => expr.visit_refs(f),
            BoundExpr::Case {
                operand,
                branches,
                else_branch,
            } => {
                if let Some(o) = operand {
                    o.visit_refs(f);
                }
                for (w, t) in branches {
                    w.visit_refs(f);
                    t.visit_refs(f);
                }
                if let Some(e) = else_branch {
                    e.visit_refs(f);
                }
            }
            BoundExpr::Cast { expr, .. } => expr.visit_refs(f),
            BoundExpr::Builtin { args, .. } | BoundExpr::Udf { args, .. } => {
                for a in args {
                    a.visit_refs(f);
                }
            }
        }
    }

    /// Rebuild the expression with `col` applied to this level's column
    /// references and `outer` applied to outer references (at this level
    /// and inside embedded correlated subplans; the subplans' own column
    /// references are preserved).
    pub(crate) fn rewrite_refs(
        &self,
        col: &dyn Fn(usize) -> BoundExpr,
        outer: &dyn Fn(usize) -> BoundExpr,
    ) -> BoundExpr {
        match self {
            BoundExpr::Literal(v) => BoundExpr::Literal(v.clone()),
            BoundExpr::ColumnRef(i) => col(*i),
            BoundExpr::OuterRef(i) => outer(*i),
            BoundExpr::CorrelatedExists { plan, negated } => BoundExpr::CorrelatedExists {
                plan: Box::new(plan.rewrite_outer(outer)),
                negated: *negated,
            },
            BoundExpr::CorrelatedScalar { plan } => BoundExpr::CorrelatedScalar {
                plan: Box::new(plan.rewrite_outer(outer)),
            },
            BoundExpr::CorrelatedIn {
                expr,
                plan,
                negated,
            } => BoundExpr::CorrelatedIn {
                expr: Box::new(expr.rewrite_refs(col, outer)),
                plan: Box::new(plan.rewrite_outer(outer)),
                negated: *negated,
            },
            BoundExpr::Binary { op, lhs, rhs } => BoundExpr::Binary {
                op: *op,
                lhs: Box::new(lhs.rewrite_refs(col, outer)),
                rhs: Box::new(rhs.rewrite_refs(col, outer)),
            },
            BoundExpr::Unary { op, operand } => BoundExpr::Unary {
                op: *op,
                operand: Box::new(operand.rewrite_refs(col, outer)),
            },
            BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(expr.rewrite_refs(col, outer)),
                negated: *negated,
            },
            BoundExpr::Between {
                expr,
                low,
                high,
                negated,
            } => BoundExpr::Between {
                expr: Box::new(expr.rewrite_refs(col, outer)),
                low: Box::new(low.rewrite_refs(col, outer)),
                high: Box::new(high.rewrite_refs(col, outer)),
                negated: *negated,
            },
            BoundExpr::InList {
                expr,
                list,
                negated,
            } => BoundExpr::InList {
                expr: Box::new(expr.rewrite_refs(col, outer)),
                list: list.iter().map(|e| e.rewrite_refs(col, outer)).collect(),
                negated: *negated,
            },
            BoundExpr::InSet {
                expr,
                set,
                set_has_null,
                negated,
            } => BoundExpr::InSet {
                expr: Box::new(expr.rewrite_refs(col, outer)),
                set: Arc::clone(set),
                set_has_null: *set_has_null,
                negated: *negated,
            },
            BoundExpr::Case {
                operand,
                branches,
                else_branch,
            } => BoundExpr::Case {
                operand: operand
                    .as_ref()
                    .map(|o| Box::new(o.rewrite_refs(col, outer))),
                branches: branches
                    .iter()
                    .map(|(w, t)| (w.rewrite_refs(col, outer), t.rewrite_refs(col, outer)))
                    .collect(),
                else_branch: else_branch
                    .as_ref()
                    .map(|e| Box::new(e.rewrite_refs(col, outer))),
            },
            BoundExpr::Cast { expr, dtype } => BoundExpr::Cast {
                expr: Box::new(expr.rewrite_refs(col, outer)),
                dtype: *dtype,
            },
            BoundExpr::Builtin { name, args } => BoundExpr::Builtin {
                name: name.clone(),
                args: args.iter().map(|a| a.rewrite_refs(col, outer)).collect(),
            },
            BoundExpr::Udf { udf, args } => BoundExpr::Udf {
                udf: Arc::clone(udf),
                args: args.iter().map(|a| a.rewrite_refs(col, outer)).collect(),
            },
        }
    }
}

/// Substitute the outer row into a correlated subplan and execute it.
fn run_correlated(
    plan: &crate::plan::Plan,
    outer_row: &[Value],
    ctx: &EvalCtx<'_>,
) -> SqlResult<Vec<Vec<Value>>> {
    let catalog = ctx.catalog.ok_or_else(|| {
        SqlError::Eval(
            "correlated subquery requires catalog context (evaluated outside the executor)".into(),
        )
    })?;
    let bound = plan.substitute_outer(outer_row);
    crate::exec::execute(&bound, catalog)
}

fn eval_binary(
    op: BinOp,
    lhs: &BoundExpr,
    rhs: &BoundExpr,
    row: &[Value],
    ctx: &EvalCtx<'_>,
) -> SqlResult<Value> {
    // Short-circuiting three-valued AND / OR.
    match op {
        BinOp::And => {
            let l = lhs.eval_ctx(row, ctx)?.truthiness();
            if l == Some(false) {
                return Ok(Value::from(false));
            }
            let r = rhs.eval_ctx(row, ctx)?.truthiness();
            return Ok(match (l, r) {
                (_, Some(false)) => Value::from(false),
                (Some(true), Some(true)) => Value::from(true),
                _ => Value::Null,
            });
        }
        BinOp::Or => {
            let l = lhs.eval_ctx(row, ctx)?.truthiness();
            if l == Some(true) {
                return Ok(Value::from(true));
            }
            let r = rhs.eval_ctx(row, ctx)?.truthiness();
            return Ok(match (l, r) {
                (_, Some(true)) => Value::from(true),
                (Some(false), Some(false)) => Value::from(false),
                _ => Value::Null,
            });
        }
        _ => {}
    }
    let l = lhs.eval_ctx(row, ctx)?;
    let r = rhs.eval_ctx(row, ctx)?;
    use std::cmp::Ordering::*;
    let cmp_to_value = |want: &[std::cmp::Ordering]| match l.sql_cmp(&r) {
        None => Value::Null,
        Some(o) => Value::from(want.contains(&o)),
    };
    Ok(match op {
        BinOp::Add => arith::add(&l, &r)?,
        BinOp::Sub => arith::sub(&l, &r)?,
        BinOp::Mul => arith::mul(&l, &r)?,
        BinOp::Div => arith::div(&l, &r)?,
        BinOp::Rem => arith::rem(&l, &r)?,
        BinOp::Concat => arith::concat(&l, &r)?,
        BinOp::Eq => match l.sql_eq(&r) {
            None => Value::Null,
            Some(b) => Value::from(b),
        },
        BinOp::NotEq => match l.sql_eq(&r) {
            None => Value::Null,
            Some(b) => Value::from(!b),
        },
        BinOp::Lt => cmp_to_value(&[Less]),
        BinOp::LtEq => cmp_to_value(&[Less, Equal]),
        BinOp::Gt => cmp_to_value(&[Greater]),
        BinOp::GtEq => cmp_to_value(&[Greater, Equal]),
        BinOp::Like | BinOp::NotLike => {
            if l.is_null() || r.is_null() {
                Value::Null
            } else {
                let matched = like_match(&l.to_string(), &r.to_string());
                Value::from(matched != (op == BinOp::NotLike))
            }
        }
        BinOp::And | BinOp::Or => unreachable!("handled above"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: impl Into<Value>) -> BoundExpr {
        BoundExpr::Literal(v.into())
    }

    fn col(i: usize) -> BoundExpr {
        BoundExpr::ColumnRef(i)
    }

    fn bin(op: BinOp, l: BoundExpr, r: BoundExpr) -> BoundExpr {
        BoundExpr::Binary {
            op,
            lhs: Box::new(l),
            rhs: Box::new(r),
        }
    }

    #[test]
    fn column_ref_and_arith() {
        let row = vec![Value::Int(10), Value::text("x")];
        let e = bin(BinOp::Add, col(0), lit(5));
        assert_eq!(e.eval(&row).unwrap(), Value::Int(15));
        assert!(col(9).eval(&row).is_err());
    }

    #[test]
    fn three_valued_and_or() {
        let row: Vec<Value> = vec![Value::Null];
        // NULL AND FALSE = FALSE
        let e = bin(BinOp::And, col(0), lit(false));
        assert_eq!(e.eval(&row).unwrap(), Value::from(false));
        // NULL AND TRUE = NULL
        let e = bin(BinOp::And, col(0), lit(true));
        assert_eq!(e.eval(&row).unwrap(), Value::Null);
        // NULL OR TRUE = TRUE
        let e = bin(BinOp::Or, col(0), lit(true));
        assert_eq!(e.eval(&row).unwrap(), Value::from(true));
        // NULL OR FALSE = NULL
        let e = bin(BinOp::Or, col(0), lit(false));
        assert_eq!(e.eval(&row).unwrap(), Value::Null);
    }

    #[test]
    fn predicate_null_is_false() {
        let e = bin(BinOp::Eq, lit(Value::Null), lit(1));
        assert!(!e.eval_predicate(&[]).unwrap());
    }

    #[test]
    fn between_three_valued() {
        // 5 BETWEEN NULL AND 3 => definite false (5 > 3)
        let e = BoundExpr::Between {
            expr: Box::new(lit(5)),
            low: Box::new(lit(Value::Null)),
            high: Box::new(lit(3)),
            negated: false,
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::from(false));
        // 5 BETWEEN NULL AND 7 => NULL
        let e = BoundExpr::Between {
            expr: Box::new(lit(5)),
            low: Box::new(lit(Value::Null)),
            high: Box::new(lit(7)),
            negated: false,
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Null);
    }

    #[test]
    fn in_list_and_set_null_semantics() {
        let e = BoundExpr::InList {
            expr: Box::new(lit(2)),
            list: vec![lit(1), lit(Value::Null)],
            negated: false,
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Null);

        let mut set = HashSet::new();
        set.insert(Value::Int(1));
        let e = BoundExpr::InSet {
            expr: Box::new(lit(2)),
            set: Arc::new(set),
            set_has_null: true,
            negated: false,
        };
        assert_eq!(e.eval(&[]).unwrap(), Value::Null);
    }

    #[test]
    fn case_forms() {
        // searched case
        let e = BoundExpr::Case {
            operand: None,
            branches: vec![(bin(BinOp::Gt, col(0), lit(0)), lit("pos"))],
            else_branch: Some(Box::new(lit("neg"))),
        };
        assert_eq!(e.eval(&[Value::Int(3)]).unwrap(), Value::text("pos"));
        assert_eq!(e.eval(&[Value::Int(-3)]).unwrap(), Value::text("neg"));
        // simple case with no else
        let e = BoundExpr::Case {
            operand: Some(Box::new(col(0))),
            branches: vec![(lit(1), lit("one"))],
            else_branch: None,
        };
        assert_eq!(e.eval(&[Value::Int(2)]).unwrap(), Value::Null);
    }

    #[test]
    fn like_and_concat() {
        let e = bin(BinOp::Like, lit("Titanic"), lit("t%"));
        assert_eq!(e.eval(&[]).unwrap(), Value::from(true));
        let e = bin(BinOp::Concat, lit("a"), lit("b"));
        assert_eq!(e.eval(&[]).unwrap(), Value::text("ab"));
    }

    #[test]
    fn constant_detection_and_column_collection() {
        let e = bin(BinOp::Add, lit(1), lit(2));
        assert!(e.is_constant());
        let e = bin(BinOp::Add, col(3), bin(BinOp::Mul, col(1), lit(2)));
        assert!(!e.is_constant());
        let mut cols = std::collections::BTreeSet::new();
        e.referenced_columns(&mut cols);
        assert_eq!(cols.into_iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn remap_columns() {
        let e = bin(BinOp::Add, col(0), col(2));
        let remapped = e.remap_columns(&|i| i + 10);
        let mut cols = std::collections::BTreeSet::new();
        remapped.referenced_columns(&mut cols);
        assert_eq!(cols.into_iter().collect::<Vec<_>>(), vec![10, 12]);
    }

    #[test]
    fn builtin_dispatch() {
        let e = BoundExpr::Builtin {
            name: "upper".into(),
            args: vec![col(0)],
        };
        assert_eq!(e.eval(&[Value::text("hi")]).unwrap(), Value::text("HI"));
    }
}
