//! Plan execution.
//!
//! Operators materialize their outputs bottom-up. For an in-memory
//! analytic engine at TAG-Bench scale (tables of 10²–10⁴ rows) this is
//! both simpler and faster than a tuple-at-a-time volcano loop: each
//! operator runs as a tight loop over a `Vec<Row>`.

use crate::ast::JoinKind;
use crate::catalog::Catalog;
use crate::error::{SqlError, SqlResult};
use crate::expr::{BoundExpr, EvalCtx};
use crate::plan::{AggCall, AggFunc, Plan, SortKey};
use crate::profile::{node_label, PlanProfiler};
use crate::schema::Row;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Execute a plan against a catalog, producing materialized rows.
pub fn execute(plan: &Plan, catalog: &Catalog) -> SqlResult<Vec<Row>> {
    exec_node(plan, catalog, None)
}

/// Execute a plan with per-node profiling. Runs exactly the same code
/// path as [`execute`] — the profiler only observes rows and time — so
/// profiled and unprofiled results are always identical.
pub fn execute_profiled(
    plan: &Plan,
    catalog: &Catalog,
    profiler: &PlanProfiler,
) -> SqlResult<Vec<Row>> {
    exec_node(plan, catalog, Some(profiler))
}

/// Recursion point: every operator's children come back through here so
/// each node is individually timed when a profiler is attached.
fn exec_node(plan: &Plan, catalog: &Catalog, prof: Option<&PlanProfiler>) -> SqlResult<Vec<Row>> {
    let Some(p) = prof else {
        return exec_impl(plan, catalog, None);
    };
    let token = p.enter(node_label(plan));
    let result = exec_impl(plan, catalog, prof);
    p.exit(token, result.as_ref().map(Vec::len).unwrap_or(0));
    result
}

fn exec_impl(plan: &Plan, catalog: &Catalog, prof: Option<&PlanProfiler>) -> SqlResult<Vec<Row>> {
    match plan {
        Plan::TableScan { table, .. } => Ok(catalog.table(table)?.rows().to_vec()),
        Plan::IndexProbe {
            table,
            key_column,
            key,
            ..
        } => {
            let t = catalog.table(table)?;
            let idx = t.index_on(*key_column).ok_or_else(|| {
                SqlError::Eval(format!(
                    "plan references missing index on {table} col#{key_column}"
                ))
            })?;
            Ok(idx
                .probe(key)
                .into_iter()
                .map(|id| t.row(id).clone())
                .collect())
        }
        Plan::IndexRangeScan {
            table,
            key_column,
            range,
            ..
        } => {
            let t = catalog.table(table)?;
            let idx = t.index_on(*key_column).ok_or_else(|| {
                SqlError::Eval(format!(
                    "plan references missing index on {table} col#{key_column}"
                ))
            })?;
            let low = bound_as_ref(&range.low);
            let high = bound_as_ref(&range.high);
            let ids = idx
                .probe_range(low, high)
                .ok_or_else(|| SqlError::Eval("range scan requires a B-tree index".into()))?;
            Ok(ids.into_iter().map(|id| t.row(id).clone()).collect())
        }
        Plan::Values { rows, .. } => {
            let ctx = EvalCtx {
                catalog: Some(catalog),
            };
            rows.iter()
                .map(|exprs| exprs.iter().map(|e| e.eval_ctx(&[], &ctx)).collect())
                .collect()
        }
        Plan::Filter { input, predicate } => {
            let rows = exec_node(input, catalog, prof)?;
            let ctx = EvalCtx {
                catalog: Some(catalog),
            };
            let mut out = Vec::with_capacity(rows.len() / 2);
            for row in rows {
                if predicate.eval_predicate_ctx(&row, &ctx)? {
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::Project { input, exprs, .. } => {
            let rows = exec_node(input, catalog, prof)?;
            let ctx = EvalCtx {
                catalog: Some(catalog),
            };
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                let projected = exprs
                    .iter()
                    .map(|e| e.eval_ctx(&row, &ctx))
                    .collect::<SqlResult<Row>>()?;
                out.push(projected);
            }
            Ok(out)
        }
        Plan::NestedLoopJoin {
            left,
            right,
            kind,
            on,
        } => nested_loop_join(left, right, *kind, on.as_ref(), catalog, prof),
        Plan::HashJoin {
            left,
            right,
            kind,
            left_key,
            right_key,
            residual,
        } => hash_join(
            left,
            right,
            *kind,
            left_key,
            right_key,
            residual.as_ref(),
            catalog,
            prof,
        ),
        Plan::Aggregate {
            input, group, aggs, ..
        } => aggregate(input, group, aggs, catalog, prof),
        Plan::Sort { input, keys } => {
            let mut rows = exec_node(input, catalog, prof)?;
            let ctx = EvalCtx {
                catalog: Some(catalog),
            };
            sort_rows(&mut rows, keys, &ctx)?;
            Ok(rows)
        }
        Plan::TopK {
            input,
            keys,
            k,
            offset,
        } => top_k(input, keys, *k, *offset, catalog, prof),
        Plan::Limit {
            input,
            limit,
            offset,
        } => {
            let rows = exec_node(input, catalog, prof)?;
            let start = (*offset as usize).min(rows.len());
            let end = match limit {
                Some(l) => (start + *l as usize).min(rows.len()),
                None => rows.len(),
            };
            Ok(rows[start..end].to_vec())
        }
        Plan::Distinct { input } => {
            let rows = exec_node(input, catalog, prof)?;
            let mut seen = std::collections::HashSet::with_capacity(rows.len());
            let mut out = Vec::with_capacity(rows.len());
            for row in rows {
                if seen.insert(row.clone()) {
                    out.push(row);
                }
            }
            Ok(out)
        }
        Plan::Sem { .. } => Err(SqlError::Unsupported(
            "semantic plans execute through a SemDelegate (see tag_sql::execute_sem), \
             not the relational executor"
                .into(),
        )),
    }
}

fn bound_as_ref(b: &std::ops::Bound<Value>) -> std::ops::Bound<&Value> {
    match b {
        std::ops::Bound::Included(v) => std::ops::Bound::Included(v),
        std::ops::Bound::Excluded(v) => std::ops::Bound::Excluded(v),
        std::ops::Bound::Unbounded => std::ops::Bound::Unbounded,
    }
}

fn nested_loop_join(
    left: &Plan,
    right: &Plan,
    kind: JoinKind,
    on: Option<&BoundExpr>,
    catalog: &Catalog,
    prof: Option<&PlanProfiler>,
) -> SqlResult<Vec<Row>> {
    let left_rows = exec_node(left, catalog, prof)?;
    let right_rows = exec_node(right, catalog, prof)?;
    let right_width = right.width();
    let ctx = EvalCtx {
        catalog: Some(catalog),
    };
    let mut out = Vec::new();
    let mut combined = Vec::new();
    for l in &left_rows {
        let mut matched = false;
        for r in &right_rows {
            combined.clear();
            combined.extend_from_slice(l);
            combined.extend_from_slice(r);
            let keep = match on {
                Some(pred) => pred.eval_predicate_ctx(&combined, &ctx)?,
                None => true,
            };
            if keep {
                matched = true;
                out.push(combined.clone());
            }
        }
        if kind == JoinKind::Left && !matched {
            let mut row = l.clone();
            row.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push(row);
        }
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn hash_join(
    left: &Plan,
    right: &Plan,
    kind: JoinKind,
    left_key: &BoundExpr,
    right_key: &BoundExpr,
    residual: Option<&BoundExpr>,
    catalog: &Catalog,
    prof: Option<&PlanProfiler>,
) -> SqlResult<Vec<Row>> {
    let left_rows = exec_node(left, catalog, prof)?;
    let right_rows = exec_node(right, catalog, prof)?;
    let right_width = right.width();
    let ctx = EvalCtx {
        catalog: Some(catalog),
    };

    // Build on the right side (probe preserves left order, which keeps
    // LEFT joins simple).
    let mut table: HashMap<Value, Vec<usize>> = HashMap::with_capacity(right_rows.len());
    for (i, r) in right_rows.iter().enumerate() {
        let key = right_key.eval_ctx(r, &ctx)?;
        if key.is_null() {
            continue; // NULL keys never join
        }
        table.entry(key).or_default().push(i);
    }

    let mut out = Vec::new();
    let mut combined = Vec::new();
    for l in &left_rows {
        let key = left_key.eval_ctx(l, &ctx)?;
        let mut matched = false;
        if !key.is_null() {
            if let Some(ids) = table.get(&key) {
                for &i in ids {
                    combined.clear();
                    combined.extend_from_slice(l);
                    combined.extend_from_slice(&right_rows[i]);
                    let keep = match residual {
                        Some(pred) => pred.eval_predicate_ctx(&combined, &ctx)?,
                        None => true,
                    };
                    if keep {
                        matched = true;
                        out.push(combined.clone());
                    }
                }
            }
        }
        if kind == JoinKind::Left && !matched {
            let mut row = l.clone();
            row.extend(std::iter::repeat_n(Value::Null, right_width));
            out.push(row);
        }
    }
    Ok(out)
}

/// Accumulator for one aggregate call. Shared with the chunked executor
/// (`crate::chunk_exec`), whose per-morsel partial aggregates feed the
/// same state machine so results stay byte-identical.
#[derive(Debug, Clone)]
pub(crate) enum AggState {
    Count(i64),
    Sum { acc: Value, saw: bool },
    Total(f64),
    Avg { sum: f64, n: i64 },
    MinMax { best: Option<Value>, want_min: bool },
    Concat { parts: Vec<String> },
}

impl AggState {
    pub(crate) fn new(func: AggFunc) -> AggState {
        match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => AggState::Sum {
                acc: Value::Int(0),
                saw: false,
            },
            AggFunc::Total => AggState::Total(0.0),
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AggState::MinMax {
                best: None,
                want_min: true,
            },
            AggFunc::Max => AggState::MinMax {
                best: None,
                want_min: false,
            },
            AggFunc::GroupConcat => AggState::Concat { parts: Vec::new() },
        }
    }

    pub(crate) fn update(&mut self, v: &Value) -> SqlResult<()> {
        // SQL aggregates skip NULL inputs (COUNT(*) passes a non-null marker).
        if v.is_null() {
            return Ok(());
        }
        match self {
            AggState::Count(n) => *n += 1,
            AggState::Sum { acc, saw } => {
                *acc = crate::value::arith::add(acc, v)?;
                *saw = true;
            }
            AggState::Total(t) => {
                *t += v.as_f64().unwrap_or(0.0);
            }
            AggState::Avg { sum, n } => {
                let x = v
                    .coerce_numeric()
                    .ok()
                    .and_then(|c| c.as_f64())
                    .unwrap_or(0.0);
                *sum += x;
                *n += 1;
            }
            AggState::MinMax { best, want_min } => {
                let replace = match best {
                    None => true,
                    Some(b) => {
                        if *want_min {
                            v < b
                        } else {
                            v > b
                        }
                    }
                };
                if replace {
                    *best = Some(v.clone());
                }
            }
            AggState::Concat { parts } => parts.push(v.to_string()),
        }
        Ok(())
    }

    pub(crate) fn finish(self, separator: &str) -> Value {
        match self {
            AggState::Count(n) => Value::Int(n),
            AggState::Sum { acc, saw } => {
                if saw {
                    acc
                } else {
                    Value::Null
                }
            }
            AggState::Total(t) => Value::Float(t),
            AggState::Avg { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            AggState::MinMax { best, .. } => best.unwrap_or(Value::Null),
            AggState::Concat { parts } => {
                if parts.is_empty() {
                    Value::Null
                } else {
                    Value::Text(parts.join(separator))
                }
            }
        }
    }
}

fn aggregate(
    input: &Plan,
    group: &[BoundExpr],
    aggs: &[AggCall],
    catalog: &Catalog,
    prof: Option<&PlanProfiler>,
) -> SqlResult<Vec<Row>> {
    let rows = exec_node(input, catalog, prof)?;
    let ctx = EvalCtx {
        catalog: Some(catalog),
    };
    aggregate_rows(&rows, group, aggs, &ctx)
}

/// Row-level aggregation, split out so the chunked executor can replay
/// the exact serial semantics (including error order) on its inputs.
pub(crate) fn aggregate_rows(
    rows: &[Row],
    group: &[BoundExpr],
    aggs: &[AggCall],
    ctx: &EvalCtx<'_>,
) -> SqlResult<Vec<Row>> {
    // Group key -> (representative key values, states, distinct sets)
    type DistinctSets = Vec<Option<std::collections::HashSet<Value>>>;
    let mut groups: HashMap<Vec<Value>, (Vec<AggState>, DistinctSets)> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new(); // first-seen group order

    for row in rows {
        let key: Vec<Value> = group
            .iter()
            .map(|g| g.eval_ctx(row, ctx))
            .collect::<SqlResult<_>>()?;
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key.clone());
            (
                aggs.iter().map(|a| AggState::new(a.func)).collect(),
                aggs.iter()
                    .map(|a| {
                        if a.distinct {
                            Some(std::collections::HashSet::new())
                        } else {
                            None
                        }
                    })
                    .collect(),
            )
        });
        for (i, agg) in aggs.iter().enumerate() {
            let v = match &agg.arg {
                Some(e) => e.eval_ctx(row, ctx)?,
                None => Value::Int(1), // COUNT(*) marker
            };
            if let Some(seen) = &mut entry.1[i] {
                if v.is_null() || !seen.insert(v.clone()) {
                    continue;
                }
            }
            entry.0[i].update(&v)?;
        }
    }

    // Global aggregation with no groups over an empty input still yields
    // one row of "empty" aggregate results.
    if group.is_empty() && order.is_empty() {
        let states: Vec<AggState> = aggs.iter().map(|a| AggState::new(a.func)).collect();
        let row: Row = states
            .into_iter()
            .zip(aggs)
            .map(|(s, a)| s.finish(&a.separator))
            .collect();
        return Ok(vec![row]);
    }

    let mut out = Vec::with_capacity(order.len());
    for key in order {
        let Some((states, _)) = groups.remove(&key) else {
            continue; // every ordered key was inserted above
        };
        let mut row = key;
        for (s, a) in states.into_iter().zip(aggs) {
            row.push(s.finish(&a.separator));
        }
        out.push(row);
    }
    Ok(out)
}

/// Compare two rows under the given sort keys (keys already evaluated).
///
/// # Ordering contract
///
/// This comparison is a *partial* order over rows: rows with equal keys
/// compare `Equal`. The executor turns it into a total, deterministic
/// order with an explicit tiebreak on **input sequence** (`seq`, the
/// 0-based position of the row in the operator's input):
///
/// - [`sort_rows`] uses a stable sort, which is exactly
///   `compare_keys(a, b).then(a.seq.cmp(&b.seq))` — ties keep input
///   order, for ascending *and* descending keys (descending reverses
///   the key comparison only, never the tiebreak).
/// - [`top_k`] makes the same tiebreak explicit in its heap ordering
///   (`(key, seq)`), which is what makes `TopK` byte-identical to
///   `Sort + Limit` at every `k`/`offset` split point.
///
/// The chunked executor (`crate::chunk_exec`) relies on this contract:
/// its parallel sort/merge orders by `(key, global seq)` — a total
/// order — so output bytes are independent of morsel boundaries and
/// worker count. `sort_contract_regression` in this module's tests pins
/// the behavior.
pub(crate) fn compare_keys(a: &[Value], b: &[Value], keys: &[SortKey]) -> Ordering {
    for (i, k) in keys.iter().enumerate() {
        let ord = a[i].total_cmp(&b[i]);
        let ord = if k.descending { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

pub(crate) fn eval_keys(row: &Row, keys: &[SortKey], ctx: &EvalCtx<'_>) -> SqlResult<Vec<Value>> {
    keys.iter().map(|k| k.expr.eval_ctx(row, ctx)).collect()
}

/// Stable sort by the given keys: equal-key rows keep their input order
/// (see the [`compare_keys`] ordering contract).
pub(crate) fn sort_rows(rows: &mut Vec<Row>, keys: &[SortKey], ctx: &EvalCtx<'_>) -> SqlResult<()> {
    let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
    for row in rows.drain(..) {
        keyed.push((eval_keys(&row, keys, ctx)?, row));
    }
    keyed.sort_by(|a, b| compare_keys(&a.0, &b.0, keys));
    rows.extend(keyed.into_iter().map(|(_, r)| r));
    Ok(())
}

/// Heap-based top-(offset + k), then a final sort of the survivors.
/// Ties are broken by input sequence (`seq`), which makes the result
/// byte-identical to `Sort + Limit` — see the [`compare_keys`] contract.
fn top_k(
    input: &Plan,
    keys: &[SortKey],
    k: usize,
    offset: usize,
    catalog: &Catalog,
    prof: Option<&PlanProfiler>,
) -> SqlResult<Vec<Row>> {
    let rows = exec_node(input, catalog, prof)?;
    let eval_ctx = EvalCtx {
        catalog: Some(catalog),
    };
    let want = k.saturating_add(offset);
    if want == 0 {
        return Ok(Vec::new());
    }

    // Max-heap of the worst current survivors; (keys, seq) ordering makes
    // the heap behave like the stable sort.
    struct Entry {
        key: Vec<Value>,
        seq: usize,
        row: Row,
    }
    struct Ctx<'a>(&'a [SortKey]);
    impl Ctx<'_> {
        fn cmp(&self, a: &Entry, b: &Entry) -> Ordering {
            compare_keys(&a.key, &b.key, self.0).then(a.seq.cmp(&b.seq))
        }
    }

    let ctx = Ctx(keys);
    let mut heap: Vec<Entry> = Vec::with_capacity(want + 1);
    for (seq, row) in rows.into_iter().enumerate() {
        let key = eval_keys(&row, keys, &eval_ctx)?;
        let entry = Entry { key, seq, row };
        if heap.len() < want {
            heap.push(entry);
            if heap.len() == want {
                heap.sort_by(|a, b| ctx.cmp(a, b));
            }
        } else if heap
            .last()
            .is_some_and(|worst| ctx.cmp(&entry, worst) == Ordering::Less)
        {
            // Insert in sorted position; drop the worst. `want` is small
            // (a LIMIT), so the linear insert is fine.
            let pos = heap
                .binary_search_by(|e| ctx.cmp(e, &entry))
                .unwrap_or_else(|p| p);
            heap.insert(pos, entry);
            heap.pop();
        }
    }
    if heap.len() < want {
        heap.sort_by(|a, b| ctx.cmp(a, b));
    }
    Ok(heap
        .into_iter()
        .skip(offset)
        .take(k)
        .map(|e| e.row)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType, Schema};
    use crate::table::Table;

    fn catalog() -> Catalog {
        let mut t = Table::new(
            "t",
            Schema::new(vec![
                Column::new("id", DataType::Integer),
                Column::new("grp", DataType::Text),
                Column::new("x", DataType::Real),
            ])
            .unwrap(),
        );
        for i in 0..10i64 {
            t.insert(vec![
                Value::Int(i),
                Value::text(if i % 2 == 0 { "even" } else { "odd" }),
                Value::Float(i as f64 * 1.5),
            ])
            .unwrap();
        }
        let mut c = Catalog::new();
        c.add_table(t).unwrap();
        c
    }

    fn scan() -> Plan {
        Plan::TableScan {
            table: "t".into(),
            columns: vec!["id".into(), "grp".into(), "x".into()],
        }
    }

    fn colref(i: usize) -> BoundExpr {
        BoundExpr::ColumnRef(i)
    }

    #[test]
    fn scan_and_filter() {
        let c = catalog();
        let plan = Plan::Filter {
            input: Box::new(scan()),
            predicate: BoundExpr::Binary {
                op: crate::ast::BinOp::Gt,
                lhs: Box::new(colref(0)),
                rhs: Box::new(BoundExpr::Literal(Value::Int(6))),
            },
        };
        let rows = execute(&plan, &c).unwrap();
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn aggregate_grouped() {
        let c = catalog();
        let plan = Plan::Aggregate {
            input: Box::new(scan()),
            group: vec![colref(1)],
            group_names: vec!["grp".into()],
            aggs: vec![
                AggCall {
                    func: AggFunc::Count,
                    arg: None,
                    distinct: false,
                    separator: ",".into(),
                    name: "n".into(),
                },
                AggCall {
                    func: AggFunc::Sum,
                    arg: Some(colref(0)),
                    distinct: false,
                    separator: ",".into(),
                    name: "s".into(),
                },
            ],
        };
        let rows = execute(&plan, &c).unwrap();
        assert_eq!(rows.len(), 2);
        // first-seen order: "even" first (id 0)
        assert_eq!(rows[0][0], Value::text("even"));
        assert_eq!(rows[0][1], Value::Int(5));
        assert_eq!(rows[0][2], Value::Int(2 + 4 + 6 + 8));
        assert_eq!(rows[1][2], Value::Int(1 + 3 + 5 + 7 + 9));
    }

    #[test]
    fn aggregate_empty_input_global() {
        let c = catalog();
        let empty = Plan::Filter {
            input: Box::new(scan()),
            predicate: BoundExpr::Literal(Value::from(false)),
        };
        let plan = Plan::Aggregate {
            input: Box::new(empty),
            group: vec![],
            group_names: vec![],
            aggs: vec![
                AggCall {
                    func: AggFunc::Count,
                    arg: None,
                    distinct: false,
                    separator: ",".into(),
                    name: "n".into(),
                },
                AggCall {
                    func: AggFunc::Sum,
                    arg: Some(colref(0)),
                    distinct: false,
                    separator: ",".into(),
                    name: "s".into(),
                },
                AggCall {
                    func: AggFunc::Total,
                    arg: Some(colref(0)),
                    distinct: false,
                    separator: ",".into(),
                    name: "t".into(),
                },
            ],
        };
        let rows = execute(&plan, &c).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(0));
        assert_eq!(rows[0][1], Value::Null);
        assert_eq!(rows[0][2], Value::Float(0.0));
    }

    #[test]
    fn count_distinct() {
        let c = catalog();
        let plan = Plan::Aggregate {
            input: Box::new(scan()),
            group: vec![],
            group_names: vec![],
            aggs: vec![AggCall {
                func: AggFunc::Count,
                arg: Some(colref(1)),
                distinct: true,
                separator: ",".into(),
                name: "n".into(),
            }],
        };
        let rows = execute(&plan, &c).unwrap();
        assert_eq!(rows[0][0], Value::Int(2)); // "even", "odd"
    }

    #[test]
    fn sort_and_limit() {
        let c = catalog();
        let plan = Plan::Limit {
            input: Box::new(Plan::Sort {
                input: Box::new(scan()),
                keys: vec![SortKey {
                    expr: colref(0),
                    descending: true,
                }],
            }),
            limit: Some(3),
            offset: 1,
        };
        let rows = execute(&plan, &c).unwrap();
        let ids: Vec<Value> = rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(ids, vec![Value::Int(8), Value::Int(7), Value::Int(6)]);
    }

    /// Pins the sort determinism contract: equal-key rows keep input
    /// order (ascending and descending), and TopK's `(key, seq)` heap
    /// ordering matches Sort + Limit across every offset split. The
    /// chunked executor's parallel merge depends on this.
    #[test]
    fn sort_contract_regression() {
        // Duplicate keys with distinct payloads so tie order is visible.
        let mut t = Table::new(
            "ties",
            Schema::new(vec![
                Column::new("k", DataType::Integer),
                Column::new("payload", DataType::Integer),
            ])
            .unwrap(),
        );
        for (i, k) in [3i64, 1, 3, 2, 1, 3, 2, 1].iter().enumerate() {
            t.insert(vec![Value::Int(*k), Value::Int(i as i64)])
                .unwrap();
        }
        let mut c = Catalog::new();
        c.add_table(t).unwrap();
        let scan = Plan::TableScan {
            table: "ties".into(),
            columns: vec!["k".into(), "payload".into()],
        };
        for descending in [false, true] {
            let keys = vec![SortKey {
                expr: colref(0),
                descending,
            }];
            let sorted = execute(
                &Plan::Sort {
                    input: Box::new(scan.clone()),
                    keys: keys.clone(),
                },
                &c,
            )
            .unwrap();
            // Ties keep input order: within each key group, payloads
            // (input positions) are strictly increasing.
            for w in sorted.windows(2) {
                if w[0][0] == w[1][0] {
                    assert!(
                        w[0][1] < w[1][1],
                        "tie broke input order (descending={descending}): {sorted:?}"
                    );
                }
            }
            // TopK == Sort + Limit at every (k, offset) split, including
            // splits that land inside a tie group.
            for offset in 0..sorted.len() {
                for k in 0..=sorted.len() - offset {
                    let via_topk = execute(
                        &Plan::TopK {
                            input: Box::new(scan.clone()),
                            keys: keys.clone(),
                            k,
                            offset,
                        },
                        &c,
                    )
                    .unwrap();
                    assert_eq!(
                        via_topk,
                        sorted[offset..offset + k].to_vec(),
                        "k={k} offset={offset} descending={descending}"
                    );
                }
            }
        }
    }

    #[test]
    fn topk_matches_sort_limit() {
        let c = catalog();
        let keys = vec![SortKey {
            expr: colref(2),
            descending: true,
        }];
        let sorted = execute(
            &Plan::Limit {
                input: Box::new(Plan::Sort {
                    input: Box::new(scan()),
                    keys: keys.clone(),
                }),
                limit: Some(4),
                offset: 2,
            },
            &c,
        )
        .unwrap();
        let topk = execute(
            &Plan::TopK {
                input: Box::new(scan()),
                keys,
                k: 4,
                offset: 2,
            },
            &c,
        )
        .unwrap();
        assert_eq!(sorted, topk);
    }

    #[test]
    fn nested_loop_inner_and_left() {
        let mut c = catalog();
        let mut u = Table::new(
            "u",
            Schema::new(vec![
                Column::new("id", DataType::Integer),
                Column::new("tag", DataType::Text),
            ])
            .unwrap(),
        );
        u.insert(vec![Value::Int(1), Value::text("one")]).unwrap();
        u.insert(vec![Value::Int(2), Value::text("two")]).unwrap();
        c.add_table(u).unwrap();

        let uscan = Plan::TableScan {
            table: "u".into(),
            columns: vec!["id".into(), "tag".into()],
        };
        let on = BoundExpr::Binary {
            op: crate::ast::BinOp::Eq,
            lhs: Box::new(colref(0)),
            rhs: Box::new(colref(3)),
        };
        let inner = Plan::NestedLoopJoin {
            left: Box::new(scan()),
            right: Box::new(uscan.clone()),
            kind: JoinKind::Inner,
            on: Some(on.clone()),
        };
        assert_eq!(execute(&inner, &c).unwrap().len(), 2);

        let left = Plan::NestedLoopJoin {
            left: Box::new(scan()),
            right: Box::new(uscan),
            kind: JoinKind::Left,
            on: Some(on),
        };
        let rows = execute(&left, &c).unwrap();
        assert_eq!(rows.len(), 10);
        let nulls = rows.iter().filter(|r| r[3].is_null()).count();
        assert_eq!(nulls, 8);
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let mut c = catalog();
        let mut u = Table::new(
            "u",
            Schema::new(vec![
                Column::new("id", DataType::Integer),
                Column::new("tag", DataType::Text),
            ])
            .unwrap(),
        );
        for i in 0..5 {
            u.insert(vec![Value::Int(i % 3), Value::text(format!("t{i}"))])
                .unwrap();
        }
        c.add_table(u).unwrap();
        let uscan = Plan::TableScan {
            table: "u".into(),
            columns: vec!["id".into(), "tag".into()],
        };
        for kind in [JoinKind::Inner, JoinKind::Left] {
            let nl = Plan::NestedLoopJoin {
                left: Box::new(scan()),
                right: Box::new(uscan.clone()),
                kind,
                on: Some(BoundExpr::Binary {
                    op: crate::ast::BinOp::Eq,
                    lhs: Box::new(colref(0)),
                    rhs: Box::new(colref(3)),
                }),
            };
            let hj = Plan::HashJoin {
                left: Box::new(scan()),
                right: Box::new(uscan.clone()),
                kind,
                left_key: colref(0),
                right_key: colref(0), // relative to right row
                residual: None,
            };
            let mut a = execute(&nl, &c).unwrap();
            let mut b = execute(&hj, &c).unwrap();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{kind:?}");
        }
    }

    #[test]
    fn distinct_dedups() {
        let c = catalog();
        let plan = Plan::Distinct {
            input: Box::new(Plan::Project {
                input: Box::new(scan()),
                exprs: vec![colref(1)],
                columns: vec!["grp".into()],
            }),
        };
        let rows = execute(&plan, &c).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn group_concat() {
        let c = catalog();
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Filter {
                input: Box::new(scan()),
                predicate: BoundExpr::Binary {
                    op: crate::ast::BinOp::Lt,
                    lhs: Box::new(colref(0)),
                    rhs: Box::new(BoundExpr::Literal(Value::Int(3))),
                },
            }),
            group: vec![],
            group_names: vec![],
            aggs: vec![AggCall {
                func: AggFunc::GroupConcat,
                arg: Some(colref(0)),
                distinct: false,
                separator: "|".into(),
                name: "ids".into(),
            }],
        };
        let rows = execute(&plan, &c).unwrap();
        assert_eq!(rows[0][0], Value::text("0|1|2"));
    }
}
