//! Decomposable aggregate state for scatter-gather execution.
//!
//! [`PartialAgg`] is the public promotion of the chunked executor's
//! per-morsel partial aggregate: one accumulator per (group, aggregate
//! call) that can be computed over an arbitrary *slice* of a table's
//! rows and later combined with partials from other slices — other
//! morsels on one machine, or other shards across a scatter boundary.
//!
//! # Determinism contract
//!
//! Every input value carries the global sequence number (`seq`) of the
//! row it came from: its position in the unsharded, unsplit input.
//! Combining partials is defined so that `finish` produces the byte-
//! identical result of folding the whole input serially in seq order:
//!
//! - `Count` is a plain sum (order-free).
//! - `MinMax` keeps `(seq, value)` of the winner and merges with a
//!   *strict* comparison in seq order, so an equal-comparing but
//!   byte-different later value (`5.0` vs `5`, `-0.0` vs `0.0`) never
//!   replaces an earlier one — exactly the serial fold.
//! - `Ordered` (SUM / TOTAL / AVG / GROUP_CONCAT) keeps its non-null
//!   inputs tagged with seq and replays them through the serial
//!   [`AggState`] at finish, so float addition order, integer overflow
//!   promotion, and concatenation order can never diverge. AVG is
//!   thereby structurally a (sum, count) pair — never an average of
//!   averages (see `AggState::Avg`).
//! - `Distinct` keeps per-slice first occurrences with their seqs; the
//!   merge re-deduplicates in global seq order, keeping the earliest.
//!
//! [`GroupPartials`] packages a whole `GROUP BY` result (keys + states,
//! each key tagged with its first-seen seq) and [`merge_partials`] is
//! the coordinator-side operator that combines per-shard results into
//! the serial first-seen group order. Both have a compact wire encoding
//! ([`GroupPartials::encode`] / [`GroupPartials::decode`]) so partial
//! aggregates can cross shard boundaries as bytes.

use crate::error::{SqlError, SqlResult};
use crate::exec::AggState;
use crate::plan::{AggCall, AggFunc};
use crate::schema::Row;
use crate::value::Value;
use std::collections::{HashMap, HashSet};

/// A decomposable per-(group, call) aggregate accumulator.
#[derive(Debug, Clone)]
pub enum PartialAgg {
    /// COUNT: non-null input count (order-free exact merge).
    Count(i64),
    /// MIN / MAX: the winning `(seq, value)` under the serial fold.
    MinMax {
        /// Earliest winner so far, if any non-null input was seen.
        best: Option<(u64, Value)>,
        /// MIN when true, MAX when false.
        want_min: bool,
    },
    /// SUM / TOTAL / AVG / GROUP_CONCAT: non-null inputs in seq order,
    /// replayed through the serial accumulator at finish.
    Ordered {
        /// `(seq, value)` pairs, ascending by seq.
        vals: Vec<(u64, Value)>,
    },
    /// Any DISTINCT aggregate: slice-local first occurrences in seq
    /// order plus the dedup set.
    Distinct {
        /// `(seq, value)` first occurrences, ascending by seq.
        vals: Vec<(u64, Value)>,
        /// Values already present in `vals`.
        seen: HashSet<Value>,
    },
}

/// Is a strictly better than b under MIN (`want_min`) or MAX? Strict
/// comparison: ties never replace (see [`AggState::update`]).
fn strictly_better(a: &Value, b: &Value, want_min: bool) -> bool {
    if want_min {
        a < b
    } else {
        a > b
    }
}

impl PartialAgg {
    /// Fresh accumulator for one aggregate call.
    pub fn new(agg: &AggCall) -> PartialAgg {
        if agg.distinct {
            return PartialAgg::Distinct {
                vals: Vec::new(),
                seen: HashSet::new(),
            };
        }
        match agg.func {
            AggFunc::Count => PartialAgg::Count(0),
            AggFunc::Min => PartialAgg::MinMax {
                best: None,
                want_min: true,
            },
            AggFunc::Max => PartialAgg::MinMax {
                best: None,
                want_min: false,
            },
            AggFunc::Sum | AggFunc::Total | AggFunc::Avg | AggFunc::GroupConcat => {
                PartialAgg::Ordered { vals: Vec::new() }
            }
        }
    }

    /// Fold in one input value from global row `seq`. Callers must feed
    /// each slice in ascending seq order (a slice preserves the row
    /// order of the unsharded table, so natural iteration qualifies).
    pub fn update(&mut self, seq: u64, v: Value) {
        // SQL aggregates skip NULL inputs (COUNT(*) passes a marker).
        if v.is_null() {
            return;
        }
        match self {
            PartialAgg::Count(n) => *n += 1,
            PartialAgg::MinMax { best, want_min } => {
                let replace = match best {
                    None => true,
                    Some((_, b)) => strictly_better(&v, b, *want_min),
                };
                if replace {
                    *best = Some((seq, v));
                }
            }
            PartialAgg::Ordered { vals } => vals.push((seq, v)),
            PartialAgg::Distinct { vals, seen } => {
                if seen.insert(v.clone()) {
                    vals.push((seq, v));
                }
            }
        }
    }

    /// Combine another slice's accumulator into this one. The two
    /// slices must be disjoint in seq; variants must match.
    pub fn merge(&mut self, other: PartialAgg) -> SqlResult<()> {
        match (self, other) {
            (PartialAgg::Count(a), PartialAgg::Count(b)) => *a += b,
            (PartialAgg::MinMax { best, want_min }, PartialAgg::MinMax { best: theirs, .. }) => {
                if let Some((sb, vb)) = theirs {
                    *best = match best.take() {
                        None => Some((sb, vb)),
                        // The serial fold visits values in seq order and
                        // replaces only on a strictly better value, so
                        // the later winner survives only by beating the
                        // earlier one outright.
                        Some((sa, va)) => {
                            let earlier_first = sa < sb;
                            let (first, second) = if earlier_first {
                                ((sa, va), (sb, vb))
                            } else {
                                ((sb, vb), (sa, va))
                            };
                            if strictly_better(&second.1, &first.1, *want_min) {
                                Some(second)
                            } else {
                                Some(first)
                            }
                        }
                    };
                }
            }
            (PartialAgg::Ordered { vals }, PartialAgg::Ordered { vals: theirs }) => {
                *vals = merge_by_seq(std::mem::take(vals), theirs);
            }
            (PartialAgg::Distinct { vals, seen }, PartialAgg::Distinct { vals: theirs, .. }) => {
                // Re-deduplicate in global seq order: the earliest
                // occurrence of each value wins, exactly as if the
                // whole input had been scanned serially.
                let merged = merge_by_seq(std::mem::take(vals), theirs);
                seen.clear();
                for (seq, v) in merged {
                    if seen.insert(v.clone()) {
                        vals.push((seq, v));
                    }
                }
            }
            _ => {
                return Err(SqlError::Eval(
                    "mismatched aggregate partial variants in scatter merge".into(),
                ))
            }
        }
        Ok(())
    }

    /// Produce the final value, byte-identical to the serial fold.
    pub fn finish(self, agg: &AggCall) -> SqlResult<Value> {
        match self {
            PartialAgg::Count(n) => Ok(Value::Int(n)),
            PartialAgg::MinMax { best, .. } => Ok(best.map(|(_, v)| v).unwrap_or(Value::Null)),
            PartialAgg::Ordered { vals } | PartialAgg::Distinct { vals, .. } => {
                debug_assert!(vals.windows(2).all(|w| w[0].0 < w[1].0));
                let mut s = AggState::new(agg.func);
                for (_, v) in &vals {
                    s.update(v)?;
                }
                Ok(s.finish(&agg.separator))
            }
        }
    }
}

/// Merge two seq-ascending vectors into one (seqs are globally unique).
fn merge_by_seq(a: Vec<(u64, Value)>, b: Vec<(u64, Value)>) -> Vec<(u64, Value)> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut ia, mut ib) = (a.into_iter().peekable(), b.into_iter().peekable());
    loop {
        match (ia.peek(), ib.peek()) {
            (Some(x), Some(y)) => {
                if x.0 <= y.0 {
                    out.push(ia.next().expect("peeked"));
                } else {
                    out.push(ib.next().expect("peeked"));
                }
            }
            (Some(_), None) => {
                out.extend(ia);
                break;
            }
            (None, Some(_)) => {
                out.extend(ib);
                break;
            }
            (None, None) => break,
        }
    }
    out
}

/// One slice's complete `GROUP BY` result: group keys tagged with their
/// first-seen seq, plus one [`PartialAgg`] per (group, call).
#[derive(Debug, Clone, Default)]
pub struct GroupPartials {
    /// `(first_seen_seq, key values)` in slice-local first-seen order.
    pub keys: Vec<(u64, Vec<Value>)>,
    /// Parallel to `keys`: one accumulator per aggregate call.
    pub states: Vec<Vec<PartialAgg>>,
}

/// Incremental builder for one slice's [`GroupPartials`].
pub struct GroupPartialsBuilder<'a> {
    aggs: &'a [AggCall],
    index: HashMap<Vec<Value>, usize>,
    out: GroupPartials,
}

impl<'a> GroupPartialsBuilder<'a> {
    /// Start building against the plan's aggregate calls.
    pub fn new(aggs: &'a [AggCall]) -> Self {
        GroupPartialsBuilder {
            aggs,
            index: HashMap::new(),
            out: GroupPartials::default(),
        }
    }

    /// Fold one row: its global seq, evaluated group key, and one
    /// evaluated argument per aggregate call (`Value::Int(1)` for
    /// `COUNT(*)`). Rows must arrive in ascending seq order.
    pub fn add(&mut self, seq: u64, key: Vec<Value>, args: Vec<Value>) {
        let gi = match self.index.get(&key) {
            Some(&gi) => gi,
            None => {
                let gi = self.out.keys.len();
                self.index.insert(key.clone(), gi);
                self.out.keys.push((seq, key));
                self.out
                    .states
                    .push(self.aggs.iter().map(PartialAgg::new).collect());
                gi
            }
        };
        for (state, v) in self.out.states[gi].iter_mut().zip(args) {
            state.update(seq, v);
        }
    }

    /// The finished slice result.
    pub fn build(self) -> GroupPartials {
        self.out
    }
}

/// Coordinator-side merge of per-shard [`GroupPartials`] into one,
/// ordered by global first-seen seq — the serial first-seen group
/// order. Keys unify through [`Value`] equality (so `5` and `5.0`
/// landing on different shards still form one group, with the
/// earlier-seq representative key), exactly like the serial hash map.
pub fn merge_partials(parts: impl IntoIterator<Item = GroupPartials>) -> SqlResult<GroupPartials> {
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut merged = GroupPartials::default();
    for part in parts {
        for ((seq, key), states) in part.keys.into_iter().zip(part.states) {
            match index.get(&key) {
                Some(&gi) => {
                    let (first, rep) = &mut merged.keys[gi];
                    if seq < *first {
                        *first = seq;
                        *rep = key;
                    }
                    for (mine, theirs) in merged.states[gi].iter_mut().zip(states) {
                        mine.merge(theirs)?;
                    }
                }
                None => {
                    index.insert(key.clone(), merged.keys.len());
                    merged.keys.push((seq, key));
                    merged.states.push(states);
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..merged.keys.len()).collect();
    order.sort_by_key(|&i| merged.keys[i].0);
    let mut keys = Vec::with_capacity(order.len());
    let mut states = Vec::with_capacity(order.len());
    let mut old_states: Vec<Option<Vec<PartialAgg>>> =
        merged.states.into_iter().map(Some).collect();
    for i in order {
        keys.push(std::mem::take(&mut merged.keys[i]));
        states.push(old_states[i].take().expect("each slot moved once"));
    }
    Ok(GroupPartials { keys, states })
}

/// Finish a merged [`GroupPartials`] into output rows (group key values
/// then aggregate results), including the serial rule that a global
/// aggregation (no GROUP BY) over an empty input yields one row of
/// empty finishes.
pub fn finish_partials(
    merged: GroupPartials,
    group_len: usize,
    aggs: &[AggCall],
) -> SqlResult<Vec<Row>> {
    if group_len == 0 && merged.keys.is_empty() {
        let row: Row = aggs
            .iter()
            .map(|a| AggState::new(a.func).finish(&a.separator))
            .collect();
        return Ok(vec![row]);
    }
    let mut out = Vec::with_capacity(merged.keys.len());
    for ((_, key), states) in merged.keys.into_iter().zip(merged.states) {
        let mut row: Row = key;
        for (state, agg) in states.into_iter().zip(aggs) {
            row.push(state.finish(agg)?);
        }
        out.push(row);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Wire encoding: partial aggregates as bytes across shard boundaries.
// Little-endian throughout; floats travel as IEEE bit patterns so the
// round trip is exact.

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Int(i) => {
            out.push(1);
            put_u64(out, *i as u64);
        }
        Value::Float(f) => {
            out.push(2);
            put_u64(out, f.to_bits());
        }
        Value::Text(s) => {
            out.push(3);
            put_u64(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> SqlResult<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end = end.ok_or_else(|| SqlError::Eval("truncated partial-aggregate frame".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u64(&mut self) -> SqlResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn value(&mut self) -> SqlResult<Value> {
        match self.take(1)?[0] {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.u64()? as i64)),
            2 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            3 => {
                let len = self.u64()? as usize;
                let bytes = self.take(len)?;
                String::from_utf8(bytes.to_vec())
                    .map(Value::Text)
                    .map_err(|_| SqlError::Eval("invalid UTF-8 in partial-aggregate frame".into()))
            }
            t => Err(SqlError::Eval(format!(
                "unknown value tag {t} in partial-aggregate frame"
            ))),
        }
    }

    fn seq_vals(&mut self) -> SqlResult<Vec<(u64, Value)>> {
        let n = self.u64()? as usize;
        let mut vals = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let seq = self.u64()?;
            vals.push((seq, self.value()?));
        }
        Ok(vals)
    }
}

fn put_seq_vals(out: &mut Vec<u8>, vals: &[(u64, Value)]) {
    put_u64(out, vals.len() as u64);
    for (seq, v) in vals {
        put_u64(out, *seq);
        put_value(out, v);
    }
}

impl PartialAgg {
    /// Append this accumulator's wire frame to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            PartialAgg::Count(n) => {
                out.push(0);
                put_u64(out, *n as u64);
            }
            PartialAgg::MinMax { best, want_min } => {
                out.push(1);
                out.push(u8::from(*want_min));
                match best {
                    None => out.push(0),
                    Some((seq, v)) => {
                        out.push(1);
                        put_u64(out, *seq);
                        put_value(out, v);
                    }
                }
            }
            PartialAgg::Ordered { vals } => {
                out.push(2);
                put_seq_vals(out, vals);
            }
            PartialAgg::Distinct { vals, .. } => {
                out.push(3);
                put_seq_vals(out, vals);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> SqlResult<PartialAgg> {
        match r.take(1)?[0] {
            0 => Ok(PartialAgg::Count(r.u64()? as i64)),
            1 => {
                let want_min = r.take(1)?[0] != 0;
                let best = match r.take(1)?[0] {
                    0 => None,
                    _ => {
                        let seq = r.u64()?;
                        Some((seq, r.value()?))
                    }
                };
                Ok(PartialAgg::MinMax { best, want_min })
            }
            2 => Ok(PartialAgg::Ordered {
                vals: r.seq_vals()?,
            }),
            3 => {
                let vals = r.seq_vals()?;
                let seen = vals.iter().map(|(_, v)| v.clone()).collect();
                Ok(PartialAgg::Distinct { vals, seen })
            }
            t => Err(SqlError::Eval(format!(
                "unknown partial-aggregate tag {t} in frame"
            ))),
        }
    }
}

impl GroupPartials {
    /// Serialize for transport across a shard boundary.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u64(&mut out, self.keys.len() as u64);
        for ((seq, key), states) in self.keys.iter().zip(&self.states) {
            put_u64(&mut out, *seq);
            put_u64(&mut out, key.len() as u64);
            for v in key {
                put_value(&mut out, v);
            }
            put_u64(&mut out, states.len() as u64);
            for s in states {
                s.encode(&mut out);
            }
        }
        out
    }

    /// Inverse of [`GroupPartials::encode`].
    pub fn decode(buf: &[u8]) -> SqlResult<GroupPartials> {
        let mut r = Reader { buf, pos: 0 };
        let n = r.u64()? as usize;
        let mut gp = GroupPartials::default();
        for _ in 0..n {
            let seq = r.u64()?;
            let klen = r.u64()? as usize;
            let mut key = Vec::with_capacity(klen.min(1 << 16));
            for _ in 0..klen {
                key.push(r.value()?);
            }
            let slen = r.u64()? as usize;
            let mut states = Vec::with_capacity(slen.min(1 << 16));
            for _ in 0..slen {
                states.push(PartialAgg::decode(&mut r)?);
            }
            gp.keys.push((seq, key));
            gp.states.push(states);
        }
        if r.pos != buf.len() {
            return Err(SqlError::Eval(
                "trailing bytes after partial-aggregate frame".into(),
            ));
        }
        Ok(gp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(func: AggFunc, distinct: bool) -> AggCall {
        AggCall {
            func,
            arg: Some(crate::expr::BoundExpr::ColumnRef(0)),
            distinct,
            separator: ",".into(),
            name: "a".into(),
        }
    }

    /// Serial reference: fold (seq, value) pairs in seq order through
    /// the row-at-a-time accumulator.
    fn serial(func: AggFunc, distinct: bool, inputs: &[(u64, Value)]) -> Value {
        let mut sorted = inputs.to_vec();
        sorted.sort_by_key(|(s, _)| *s);
        let mut state = AggState::new(func);
        let mut seen = HashSet::new();
        for (_, v) in sorted {
            if v.is_null() || (distinct && !seen.insert(v.clone())) {
                continue;
            }
            state.update(&v).unwrap();
        }
        state.finish(",")
    }

    /// Split inputs round-robin across `n` slices, fold each into a
    /// partial, merge pairwise, finish.
    fn scattered(func: AggFunc, distinct: bool, inputs: &[(u64, Value)], n: usize) -> Value {
        let agg = call(func, distinct);
        let mut parts: Vec<PartialAgg> = (0..n).map(|_| PartialAgg::new(&agg)).collect();
        let mut sorted = inputs.to_vec();
        sorted.sort_by_key(|(s, _)| *s);
        for (i, (seq, v)) in sorted.into_iter().enumerate() {
            parts[i % n].update(seq, v);
        }
        let mut acc = parts.remove(0);
        for p in parts {
            acc.merge(p).unwrap();
        }
        acc.finish(&agg).unwrap()
    }

    fn vals(vs: &[Value]) -> Vec<(u64, Value)> {
        vs.iter()
            .cloned()
            .enumerate()
            .map(|(i, v)| (i as u64, v))
            .collect()
    }

    #[test]
    fn scattered_matches_serial_across_functions() {
        let inputs = vals(&[
            Value::Int(3),
            Value::Null,
            Value::Float(2.5),
            Value::Int(-7),
            Value::text("2"),
            Value::Int(3),
            Value::Float(3.0),
        ]);
        for func in [
            AggFunc::Count,
            AggFunc::Sum,
            AggFunc::Total,
            AggFunc::Avg,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::GroupConcat,
        ] {
            for distinct in [false, true] {
                for n in [1, 2, 3, 5] {
                    assert_eq!(
                        scattered(func, distinct, &inputs, n),
                        serial(func, distinct, &inputs),
                        "func={func:?} distinct={distinct} shards={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn minmax_tie_keeps_earliest_representation() {
        // Int(5) and Float(5.0) compare equal; the serial fold keeps
        // whichever came first. A naive cross-shard merge that uses <=
        // or ignores seqs would return the wrong representation.
        let inputs = vec![(0u64, Value::Int(5)), (1u64, Value::Float(5.0))];
        for n in [1, 2] {
            assert_eq!(scattered(AggFunc::Min, false, &inputs, n), Value::Int(5));
            assert_eq!(scattered(AggFunc::Max, false, &inputs, n), Value::Int(5));
        }
        let flipped = vec![(0u64, Value::Float(5.0)), (1u64, Value::Int(5))];
        for n in [1, 2] {
            assert_eq!(
                scattered(AggFunc::Min, false, &flipped, n),
                Value::Float(5.0)
            );
        }
    }

    #[test]
    fn avg_merges_as_sum_count_not_averaged_averages() {
        // Skewed shard sizes: shard 0 holds one value (10), shard 1
        // holds three (2, 2, 2). True mean = 16/4 = 4.0; averaging the
        // per-shard averages would give (10 + 2) / 2 = 6.0.
        let agg = call(AggFunc::Avg, false);
        let mut a = PartialAgg::new(&agg);
        a.update(0, Value::Int(10));
        let mut b = PartialAgg::new(&agg);
        for seq in 1..4 {
            b.update(seq, Value::Int(2));
        }
        let naive_average_of_averages = (10.0 + 2.0) / 2.0;
        a.merge(b).unwrap();
        let merged = a.finish(&agg).unwrap();
        assert_eq!(merged, Value::Float(4.0));
        assert_ne!(merged, Value::Float(naive_average_of_averages));
    }

    #[test]
    fn group_partials_merge_orders_by_first_seen() {
        let aggs = [call(AggFunc::Count, false)];
        // Shard 0 sees seqs {1, 3}; shard 1 sees {0, 2}.
        let mut b0 = GroupPartialsBuilder::new(&aggs);
        b0.add(1, vec![Value::text("x")], vec![Value::Int(1)]);
        b0.add(3, vec![Value::text("y")], vec![Value::Int(1)]);
        let mut b1 = GroupPartialsBuilder::new(&aggs);
        b1.add(0, vec![Value::text("y")], vec![Value::Int(1)]);
        b1.add(2, vec![Value::text("x")], vec![Value::Int(1)]);
        let merged = merge_partials([b0.build(), b1.build()]).unwrap();
        let rows = finish_partials(merged, 1, &aggs).unwrap();
        // Global first-seen order: y (seq 0) then x (seq 1).
        assert_eq!(
            rows,
            vec![
                vec![Value::text("y"), Value::Int(2)],
                vec![Value::text("x"), Value::Int(2)],
            ]
        );
    }

    #[test]
    fn empty_global_aggregate_yields_one_row() {
        let aggs = [call(AggFunc::Sum, false), call(AggFunc::Count, false)];
        let merged = merge_partials([] as [GroupPartials; 0]).unwrap();
        let rows = finish_partials(merged, 0, &aggs).unwrap();
        assert_eq!(rows, vec![vec![Value::Null, Value::Int(0)]]);
    }

    #[test]
    fn wire_round_trip_is_exact() {
        let aggs = [
            call(AggFunc::Avg, false),
            call(AggFunc::Min, false),
            call(AggFunc::Count, true),
            call(AggFunc::GroupConcat, false),
        ];
        let mut b = GroupPartialsBuilder::new(&aggs);
        b.add(
            4,
            vec![Value::text("k'1"), Value::Null],
            vec![
                Value::Float(-0.0),
                Value::Int(5),
                Value::text("dup"),
                Value::text("part,1"),
            ],
        );
        b.add(
            9,
            vec![Value::text("k'1"), Value::Null],
            vec![
                Value::Float(f64::NAN),
                Value::Float(5.0),
                Value::text("dup"),
                Value::Null,
            ],
        );
        let gp = b.build();
        let decoded = GroupPartials::decode(&gp.encode()).unwrap();
        assert_eq!(format!("{gp:?}"), {
            // HashSet iteration order may differ; compare via finish.
            let rows_a = finish_partials(gp.clone(), 2, &aggs).unwrap();
            let rows_b = finish_partials(decoded.clone(), 2, &aggs).unwrap();
            assert_eq!(format!("{rows_a:?}"), format!("{rows_b:?}"));
            format!("{gp:?}")
        });
        assert_eq!(decoded.keys, gp.keys);
    }

    #[test]
    fn decode_rejects_truncated_and_trailing() {
        let aggs = [call(AggFunc::Count, false)];
        let mut b = GroupPartialsBuilder::new(&aggs);
        b.add(0, vec![Value::Int(1)], vec![Value::Int(1)]);
        let bytes = b.build().encode();
        assert!(GroupPartials::decode(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(GroupPartials::decode(&extended).is_err());
        assert!(GroupPartials::decode(&bytes).is_ok());
    }
}
