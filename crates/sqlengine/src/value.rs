//! Runtime values and the engine's coercion / comparison rules.
//!
//! The value model follows SQLite's dynamic typing: every cell holds a
//! [`Value`], and operators coerce between integers, floats, and text
//! according to a small, well-defined set of rules.

use crate::error::{SqlError, SqlResult};
use std::cmp::Ordering;
use std::fmt;

/// A dynamically typed SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit IEEE float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
}

impl Value {
    /// Build a text value from anything string-like.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The numeric interpretation, if one exists (ints and floats only).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The integer interpretation, if exact.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 && f.is_finite() => Some(*f as i64),
            _ => None,
        }
    }

    /// The text content, if this is a text value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// SQL three-valued truthiness: NULL is unknown, numbers are true when
    /// nonzero, text is true when it parses as a nonzero number (SQLite rule).
    pub fn truthiness(&self) -> Option<bool> {
        match self {
            Value::Null => None,
            Value::Int(i) => Some(*i != 0),
            Value::Float(f) => Some(*f != 0.0),
            Value::Text(s) => Some(s.trim().parse::<f64>().map(|f| f != 0.0).unwrap_or(false)),
        }
    }

    /// Total ordering used by ORDER BY, B-tree indexes, and DISTINCT:
    /// `NULL < numeric (by value) < text (lexicographic)`.
    ///
    /// NaN floats sort after all other numerics so the order stays total.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Int(_) | Float(_) => 1,
                Text(_) => 2,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }

    /// SQL equality (`=`). Returns `None` when either side is NULL.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// SQL comparison for `<`, `<=`, `>`, `>=`. Returns `None` on NULL.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Coerce to a numeric value for arithmetic; text that parses as a
    /// number is accepted (SQLite affinity rule).
    pub fn coerce_numeric(&self) -> SqlResult<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(_) | Value::Float(_) => Ok(self.clone()),
            Value::Text(s) => {
                let t = s.trim();
                if let Ok(i) = t.parse::<i64>() {
                    Ok(Value::Int(i))
                } else if let Ok(f) = t.parse::<f64>() {
                    Ok(Value::Float(f))
                } else {
                    Err(SqlError::Type(format!("cannot use text {t:?} as a number")))
                }
            }
        }
    }

    /// Render as SQL literal syntax (used by plan display and tests).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".into(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.is_finite() {
                    format!("{f:.1}")
                } else {
                    f.to_string()
                }
            }
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            // Ints and equal-valued floats must hash alike because they
            // compare equal under `total_cmp`.
            Value::Int(i) => {
                state.write_u8(1);
                state.write_u64((*i as f64).to_bits());
            }
            Value::Float(f) => {
                state.write_u8(1);
                state.write_u64(f.to_bits());
            }
            Value::Text(s) => {
                state.write_u8(2);
                s.hash(state);
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Int(v as i64)
    }
}

/// Arithmetic on values with SQL NULL propagation.
pub mod arith {
    use super::*;

    fn binary_numeric(
        lhs: &Value,
        rhs: &Value,
        int_op: impl Fn(i64, i64) -> SqlResult<Value>,
        float_op: impl Fn(f64, f64) -> SqlResult<Value>,
    ) -> SqlResult<Value> {
        let l = lhs.coerce_numeric()?;
        let r = rhs.coerce_numeric()?;
        match (l, r) {
            (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
            (Value::Int(a), Value::Int(b)) => int_op(a, b),
            (a, b) => float_op(a.as_f64().unwrap(), b.as_f64().unwrap()),
        }
    }

    /// `lhs + rhs` with integer overflow promoting to float.
    pub fn add(lhs: &Value, rhs: &Value) -> SqlResult<Value> {
        binary_numeric(
            lhs,
            rhs,
            |a, b| {
                Ok(a.checked_add(b)
                    .map(Value::Int)
                    .unwrap_or_else(|| Value::Float(a as f64 + b as f64)))
            },
            |a, b| Ok(Value::Float(a + b)),
        )
    }

    /// `lhs - rhs`.
    pub fn sub(lhs: &Value, rhs: &Value) -> SqlResult<Value> {
        binary_numeric(
            lhs,
            rhs,
            |a, b| {
                Ok(a.checked_sub(b)
                    .map(Value::Int)
                    .unwrap_or_else(|| Value::Float(a as f64 - b as f64)))
            },
            |a, b| Ok(Value::Float(a - b)),
        )
    }

    /// `lhs * rhs`.
    pub fn mul(lhs: &Value, rhs: &Value) -> SqlResult<Value> {
        binary_numeric(
            lhs,
            rhs,
            |a, b| {
                Ok(a.checked_mul(b)
                    .map(Value::Int)
                    .unwrap_or_else(|| Value::Float(a as f64 * b as f64)))
            },
            |a, b| Ok(Value::Float(a * b)),
        )
    }

    /// `lhs / rhs`. Integer division truncates; division by zero yields NULL
    /// (SQLite behaviour) rather than an error.
    pub fn div(lhs: &Value, rhs: &Value) -> SqlResult<Value> {
        binary_numeric(
            lhs,
            rhs,
            |a, b| {
                if b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(a / b))
                }
            },
            |a, b| {
                if b == 0.0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Float(a / b))
                }
            },
        )
    }

    /// `lhs % rhs`. Modulo by zero yields NULL.
    pub fn rem(lhs: &Value, rhs: &Value) -> SqlResult<Value> {
        binary_numeric(
            lhs,
            rhs,
            |a, b| {
                if b == 0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(a % b))
                }
            },
            |a, b| {
                if b == 0.0 {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Float(a % b))
                }
            },
        )
    }

    /// Unary negation.
    pub fn neg(v: &Value) -> SqlResult<Value> {
        match v.coerce_numeric()? {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(i
                .checked_neg()
                .map(Value::Int)
                .unwrap_or(Value::Float(-(i as f64)))),
            Value::Float(f) => Ok(Value::Float(-f)),
            _ => unreachable!("coerce_numeric returns numeric or null"),
        }
    }

    /// String concatenation (`||`); NULL-propagating.
    pub fn concat(lhs: &Value, rhs: &Value) -> SqlResult<Value> {
        if lhs.is_null() || rhs.is_null() {
            return Ok(Value::Null);
        }
        Ok(Value::Text(format!("{lhs}{rhs}")))
    }
}

/// SQL `LIKE` pattern matching with `%` and `_` wildcards.
///
/// Case-insensitive for ASCII, matching SQLite's default behaviour.
/// Iterative with single-level backtracking to the most recent `%`
/// (the classic glob algorithm): O(text × pattern) worst case, so
/// adversarial many-`%` patterns cannot blow up a query.
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t = text.as_bytes();
    let p = pattern.as_bytes();
    let (mut ti, mut pi) = (0usize, 0usize);
    // Position of the last `%` seen, and the text position it matched to.
    let (mut star, mut star_t) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == b'_' || p[pi].eq_ignore_ascii_case(&t[ti])) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == b'%' {
            star = pi;
            star_t = ti;
            pi += 1;
        } else if star != usize::MAX {
            // Backtrack: let the last `%` consume one more byte.
            star_t += 1;
            ti = star_t;
            pi = star + 1;
        } else {
            return false;
        }
    }
    // Only trailing `%`s may remain.
    while pi < p.len() && p[pi] == b'%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_ranks_null_numeric_text() {
        let mut vals = vec![
            Value::text("apple"),
            Value::Int(3),
            Value::Null,
            Value::Float(1.5),
            Value::text("Banana"),
            Value::Int(-2),
        ];
        vals.sort();
        assert_eq!(
            vals,
            vec![
                Value::Null,
                Value::Int(-2),
                Value::Float(1.5),
                Value::Int(3),
                Value::text("Banana"),
                Value::text("apple"),
            ]
        );
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert!(Value::Int(2) == Value::Float(2.0));
    }

    #[test]
    fn equal_int_and_float_hash_alike() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
    }

    #[test]
    fn null_propagates_through_comparisons() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
    }

    #[test]
    fn arithmetic_basics() {
        assert_eq!(
            arith::add(&Value::Int(2), &Value::Int(3)).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            arith::mul(&Value::Int(2), &Value::Float(1.5)).unwrap(),
            Value::Float(3.0)
        );
        assert_eq!(
            arith::div(&Value::Int(7), &Value::Int(2)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            arith::div(&Value::Int(7), &Value::Int(0)).unwrap(),
            Value::Null
        );
        assert_eq!(
            arith::rem(&Value::Int(7), &Value::Int(4)).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            arith::add(&Value::Null, &Value::Int(1)).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn arithmetic_overflow_promotes_to_float() {
        let big = Value::Int(i64::MAX);
        match arith::add(&big, &Value::Int(1)).unwrap() {
            Value::Float(f) => assert!(f >= i64::MAX as f64),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn numeric_coercion_of_text() {
        assert_eq!(Value::text("42").coerce_numeric().unwrap(), Value::Int(42));
        assert_eq!(
            Value::text(" 2.5 ").coerce_numeric().unwrap(),
            Value::Float(2.5)
        );
        assert!(Value::text("abc").coerce_numeric().is_err());
    }

    #[test]
    fn truthiness_rules() {
        assert_eq!(Value::Null.truthiness(), None);
        assert_eq!(Value::Int(0).truthiness(), Some(false));
        assert_eq!(Value::Int(5).truthiness(), Some(true));
        assert_eq!(Value::text("1").truthiness(), Some(true));
        assert_eq!(Value::text("hello").truthiness(), Some(false));
    }

    #[test]
    fn like_pathological_patterns_terminate_fast() {
        let text = "a".repeat(2000);
        let pattern = "%a%a%a%a%a%a%a%a%b";
        let start = std::time::Instant::now();
        assert!(!like_match(&text, pattern));
        assert!(
            start.elapsed().as_millis() < 500,
            "took {:?}",
            start.elapsed()
        );
        assert!(like_match(&text, "%a%a%a%a%a%a%a%a%"));
    }

    #[test]
    fn like_wildcards() {
        assert!(like_match("Titanic", "T%"));
        assert!(like_match("Titanic", "%tanic"));
        assert!(like_match("Titanic", "_itanic"));
        assert!(like_match("Titanic", "%TAN%"));
        assert!(!like_match("Titanic", "X%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn sql_literal_round_trip_quoting() {
        assert_eq!(Value::text("it's").to_sql_literal(), "'it''s'");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
        assert_eq!(Value::Float(2.0).to_sql_literal(), "2.0");
    }

    #[test]
    fn concat_behaviour() {
        assert_eq!(
            arith::concat(&Value::text("ab"), &Value::Int(3)).unwrap(),
            Value::text("ab3")
        );
        assert_eq!(
            arith::concat(&Value::Null, &Value::text("x")).unwrap(),
            Value::Null
        );
    }
}
