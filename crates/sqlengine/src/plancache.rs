//! The plan cache: bound + optimized plans for repeated statements.
//!
//! Parsing, binding, and optimizing a statement is pure CPU spent before
//! a single row moves; the TAG workloads re-run the same statements
//! constantly (the hand-written pipelines' base scans, cache-missed
//! re-asks of the same question). The cache maps
//! `(schema epoch, normalized SQL)` to the finished [`Plan`] so repeated
//! statements skip straight to execution.
//!
//! Two properties keep it correct:
//!
//! - **Epoch keying.** [`crate::Database`] bumps its schema epoch on
//!   every DDL *and* DML statement (the planner eagerly executes
//!   uncorrelated subqueries, so even an INSERT can invalidate a plan's
//!   embedded literals) and on any direct catalog/UDF mutation. The
//!   epoch is part of the key and a bump also drops every entry, so a
//!   stale plan can never be served.
//! - **Collision-safe normalization.** [`normalize_sql`] folds token
//!   whitespace and structural-keyword case, but *preserves* the
//!   as-written case of every token that can reach a result's column
//!   names (select-list heads, qualified references, aliases). Name
//!   binding in the engine is case-insensitive everywhere, so two
//!   statements that normalize identically produce byte-identical
//!   results.

use crate::lexer::{tokenize, Sym, Token};
use crate::plan::Plan;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};

/// Clause-structural keywords safe to case-fold. Deliberately excludes
/// anything that can occur inside a select-item expression whose text
/// feeds an output column name (functions, CASE/WHEN, NULL, ...).
const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "OFFSET", "JOIN",
    "INNER", "LEFT", "RIGHT", "OUTER", "FULL", "CROSS", "ON", "AS", "UNION", "ALL", "DISTINCT",
    "ASC", "DESC", "VALUES",
];

/// Is `tok` an unquoted identifier equal (case-insensitively) to `kw`?
fn is_kw(tok: &Token, kw: &str) -> bool {
    matches!(tok, Token::Ident(s, false) if s.eq_ignore_ascii_case(kw))
}

/// A previous token after which an identifier may be a select-list head,
/// a qualified column reference, or an alias — positions whose as-written
/// case becomes a result column name and must therefore not be folded.
fn prev_guards_name(prev: Option<&Token>) -> bool {
    match prev {
        None => false,
        Some(Token::Sym(Sym::Comma))
        | Some(Token::Sym(Sym::Dot))
        | Some(Token::Sym(Sym::LParen)) => true,
        Some(t) => is_kw(t, "SELECT") || is_kw(t, "DISTINCT") || is_kw(t, "AS"),
    }
}

/// Normalize a SQL statement for plan-cache keying.
///
/// The statement is tokenized and re-rendered with one space between
/// tokens, so any whitespace/comment variation maps to the same key.
/// Structural keywords (`select`, `FROM`, ...) are upper-cased and
/// callable names (an identifier directly before `(`) are lower-cased —
/// both folds are safe because name binding is case-insensitive and
/// neither position's spelling reaches a result column name. Identifier
/// case is preserved everywhere it could (select-list heads, aliases,
/// qualified references), so statements with different output column
/// names never share a key. Statements that fail to tokenize fall back
/// to a whitespace-collapsed copy of the raw text.
pub fn normalize_sql(sql: &str) -> String {
    let Ok(tokens) = tokenize(sql) else {
        return sql.split_whitespace().collect::<Vec<_>>().join(" ");
    };
    let mut out = String::with_capacity(sql.len());
    for (i, tok) in tokens.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        match tok {
            Token::Ident(s, false) => {
                let followed_by_paren = matches!(tokens.get(i + 1), Some(Token::Sym(Sym::LParen)));
                if followed_by_paren {
                    // Callable position: binding and display both
                    // lowercase the name, so folding is lossless.
                    out.push_str(&s.to_ascii_lowercase());
                } else if KEYWORDS.iter().any(|k| s.eq_ignore_ascii_case(k))
                    && !prev_guards_name(i.checked_sub(1).and_then(|p| tokens.get(p)))
                {
                    out.push_str(&s.to_ascii_uppercase());
                } else {
                    out.push_str(s);
                }
            }
            Token::Ident(s, true) => {
                out.push('"');
                out.push_str(&s.replace('"', "\"\""));
                out.push('"');
            }
            Token::Str(s) => {
                out.push('\'');
                out.push_str(&s.replace('\'', "''"));
                out.push('\'');
            }
            Token::Int(v) => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{v}"));
            }
            Token::Float(v) => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{v}"));
            }
            Token::Sym(s) => {
                let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{s}"));
            }
        }
    }
    out
}

/// One arm of a cached statement: a bound + optimized plan plus its
/// output column names. A plain SELECT is a single arm; a compound
/// SELECT stores one arm per UNION branch.
#[derive(Debug)]
pub struct CachedArm {
    /// `UNION ALL` (true) vs deduplicating `UNION` (false) with respect
    /// to the preceding arms; unused on the first arm.
    pub union_all: bool,
    /// The optimized physical plan.
    pub plan: Plan,
    /// The plan's output column names, precomputed.
    pub columns: Vec<String>,
}

/// A fully planned statement, ready to execute against the catalog it
/// was planned over (enforced by epoch keying).
#[derive(Debug)]
pub struct CachedPlan {
    /// The statement's arms, in source order (≥ 1).
    pub arms: Vec<CachedArm>,
}

/// Cumulative plan-cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups that found a plan for the current epoch.
    pub hits: u64,
    /// Lookups that found nothing (statement was re-planned).
    pub misses: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Whole-cache invalidations (schema-epoch bumps).
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Configured capacity (0 = disabled).
    pub capacity: u64,
}

impl PlanCacheStats {
    /// Hit rate in `0..=1` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        if self.hits + self.misses == 0 {
            0.0
        } else {
            self.hits as f64 / (self.hits + self.misses) as f64
        }
    }

    /// Fold another stats snapshot into this one (capacities add).
    pub fn add(&mut self, other: &PlanCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
        self.entries += other.entries;
        self.capacity += other.capacity;
    }
}

type Key = (u64, String);

#[derive(Debug, Default)]
struct Inner {
    cap: usize,
    tick: u64,
    map: HashMap<Key, (Arc<CachedPlan>, u64)>,
    order: BTreeMap<u64, Key>,
    hits: u64,
    misses: u64,
    evictions: u64,
    invalidations: u64,
}

/// Default capacity of a [`Database`](crate::Database)'s plan cache.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 128;

/// A bounded LRU of planned statements, shared-borrow friendly (all
/// methods take `&self`) so the read-only query path can use it.
#[derive(Debug)]
pub struct PlanCache {
    inner: Mutex<Inner>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// A cache holding at most `capacity` plans; 0 disables caching.
    pub fn new(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(Inner {
                cap: capacity,
                ..Inner::default()
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.lock().cap
    }

    /// Change the capacity; shrinking (or disabling with 0) drops every
    /// resident entry.
    pub fn set_capacity(&self, capacity: usize) {
        let mut g = self.lock();
        g.cap = capacity;
        if g.map.len() > capacity {
            g.map.clear();
            g.order.clear();
        }
    }

    /// Look up a plan for `(epoch, key)`, updating recency and counters.
    pub fn get(&self, epoch: u64, key: &str) -> Option<Arc<CachedPlan>> {
        let mut g = self.lock();
        if g.cap == 0 {
            return None;
        }
        g.tick += 1;
        let tick = g.tick;
        let k: Key = (epoch, key.to_owned());
        match g.map.get_mut(&k) {
            Some((plan, t)) => {
                let plan = Arc::clone(plan);
                let old = *t;
                *t = tick;
                g.order.remove(&old);
                g.order.insert(tick, k);
                g.hits += 1;
                Some(plan)
            }
            None => {
                g.misses += 1;
                None
            }
        }
    }

    /// Insert a plan, evicting the least-recently-used entry when full.
    pub fn insert(&self, epoch: u64, key: String, plan: Arc<CachedPlan>) {
        let mut g = self.lock();
        if g.cap == 0 {
            return;
        }
        g.tick += 1;
        let tick = g.tick;
        let k: Key = (epoch, key);
        if let Some((_, old)) = g.map.remove(&k) {
            g.order.remove(&old);
        } else if g.map.len() >= g.cap {
            if let Some((&oldest, _)) = g.order.iter().next() {
                if let Some(victim) = g.order.remove(&oldest) {
                    g.map.remove(&victim);
                    g.evictions += 1;
                }
            }
        }
        g.map.insert(k.clone(), (plan, tick));
        g.order.insert(tick, k);
    }

    /// Drop every resident entry (schema-epoch bump). Cumulative
    /// hit/miss/eviction counters survive; `invalidations` increments.
    pub fn invalidate(&self) {
        let mut g = self.lock();
        g.map.clear();
        g.order.clear();
        g.invalidations += 1;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        let g = self.lock();
        PlanCacheStats {
            hits: g.hits,
            misses: g.misses,
            evictions: g.evictions,
            invalidations: g.invalidations,
            entries: g.map.len() as u64,
            capacity: g.cap as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arm() -> Arc<CachedPlan> {
        Arc::new(CachedPlan {
            arms: vec![CachedArm {
                union_all: false,
                plan: Plan::TableScan {
                    table: "t".into(),
                    columns: vec!["x".into()],
                },
                columns: vec!["x".into()],
            }],
        })
    }

    #[test]
    fn normalization_folds_whitespace_and_keyword_case() {
        let a = normalize_sql("select  x\n from\t t  where x > 1");
        let b = normalize_sql("SELECT x FROM t WHERE x > 1");
        assert_eq!(a, b);
        assert_eq!(a, "SELECT x FROM t WHERE x > 1");
        // Comments vanish with the whitespace.
        assert_eq!(normalize_sql("SELECT x -- hi\nFROM t"), "SELECT x FROM t");
    }

    #[test]
    fn normalization_folds_callable_names() {
        assert_eq!(
            normalize_sql("SELECT COUNT ( * ) FROM t"),
            normalize_sql("select count(*) from t"),
        );
    }

    #[test]
    fn normalization_preserves_name_affecting_case() {
        // Select-list heads, qualified refs, and aliases keep their
        // as-written case: these pairs must NOT collide (their output
        // column names differ).
        for (a, b) in [
            ("SELECT City FROM t", "SELECT CITY FROM t"),
            ("SELECT t.City FROM t", "SELECT t.CITY FROM t"),
            ("SELECT x AS Name FROM t", "SELECT x AS name FROM t"),
            ("SELECT DISTINCT City FROM t", "SELECT DISTINCT CITY FROM t"),
            ("SELECT a, City FROM t", "SELECT a, CITY FROM t"),
        ] {
            assert_ne!(normalize_sql(a), normalize_sql(b), "{a} vs {b}");
        }
    }

    #[test]
    fn normalization_preserves_values_and_strings() {
        // Literal values must never collide.
        assert_ne!(
            normalize_sql("SELECT * FROM t WHERE x > 700"),
            normalize_sql("SELECT * FROM t WHERE x > 705"),
        );
        assert_ne!(
            normalize_sql("SELECT * FROM t WHERE c = 'Bay Area'"),
            normalize_sql("SELECT * FROM t WHERE c = 'bay area'"),
        );
        // Interior whitespace of string literals is data, not formatting.
        assert_ne!(
            normalize_sql("SELECT * FROM t WHERE c = 'a  b'"),
            normalize_sql("SELECT * FROM t WHERE c = 'a b'"),
        );
        // Escaped quotes round-trip.
        assert_eq!(
            normalize_sql("SELECT 'it''s'"),
            normalize_sql("SELECT   'it''s'"),
        );
    }

    #[test]
    fn normalization_quoted_identifiers_stay_quoted() {
        assert_ne!(
            normalize_sql("SELECT \"from\" FROM t"),
            normalize_sql("SELECT \"FROM\" FROM t"),
        );
        assert_eq!(
            normalize_sql("SELECT  \"a b\"  FROM t"),
            normalize_sql("SELECT \"a b\" FROM t"),
        );
    }

    #[test]
    fn unlexable_input_falls_back_to_whitespace_collapse() {
        // An unterminated string cannot tokenize.
        let n = normalize_sql("SELECT  'oops");
        assert_eq!(n, "SELECT 'oops");
    }

    #[test]
    fn cache_hits_and_misses_by_epoch_and_key() {
        let c = PlanCache::new(4);
        assert!(c.get(0, "SELECT x FROM t").is_none());
        c.insert(0, "SELECT x FROM t".into(), arm());
        assert!(c.get(0, "SELECT x FROM t").is_some());
        // Different epoch: the same text misses.
        assert!(c.get(1, "SELECT x FROM t").is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_and_invalidations() {
        let c = PlanCache::new(2);
        c.insert(0, "a".into(), arm());
        c.insert(0, "b".into(), arm());
        assert!(c.get(0, "a").is_some()); // a is MRU
        c.insert(0, "c".into(), arm()); // evicts b
        assert!(c.get(0, "b").is_none());
        assert!(c.get(0, "a").is_some());
        assert_eq!(c.stats().evictions, 1);
        c.invalidate();
        assert!(c.get(0, "a").is_none());
        let s = c.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.entries, 0);
        assert_eq!(s.evictions, 1, "invalidation is not an eviction");
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let c = PlanCache::new(0);
        c.insert(0, "a".into(), arm());
        assert!(c.get(0, "a").is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.capacity), (0, 0, 0, 0));
    }

    #[test]
    fn set_capacity_shrink_clears() {
        let c = PlanCache::new(8);
        c.insert(0, "a".into(), arm());
        c.set_capacity(0);
        assert!(c.get(0, "a").is_none());
        c.set_capacity(8);
        c.insert(0, "a".into(), arm());
        assert!(c.get(0, "a").is_some());
    }

    #[test]
    fn stats_aggregate_with_add() {
        let mut total = PlanCacheStats::default();
        let c = PlanCache::new(2);
        c.insert(0, "a".into(), arm());
        let _ = c.get(0, "a");
        let _ = c.get(0, "b");
        total.add(&c.stats());
        total.add(&c.stats());
        assert_eq!(total.hits, 2);
        assert_eq!(total.misses, 2);
        assert_eq!(total.capacity, 4);
    }
}
