//! Morsel-driven parallelism: fixed-size work units over a scoped
//! worker pool.
//!
//! Scans are partitioned into fixed-size *morsels*
//! ([`ExecPolicy::morsel_rows`] rows each); every chunked operator's
//! per-morsel work is distributed over a pool of
//! [`ExecPolicy::workers`] scoped threads pulling task indices from a
//! shared counter (HyPer-style morsel dispatch). Results are collected
//! *by task index*, so the output order — and therefore every
//! downstream merge — is independent of worker count and scheduling.
//!
//! Determinism contract: [`parallel_map`] returns results in task
//! order, and callers must combine per-morsel partial results by a
//! morsel-order merge. Error selection is deterministic too: the
//! caller sees the error of the lowest-indexed failing task, matching
//! what a serial left-to-right run would report at morsel granularity.

use crate::error::{SqlError, SqlResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How the engine executes relational plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecPolicy {
    /// Route relational plans through the columnar chunked executor.
    /// Off by default: the serial row-at-a-time path stays the
    /// reference semantics.
    pub chunked: bool,
    /// Worker threads for morsel dispatch (1 = run inline).
    pub workers: usize,
    /// Rows per scan morsel.
    pub morsel_rows: usize,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            chunked: false,
            workers: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }
}

/// Default scan morsel size. Large enough to amortize dispatch and keep
/// typed loops hot, small enough that a scan splits into useful
/// parallelism at TAG-Bench scale (10³–10⁶ rows).
pub const DEFAULT_MORSEL_ROWS: usize = 8192;

impl ExecPolicy {
    /// A chunked policy with the given worker count and default morsel
    /// size.
    pub fn chunked(workers: usize) -> ExecPolicy {
        ExecPolicy {
            chunked: true,
            workers: workers.max(1),
            morsel_rows: DEFAULT_MORSEL_ROWS,
        }
    }

    /// Partition `[0, len)` into morsel ranges.
    pub fn morsels(&self, len: usize) -> Vec<(usize, usize)> {
        let step = self.morsel_rows.max(1);
        let mut out = Vec::with_capacity(len.div_ceil(step).max(1));
        let mut start = 0;
        while start < len {
            let end = (start + step).min(len);
            out.push((start, end));
            start = end;
        }
        out
    }
}

/// Hooks the pool uses to report liveness to the metrics layer.
pub trait PoolObserver: Sync {
    /// A worker picked up a task.
    fn task_started(&self) {}
    /// A worker finished a task.
    fn task_finished(&self) {}
}

/// The silent observer.
pub struct NoObserver;
impl PoolObserver for NoObserver {}

/// Run `tasks` task indices through `f` on up to `workers` threads,
/// returning results in task order (see module docs for the
/// determinism contract).
pub fn parallel_map<T, F>(
    tasks: usize,
    workers: usize,
    observer: &dyn PoolObserver,
    f: F,
) -> Vec<SqlResult<T>>
where
    T: Send,
    F: Fn(usize) -> SqlResult<T> + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    let threads = workers.max(1).min(tasks);
    if threads <= 1 {
        return (0..tasks)
            .map(|i| {
                observer.task_started();
                let r = f(i);
                observer.task_finished();
                r
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<SqlResult<T>>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                observer.task_started();
                let r = f(i);
                observer.task_finished();
                *results[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .unwrap_or_else(|| Err(SqlError::Eval("morsel worker dropped its task".into())))
        })
        .collect()
}

/// Collapse ordered per-task results, surfacing the lowest-indexed
/// error (the deterministic error the serial path would hit first at
/// morsel granularity).
pub fn collect_ordered<T>(results: Vec<SqlResult<T>>) -> SqlResult<Vec<T>> {
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_partition_covers_range() {
        let p = ExecPolicy {
            chunked: true,
            workers: 4,
            morsel_rows: 10,
        };
        assert_eq!(p.morsels(0), Vec::<(usize, usize)>::new());
        assert_eq!(p.morsels(25), vec![(0, 10), (10, 20), (20, 25)]);
        assert_eq!(p.morsels(10), vec![(0, 10)]);
    }

    #[test]
    fn parallel_map_preserves_task_order() {
        for workers in [1, 2, 8] {
            let results = parallel_map(100, workers, &NoObserver, |i| Ok(i * 2));
            let vals = collect_ordered(results).unwrap();
            assert_eq!(vals, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn first_error_in_task_order_wins() {
        for workers in [1, 2, 8] {
            let results = parallel_map(50, workers, &NoObserver, |i| {
                if i >= 10 {
                    Err(SqlError::Eval(format!("task {i}")))
                } else {
                    Ok(i)
                }
            });
            let err = collect_ordered(results).unwrap_err();
            assert_eq!(err.message(), "task 10");
        }
    }
}
