//! Recursive-descent SQL parser.
//!
//! Grammar coverage: SELECT (DISTINCT, joins, WHERE, GROUP BY, HAVING,
//! ORDER BY, LIMIT/OFFSET, subqueries in FROM/IN/EXISTS/scalar position),
//! CREATE TABLE, CREATE `[UNIQUE]` INDEX, INSERT, UPDATE, DELETE, DROP TABLE.

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use crate::lexer::{tokenize, Sym, Token};
use crate::schema::DataType;
use crate::value::Value;

/// Parse a single SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> SqlResult<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.eat_sym(Sym::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a sequence of semicolon-separated statements.
pub fn parse_statements(sql: &str) -> SqlResult<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    loop {
        while p.eat_sym(Sym::Semicolon) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> SqlResult<Parser> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn expect_eof(&self) -> SqlResult<()> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(SqlError::Parse(format!("unexpected trailing token `{t}`"))),
        }
    }

    /// Is the current token the given (unquoted) keyword?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s, false)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume a keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> SqlResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected keyword {kw}, found {}",
                self.describe_current()
            )))
        }
    }

    fn eat_sym(&mut self, sym: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Sym(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_sym(&mut self, sym: Sym) -> SqlResult<()> {
        if self.eat_sym(sym) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected `{sym}`, found {}",
                self.describe_current()
            )))
        }
    }

    fn describe_current(&self) -> String {
        match self.peek() {
            Some(t) => format!("`{t}`"),
            None => "end of input".into(),
        }
    }

    /// Consume any identifier (quoted or not). Keywords are allowed so
    /// BIRD-style columns like `Year` work.
    fn ident(&mut self) -> SqlResult<String> {
        match self.next() {
            Some(Token::Ident(s, _)) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or("end of input".into())
            ))),
        }
    }

    // ---- statements --------------------------------------------------

    fn statement(&mut self) -> SqlResult<Statement> {
        if self.at_kw("SELECT") {
            let first = self.select()?;
            if !self.at_kw("UNION") {
                return Ok(Statement::Select(first));
            }
            let mut rest = Vec::new();
            while self.eat_kw("UNION") {
                let all = self.eat_kw("ALL");
                rest.push((all, self.select()?));
            }
            return Ok(Statement::CompoundSelect { first, rest });
        }
        if self.eat_kw("CREATE") {
            let unique = self.eat_kw("UNIQUE");
            if self.eat_kw("TABLE") {
                if unique {
                    return Err(SqlError::Parse("UNIQUE TABLE is not valid".into()));
                }
                return self.create_table();
            }
            if self.eat_kw("INDEX") {
                return self.create_index(unique);
            }
            return Err(SqlError::Parse(
                "expected TABLE or INDEX after CREATE".into(),
            ));
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("DROP") {
            self.expect_kw("TABLE")?;
            let if_exists = if self.eat_kw("IF") {
                self.expect_kw("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            return Ok(Statement::DropTable { name, if_exists });
        }
        if self.eat_kw("DELETE") {
            self.expect_kw("FROM")?;
            let table = self.ident()?;
            let predicate = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, predicate });
        }
        if self.eat_kw("UPDATE") {
            let table = self.ident()?;
            self.expect_kw("SET")?;
            let mut assignments = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect_sym(Sym::Eq)?;
                assignments.push((col, self.expr()?));
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            let predicate = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                assignments,
                predicate,
            });
        }
        Err(SqlError::Parse(format!(
            "expected a statement, found {}",
            self.describe_current()
        )))
    }

    fn create_table(&mut self) -> SqlResult<Statement> {
        let if_not_exists = if self.eat_kw("IF") {
            self.expect_kw("NOT")?;
            self.expect_kw("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        self.expect_sym(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let dtype = DataType::parse(&self.ident()?)?;
            let mut not_null = false;
            let mut primary_key = false;
            loop {
                if self.eat_kw("NOT") {
                    self.expect_kw("NULL")?;
                    not_null = true;
                } else if self.eat_kw("NULL") {
                    // explicit nullable marker, no-op
                } else if self.eat_kw("PRIMARY") {
                    self.expect_kw("KEY")?;
                    primary_key = true;
                    not_null = true;
                } else {
                    break;
                }
            }
            columns.push(ColumnDef {
                name: col_name,
                dtype,
                not_null,
                primary_key,
            });
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        self.expect_sym(Sym::RParen)?;
        Ok(Statement::CreateTable(CreateTableStmt {
            name,
            if_not_exists,
            columns,
        }))
    }

    fn create_index(&mut self, unique: bool) -> SqlResult<Statement> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_sym(Sym::LParen)?;
        let column = self.ident()?;
        self.expect_sym(Sym::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
            unique,
        })
    }

    fn insert(&mut self) -> SqlResult<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat_sym(Sym::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_sym(Sym::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            rows.push(row);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert(InsertStmt {
            table,
            columns,
            rows,
        }))
    }

    // ---- SELECT ------------------------------------------------------

    fn select(&mut self) -> SqlResult<SelectStmt> {
        self.expect_kw("SELECT")?;
        let distinct = if self.eat_kw("DISTINCT") {
            true
        } else {
            self.eat_kw("ALL");
            false
        };
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_sym(Sym::Comma) {
                break;
            }
        }
        let (from, joins) = if self.eat_kw("FROM") {
            let base = self.table_ref()?;
            let mut joins = Vec::new();
            loop {
                let kind = if self.eat_kw("INNER") {
                    self.expect_kw("JOIN")?;
                    JoinKind::Inner
                } else if self.eat_kw("LEFT") {
                    self.eat_kw("OUTER");
                    self.expect_kw("JOIN")?;
                    JoinKind::Left
                } else if self.eat_kw("CROSS") {
                    self.expect_kw("JOIN")?;
                    JoinKind::Cross
                } else if self.eat_kw("JOIN") {
                    JoinKind::Inner
                } else if self.eat_sym(Sym::Comma) {
                    JoinKind::Cross
                } else {
                    break;
                };
                let table = self.table_ref()?;
                let on = if kind != JoinKind::Cross {
                    self.expect_kw("ON")?;
                    Some(self.expr()?)
                } else if self.eat_kw("ON") {
                    Some(self.expr()?)
                } else {
                    None
                };
                joins.push(Join { kind, table, on });
            }
            (Some(base), joins)
        } else {
            (None, Vec::new())
        };
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            let mut keys = Vec::new();
            loop {
                keys.push(self.expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            keys
        } else {
            Vec::new()
        };
        let having = if self.eat_kw("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let order_by = if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            let mut keys = Vec::new();
            loop {
                let expr = self.expr()?;
                let descending = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                keys.push(OrderKey { expr, descending });
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            keys
        } else {
            Vec::new()
        };
        let (mut limit, mut offset) = (None, None);
        if self.eat_kw("LIMIT") {
            limit = Some(self.unsigned_int("LIMIT")?);
            if self.eat_kw("OFFSET") {
                offset = Some(self.unsigned_int("OFFSET")?);
            } else if self.eat_sym(Sym::Comma) {
                // SQLite's `LIMIT offset, count`
                offset = limit;
                limit = Some(self.unsigned_int("LIMIT")?);
            }
        }
        Ok(SelectStmt {
            distinct,
            items,
            from,
            joins,
            predicate,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn unsigned_int(&mut self, ctx: &str) -> SqlResult<u64> {
        match self.next() {
            Some(Token::Int(i)) if i >= 0 => Ok(i as u64),
            other => Err(SqlError::Parse(format!(
                "{ctx} expects a non-negative integer, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or("end of input".into())
            ))),
        }
    }

    fn select_item(&mut self) -> SqlResult<SelectItem> {
        if self.eat_sym(Sym::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Some(Token::Ident(q, _)), Some(Token::Sym(Sym::Dot)), Some(Token::Sym(Sym::Star))) = (
            self.tokens.get(self.pos),
            self.tokens.get(self.pos + 1),
            self.tokens.get(self.pos + 2),
        ) {
            let q = q.clone();
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s, quoted)) = self.peek() {
            // Implicit alias: bare identifier that is not a clause keyword.
            if *quoted || !is_clause_keyword(s) {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            } else {
                None
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> SqlResult<TableRef> {
        if self.eat_sym(Sym::LParen) {
            let query = self.select()?;
            self.expect_sym(Sym::RParen)?;
            self.eat_kw("AS");
            let alias = self.ident()?;
            return Ok(TableRef::Subquery {
                query: Box::new(query),
                alias,
            });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else if let Some(Token::Ident(s, quoted)) = self.peek() {
            if *quoted || !is_clause_keyword(s) {
                let s = s.clone();
                self.pos += 1;
                Some(s)
            } else {
                None
            }
        } else {
            None
        };
        Ok(TableRef::Table { name, alias })
    }

    // ---- expressions (precedence climbing) ----------------------------

    /// Entry point for expressions: OR level.
    pub(crate) fn expr(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("OR") {
            let rhs = self.and_expr()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("AND") {
            let rhs = self.not_expr()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> SqlResult<Expr> {
        if self.eat_kw("NOT") {
            let operand = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> SqlResult<Expr> {
        let lhs = self.additive()?;
        // Postfix predicates: IS NULL, BETWEEN, IN, LIKE.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let negated = {
            // Lookahead for `NOT BETWEEN/IN/LIKE`.
            if self.at_kw("NOT") {
                let save = self.pos;
                self.pos += 1;
                if self.at_kw("BETWEEN") || self.at_kw("IN") || self.at_kw("LIKE") {
                    true
                } else {
                    self.pos = save;
                    false
                }
            } else {
                false
            }
        };
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(lhs),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("IN") {
            self.expect_sym(Sym::LParen)?;
            if self.at_kw("SELECT") {
                let query = self.select()?;
                self.expect_sym(Sym::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(lhs),
                    query: Box::new(query),
                    negated,
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_sym(Sym::Comma) {
                    break;
                }
            }
            self.expect_sym(Sym::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(lhs),
                list,
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let rhs = self.additive()?;
            return Ok(Expr::binary(
                if negated { BinOp::NotLike } else { BinOp::Like },
                lhs,
                rhs,
            ));
        }
        if negated {
            return Err(SqlError::Parse(
                "expected BETWEEN, IN, or LIKE after NOT".into(),
            ));
        }
        let op = match self.peek() {
            Some(Token::Sym(Sym::Eq)) => Some(BinOp::Eq),
            Some(Token::Sym(Sym::NotEq)) => Some(BinOp::NotEq),
            Some(Token::Sym(Sym::Lt)) => Some(BinOp::Lt),
            Some(Token::Sym(Sym::LtEq)) => Some(BinOp::LtEq),
            Some(Token::Sym(Sym::Gt)) => Some(BinOp::Gt),
            Some(Token::Sym(Sym::GtEq)) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.additive()?;
            return Ok(Expr::binary(op, lhs, rhs));
        }
        Ok(lhs)
    }

    fn additive(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym(Sym::Plus)) => BinOp::Add,
                Some(Token::Sym(Sym::Minus)) => BinOp::Sub,
                Some(Token::Sym(Sym::Concat)) => BinOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> SqlResult<Expr> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Sym(Sym::Star)) => BinOp::Mul,
                Some(Token::Sym(Sym::Slash)) => BinOp::Div,
                Some(Token::Sym(Sym::Percent)) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary()?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> SqlResult<Expr> {
        if self.eat_sym(Sym::Minus) {
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(operand),
            });
        }
        if self.eat_sym(Sym::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> SqlResult<Expr> {
        match self.peek().cloned() {
            Some(Token::Int(i)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(i)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Text(s)))
            }
            Some(Token::Sym(Sym::LParen)) => {
                self.pos += 1;
                if self.at_kw("SELECT") {
                    let q = self.select()?;
                    self.expect_sym(Sym::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(e)
            }
            Some(Token::Ident(name, quoted)) => {
                if !quoted {
                    let upper = name.to_ascii_uppercase();
                    match upper.as_str() {
                        "NULL" => {
                            self.pos += 1;
                            return Ok(Expr::Literal(Value::Null));
                        }
                        "TRUE" => {
                            self.pos += 1;
                            return Ok(Expr::Literal(Value::Int(1)));
                        }
                        "FALSE" => {
                            self.pos += 1;
                            return Ok(Expr::Literal(Value::Int(0)));
                        }
                        "CASE" => {
                            self.pos += 1;
                            return self.case_expr();
                        }
                        "CAST" => {
                            self.pos += 1;
                            self.expect_sym(Sym::LParen)?;
                            let e = self.expr()?;
                            self.expect_kw("AS")?;
                            let dtype = DataType::parse(&self.ident()?)?;
                            self.expect_sym(Sym::RParen)?;
                            return Ok(Expr::Cast {
                                expr: Box::new(e),
                                dtype,
                            });
                        }
                        "EXISTS" => {
                            self.pos += 1;
                            self.expect_sym(Sym::LParen)?;
                            let q = self.select()?;
                            self.expect_sym(Sym::RParen)?;
                            return Ok(Expr::Exists {
                                query: Box::new(q),
                                negated: false,
                            });
                        }
                        _ => {}
                    }
                    if is_clause_keyword(&name) {
                        return Err(SqlError::Parse(format!(
                            "expected expression, found keyword `{name}` \
                             (quote it to use it as a column name)"
                        )));
                    }
                }
                self.pos += 1;
                // Function call?
                if self.eat_sym(Sym::LParen) {
                    if self.eat_sym(Sym::Star) {
                        self.expect_sym(Sym::RParen)?;
                        if name.eq_ignore_ascii_case("count") {
                            return Ok(Expr::CountStar);
                        }
                        return Err(SqlError::Parse(format!(
                            "`*` is only valid inside COUNT(*), not {name}(*)"
                        )));
                    }
                    let distinct = self.eat_kw("DISTINCT");
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Some(Token::Sym(Sym::RParen))) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_sym(Sym::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect_sym(Sym::RParen)?;
                    return Ok(Expr::Function {
                        name,
                        args,
                        distinct,
                    });
                }
                // Qualified column?
                if self.eat_sym(Sym::Dot) {
                    let col = self.ident()?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(SqlError::Parse(format!(
                "expected expression, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or("end of input".into())
            ))),
        }
    }

    fn case_expr(&mut self) -> SqlResult<Expr> {
        let operand = if self.at_kw("WHEN") {
            None
        } else {
            Some(Box::new(self.expr()?))
        };
        let mut branches = Vec::new();
        while self.eat_kw("WHEN") {
            let when = self.expr()?;
            self.expect_kw("THEN")?;
            let then = self.expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(SqlError::Parse("CASE requires at least one WHEN".into()));
        }
        let else_branch = if self.eat_kw("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_kw("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_branch,
        })
    }
}

/// Keywords that terminate an implicit alias position.
fn is_clause_keyword(s: &str) -> bool {
    const KWS: &[&str] = &[
        "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET", "JOIN", "INNER", "LEFT",
        "RIGHT", "CROSS", "OUTER", "ON", "AND", "OR", "NOT", "AS", "UNION", "SET", "VALUES",
        "SELECT", "ASC", "DESC", "WHEN", "THEN", "ELSE", "END", "BETWEEN", "IN", "LIKE", "IS",
    ];
    KWS.iter().any(|k| s.eq_ignore_ascii_case(k))
}

/// Parse a standalone expression (used by tests and the UPDATE path).
pub fn parse_expr(sql: &str) -> SqlResult<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn simple_select() {
        let s = sel("SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY b DESC LIMIT 5 OFFSET 2");
        assert_eq!(s.items.len(), 2);
        assert!(matches!(
            &s.items[1],
            SelectItem::Expr { alias: Some(a), .. } if a == "bee"
        ));
        assert_eq!(s.limit, Some(5));
        assert_eq!(s.offset, Some(2));
        assert!(s.order_by[0].descending);
    }

    #[test]
    fn sqlite_limit_comma_form() {
        let s = sel("SELECT * FROM t LIMIT 3, 7");
        assert_eq!(s.offset, Some(3));
        assert_eq!(s.limit, Some(7));
    }

    #[test]
    fn joins() {
        let s = sel("SELECT p.name, c.text FROM posts p \
             INNER JOIN comments AS c ON p.Id = c.PostId \
             LEFT JOIN users u ON c.UserId = u.Id");
        assert_eq!(s.joins.len(), 2);
        assert_eq!(s.joins[0].kind, JoinKind::Inner);
        assert_eq!(s.joins[1].kind, JoinKind::Left);
        assert!(s.joins[1].on.is_some());
    }

    #[test]
    fn comma_join_is_cross() {
        let s = sel("SELECT * FROM a, b WHERE a.x = b.y");
        assert_eq!(s.joins.len(), 1);
        assert_eq!(s.joins[0].kind, JoinKind::Cross);
    }

    #[test]
    fn group_by_having() {
        let s = sel("SELECT city, COUNT(*) FROM schools GROUP BY city HAVING COUNT(*) > 3");
        assert_eq!(s.group_by.len(), 1);
        assert!(s.having.is_some());
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3 = 7 AND NOT x OR y").unwrap();
        // ((1 + (2*3)) = 7 AND (NOT x)) OR y
        match e {
            Expr::Binary {
                op: BinOp::Or, lhs, ..
            } => match *lhs {
                Expr::Binary {
                    op: BinOp::And,
                    lhs,
                    ..
                } => match *lhs {
                    Expr::Binary { op: BinOp::Eq, .. } => {}
                    other => panic!("expected Eq, got {other:?}"),
                },
                other => panic!("expected And, got {other:?}"),
            },
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn between_in_like() {
        assert!(matches!(
            parse_expr("x BETWEEN 1 AND 10").unwrap(),
            Expr::Between { negated: false, .. }
        ));
        assert!(matches!(
            parse_expr("x NOT IN (1, 2, 3)").unwrap(),
            Expr::InList { negated: true, .. }
        ));
        assert!(matches!(
            parse_expr("name LIKE 'T%'").unwrap(),
            Expr::Binary {
                op: BinOp::Like,
                ..
            }
        ));
        assert!(matches!(
            parse_expr("name NOT LIKE 'T%'").unwrap(),
            Expr::Binary {
                op: BinOp::NotLike,
                ..
            }
        ));
        assert!(matches!(
            parse_expr("x IS NOT NULL").unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn subqueries() {
        assert!(matches!(
            parse_expr("x IN (SELECT id FROM t)").unwrap(),
            Expr::InSubquery { .. }
        ));
        assert!(matches!(
            parse_expr("(SELECT MAX(x) FROM t)").unwrap(),
            Expr::ScalarSubquery(_)
        ));
        assert!(matches!(
            parse_expr("EXISTS (SELECT 1 FROM t)").unwrap(),
            Expr::Exists { .. }
        ));
        let s = sel("SELECT * FROM (SELECT a FROM t) AS sub WHERE a > 0");
        assert!(matches!(s.from, Some(TableRef::Subquery { .. })));
    }

    #[test]
    fn case_and_cast() {
        assert!(matches!(
            parse_expr("CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END").unwrap(),
            Expr::Case { operand: None, .. }
        ));
        assert!(matches!(
            parse_expr("CASE x WHEN 1 THEN 'a' END").unwrap(),
            Expr::Case {
                operand: Some(_),
                ..
            }
        ));
        assert!(matches!(
            parse_expr("CAST(x AS INTEGER)").unwrap(),
            Expr::Cast {
                dtype: DataType::Integer,
                ..
            }
        ));
    }

    #[test]
    fn create_table() {
        let stmt = parse_statement(
            "CREATE TABLE IF NOT EXISTS schools (\
             CDSCode TEXT NOT NULL PRIMARY KEY, City TEXT NULL, Longitude REAL)",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable(c) => {
                assert!(c.if_not_exists);
                assert_eq!(c.columns.len(), 3);
                assert!(c.columns[0].primary_key);
                assert!(c.columns[0].not_null);
                assert_eq!(c.columns[2].dtype, DataType::Real);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").unwrap();
        match stmt {
            Statement::Insert(i) => {
                assert_eq!(i.columns.as_ref().unwrap().len(), 2);
                assert_eq!(i.rows.len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_delete_drop() {
        assert!(matches!(
            parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = 3").unwrap(),
            Statement::Update { .. }
        ));
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a < 0").unwrap(),
            Statement::Delete { .. }
        ));
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable {
                if_exists: true,
                ..
            }
        ));
        assert!(matches!(
            parse_statement("CREATE UNIQUE INDEX idx ON t (a)").unwrap(),
            Statement::CreateIndex { unique: true, .. }
        ));
    }

    #[test]
    fn count_star_and_functions() {
        assert!(matches!(parse_expr("COUNT(*)").unwrap(), Expr::CountStar));
        assert!(matches!(
            parse_expr("COUNT(DISTINCT city)").unwrap(),
            Expr::Function { distinct: true, .. }
        ));
        assert!(matches!(
            parse_expr("coalesce(a, b, 0)").unwrap(),
            Expr::Function { ref name, ref args, .. } if name == "coalesce" && args.len() == 3
        ));
        assert!(parse_expr("SUM(*)").is_err());
    }

    #[test]
    fn quoted_identifier_column() {
        let e = parse_expr("\"Academic Year\"").unwrap();
        assert_eq!(e, Expr::col("Academic Year"));
        // Quoted identifiers are never treated as keywords.
        let e = parse_expr("\"SELECT\"").unwrap();
        assert_eq!(e, Expr::col("SELECT"));
    }

    #[test]
    fn union_parses_at_statement_level() {
        match parse_statement("SELECT a FROM t UNION ALL SELECT a FROM u UNION SELECT a FROM v")
            .unwrap()
        {
            Statement::CompoundSelect { rest, .. } => {
                assert_eq!(rest.len(), 2);
                assert!(rest[0].0, "first arm is UNION ALL");
                assert!(!rest[1].0, "second arm is plain UNION");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn multi_statement_parsing() {
        let stmts = parse_statements("SELECT 1; SELECT 2;;").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn errors_are_informative() {
        let err = parse_statement("SELECT FROM t").unwrap_err();
        assert_eq!(err.category(), "parse");
        let err = parse_statement("SELECT 1 WHERE").unwrap_err();
        assert_eq!(err.category(), "parse");
        let err = parse_statement("FOO BAR").unwrap_err();
        assert!(err.message().contains("expected a statement"));
    }

    #[test]
    fn table_less_select() {
        let s = sel("SELECT 1 + 2, 'x'");
        assert!(s.from.is_none());
        assert_eq!(s.items.len(), 2);
    }
}
