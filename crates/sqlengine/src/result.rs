//! Query result sets.

use crate::schema::Row;
use crate::value::Value;
use std::fmt;

/// The materialized output of a query: column names plus rows.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Output column names, in order.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Build a result set.
    pub fn new(columns: Vec<String>, rows: Vec<Row>) -> Self {
        ResultSet { columns, rows }
    }

    /// An empty result with no columns (used by DDL/DML statements).
    pub fn empty() -> Self {
        ResultSet::default()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(name))
    }

    /// Cell accessor.
    pub fn cell(&self, row: usize, col: usize) -> Option<&Value> {
        self.rows.get(row).and_then(|r| r.get(col))
    }

    /// Cell accessor by column name.
    pub fn cell_by_name(&self, row: usize, name: &str) -> Option<&Value> {
        self.column_index(name).and_then(|c| self.cell(row, c))
    }

    /// The single scalar value of a 1×1 result, if it is one.
    pub fn scalar(&self) -> Option<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Some(&self.rows[0][0])
        } else {
            None
        }
    }

    /// The values of one column.
    pub fn column_values(&self, name: &str) -> Option<Vec<Value>> {
        let idx = self.column_index(name)?;
        Some(self.rows.iter().map(|r| r[idx].clone()).collect())
    }

    /// Render as an ASCII table (for examples and debugging).
    pub fn to_ascii_table(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!(" {c:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        out
    }
}

impl fmt::Display for ResultSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_ascii_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs() -> ResultSet {
        ResultSet::new(
            vec!["id".into(), "name".into()],
            vec![
                vec![Value::Int(1), Value::text("alpha")],
                vec![Value::Int(2), Value::text("beta")],
            ],
        )
    }

    #[test]
    fn accessors() {
        let r = rs();
        assert_eq!(r.len(), 2);
        assert_eq!(r.column_index("NAME"), Some(1));
        assert_eq!(r.cell(0, 1), Some(&Value::text("alpha")));
        assert_eq!(r.cell_by_name(1, "id"), Some(&Value::Int(2)));
        assert_eq!(r.cell(5, 0), None);
        assert!(r.scalar().is_none());
    }

    #[test]
    fn scalar_of_1x1() {
        let r = ResultSet::new(vec!["n".into()], vec![vec![Value::Int(42)]]);
        assert_eq!(r.scalar(), Some(&Value::Int(42)));
    }

    #[test]
    fn column_values() {
        let r = rs();
        assert_eq!(
            r.column_values("name").unwrap(),
            vec![Value::text("alpha"), Value::text("beta")]
        );
        assert!(r.column_values("missing").is_none());
    }

    #[test]
    fn ascii_table_alignment() {
        let t = rs().to_ascii_table();
        assert!(t.contains("| id | name  |"));
        assert!(t.contains("| 1  | alpha |"));
    }
}
