//! The top-level database engine: statement dispatch over a catalog.

use crate::ast::{ColumnDef, InsertStmt, Statement};
use crate::catalog::Catalog;
use crate::chunk_exec::{execute_chunked, execute_chunked_profiled};
use crate::error::{SqlError, SqlResult};
use crate::exec::{execute, execute_profiled};
use crate::metrics::ExecMetrics;
use crate::morsel::{ExecPolicy, DEFAULT_MORSEL_ROWS};
use crate::optimizer::optimize;
use crate::parser::{parse_statement, parse_statements};
use crate::plan::Plan;
use crate::plancache::{normalize_sql, CachedArm, CachedPlan, PlanCache, PlanCacheStats};
use crate::planner::{Planner, Scope};
use crate::profile::PlanProfiler;
use crate::result::ResultSet;
use crate::scatter::ScatterExec;
use crate::schema::Row;
use crate::schema::{Column, Schema};
use crate::semplan::SemNode;
use crate::table::{IndexKind, Table};
use crate::udf::{ScalarUdf, UdfRegistry};
use crate::value::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Renders `EXPLAIN SEMPLAN <question>` output. Registered by the
/// semantic runtime: the SQL engine cannot compile NL questions itself.
pub type SemPlanExplainFn = dyn Fn(&str) -> Result<String, String> + Send + Sync;

/// Renders `EXPLAIN VERIFY <question>` output. Registered by the
/// semantic runtime; receives the database so the verifier sees the
/// live catalog (schema and row counts) without a stale copy.
pub type SemPlanVerifyFn = dyn Fn(&Database, &str) -> Result<String, String> + Send + Sync;

/// Interior-mutable slot for a registered engine hook. Poison-robust:
/// the stored `Arc` can't be left half-written, so a panicked thread
/// must not take the serving path's EXPLAIN surface down with it.
struct HookSlot<F: ?Sized>(Mutex<Option<Arc<F>>>);

impl<F: ?Sized> HookSlot<F> {
    fn get(&self) -> Option<Arc<F>> {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn set(&self, f: Arc<F>) {
        *self.0.lock().unwrap_or_else(|e| e.into_inner()) = Some(f);
    }
}

impl<F: ?Sized> Default for HookSlot<F> {
    fn default() -> Self {
        HookSlot(Mutex::new(None))
    }
}

impl<F: ?Sized> Clone for HookSlot<F> {
    fn clone(&self) -> Self {
        HookSlot(Mutex::new(self.get()))
    }
}

impl<F: ?Sized> std::fmt::Debug for HookSlot<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("HookSlot")
            .field(&self.get().map(|_| "<fn>"))
            .finish()
    }
}

/// An in-memory SQL database: catalog + UDF registry + query pipeline.
///
/// ```
/// use tag_sql::Database;
///
/// let mut db = Database::new();
/// db.execute("CREATE TABLE movies (title TEXT, revenue REAL)").unwrap();
/// db.execute("INSERT INTO movies VALUES ('Titanic', 2257.8), ('Clueless', 56.6)").unwrap();
/// let result = db.execute("SELECT title FROM movies ORDER BY revenue DESC LIMIT 1").unwrap();
/// assert_eq!(result.rows[0][0].to_string(), "Titanic");
/// ```
#[derive(Debug, Default)]
pub struct Database {
    catalog: Catalog,
    udfs: UdfRegistry,
    /// Atomic so read-only `query()` can count under a shared borrow
    /// (the serving runtime runs SELECTs from many threads at once).
    statements_run: AtomicU64,
    /// Bumped on every statement that can change what a plan would
    /// produce: DDL, DML (the planner eagerly executes uncorrelated
    /// subqueries, so plans embed data-dependent literals), and direct
    /// catalog/UDF mutation. Part of the plan-cache key.
    schema_epoch: AtomicU64,
    /// Bound + optimized plans keyed on `(schema_epoch, normalized SQL)`.
    /// Semantic plans share the cache under `semplan:`-prefixed keys.
    plan_cache: PlanCache,
    /// Registered `EXPLAIN SEMPLAN` renderer.
    semplan_explainer: HookSlot<SemPlanExplainFn>,
    /// Registered `EXPLAIN VERIFY` renderer (the static verifier).
    semplan_verifier: HookSlot<SemPlanVerifyFn>,
    /// Per-operator metrics sink, installed once by the serving
    /// runtime; profiled queries feed it, plain queries never touch it.
    exec_metrics: std::sync::OnceLock<Arc<ExecMetrics>>,
    /// Execution policy, stored as atomics so read-only `query()` can
    /// consult (and embedders can flip) it under a shared borrow.
    /// Defaults decode as the serial row-at-a-time path (see
    /// [`Database::exec_policy`]).
    exec_chunked: AtomicBool,
    exec_workers: AtomicUsize,
    exec_morsel_rows: AtomicUsize,
    /// Registered scatter-gather executor (see [`crate::scatter`]).
    /// Consulted before every local plan execution; plans it claims run
    /// across shards instead, byte-identical by contract.
    scatter: HookSlot<dyn ScatterExec>,
}

impl Clone for Database {
    fn clone(&self) -> Self {
        Database {
            catalog: self.catalog.clone(),
            udfs: self.udfs.clone(),
            statements_run: AtomicU64::new(self.statements_run.load(Ordering::Relaxed)),
            schema_epoch: AtomicU64::new(self.schema_epoch.load(Ordering::Acquire)),
            // Plans are cheap to rebuild; a clone starts with an empty
            // cache rather than sharing or copying entries.
            plan_cache: PlanCache::new(self.plan_cache.capacity()),
            semplan_explainer: self.semplan_explainer.clone(),
            semplan_verifier: self.semplan_verifier.clone(),
            // Clones share the sink: instruments are per-operator-kind
            // aggregates, not per-handle state.
            exec_metrics: self.exec_metrics.clone(),
            exec_chunked: AtomicBool::new(self.exec_chunked.load(Ordering::Relaxed)),
            exec_workers: AtomicUsize::new(self.exec_workers.load(Ordering::Relaxed)),
            exec_morsel_rows: AtomicUsize::new(self.exec_morsel_rows.load(Ordering::Relaxed)),
            scatter: self.scatter.clone(),
        }
    }
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying catalog (read access).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable catalog access for programmatic table construction.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        self.invalidate_plans();
        &mut self.catalog
    }

    /// Register a scalar UDF (e.g. an LM-backed function).
    pub fn register_udf(&mut self, udf: Arc<dyn ScalarUdf>) {
        self.invalidate_plans();
        self.udfs.register(udf);
    }

    /// The UDF registry.
    pub fn udfs(&self) -> &UdfRegistry {
        &self.udfs
    }

    /// Number of statements executed so far.
    pub fn statements_run(&self) -> u64 {
        self.statements_run.load(Ordering::Relaxed)
    }

    /// Current schema epoch. Two loads returning the same value bracket
    /// a window with no DDL/DML/catalog mutation.
    pub fn schema_epoch(&self) -> u64 {
        self.schema_epoch.load(Ordering::Acquire)
    }

    /// Plan-cache counter snapshot.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Install a metrics hub: profiled queries
    /// ([`Database::query_profiled`]) then feed per-operator counters
    /// and windowed latency histograms (see [`crate::metrics`]). First
    /// install wins. Takes `&self` like the other engine hooks so a
    /// shared handle can be instrumented after construction.
    pub fn install_metrics_hub(&self, hub: Arc<tag_metrics::MetricsHub>) {
        let _ = self.exec_metrics.set(Arc::new(ExecMetrics::new(hub)));
    }

    /// Set how relational plans execute: the serial row-at-a-time path
    /// (the default and reference semantics) or the columnar chunked
    /// executor with morsel-driven parallelism. Takes `&self` so a
    /// shared handle can flip paths (e.g. for an A/B sweep); results
    /// are byte-identical either way — see [`crate::chunk_exec`].
    pub fn set_exec_policy(&self, policy: ExecPolicy) {
        self.exec_chunked.store(policy.chunked, Ordering::Relaxed);
        self.exec_workers
            .store(policy.workers.max(1), Ordering::Relaxed);
        self.exec_morsel_rows
            .store(policy.morsel_rows.max(1), Ordering::Relaxed);
    }

    /// The current execution policy (zero-valued atomics decode as the
    /// defaults: serial, 1 worker, [`DEFAULT_MORSEL_ROWS`]).
    pub fn exec_policy(&self) -> ExecPolicy {
        let workers = self.exec_workers.load(Ordering::Relaxed);
        let morsel_rows = self.exec_morsel_rows.load(Ordering::Relaxed);
        ExecPolicy {
            chunked: self.exec_chunked.load(Ordering::Relaxed),
            workers: workers.max(1),
            morsel_rows: if morsel_rows == 0 {
                DEFAULT_MORSEL_ROWS
            } else {
                morsel_rows
            },
        }
    }

    /// Run one optimized plan: offer it to the registered scatter
    /// executor first, then fall back to the local executor.
    fn run_plan(&self, plan: &Plan) -> SqlResult<Vec<Row>> {
        if let Some(scatter) = self.scatter.get() {
            if scatter.handles(plan) {
                return scatter.execute(plan, self);
            }
        }
        self.execute_plan_local(plan)
    }

    /// Run one optimized plan through the configured local executor,
    /// bypassing any registered scatter hook. Scatter executors call
    /// this on the coordinator database to run rewritten
    /// (partition-free) plans, and on shard databases to run scattered
    /// subplans.
    pub fn execute_plan_local(&self, plan: &Plan) -> SqlResult<Vec<Row>> {
        let policy = self.exec_policy();
        if policy.chunked {
            execute_chunked(
                plan,
                &self.catalog,
                policy,
                self.exec_metrics.get().map(Arc::as_ref),
            )
        } else {
            execute(plan, &self.catalog)
        }
    }

    /// Register a scatter-gather executor. Every subsequent plan
    /// execution — `query`, `query_statement`, and the profiled serving
    /// path — first offers the plan to the executor; plans it claims run
    /// across shards. Results must be byte-identical to local execution
    /// (see [`crate::scatter::ScatterExec`]).
    pub fn set_scatter_exec(&self, exec: Arc<dyn ScatterExec>) {
        self.scatter.set(exec);
    }

    /// Resize the plan cache (0 disables it). Takes `&self` so a shared
    /// handle (e.g. the serving runtime's `Arc<TagEnv>`) can switch
    /// caching off for A/B benchmarking.
    pub fn set_plan_cache_capacity(&self, capacity: usize) {
        self.plan_cache.set_capacity(capacity);
    }

    /// Bump the schema epoch and drop every cached plan. Called before
    /// any mutation; also callable directly by embedders that reach
    /// around the SQL surface.
    pub fn invalidate_plans(&mut self) {
        self.schema_epoch.fetch_add(1, Ordering::Release);
        self.plan_cache.invalidate();
    }

    /// Parse, plan, optimize, and run one SQL statement. `EXPLAIN`
    /// statements (see [`Database::query`]) are answered without
    /// executing anything.
    pub fn execute(&mut self, sql: &str) -> SqlResult<ResultSet> {
        if let Some(result) = self.try_explain(sql) {
            self.statements_run.fetch_add(1, Ordering::Relaxed);
            return result;
        }
        let stmt = parse_statement(sql)?;
        self.execute_statement(stmt)
    }

    /// Run a read-only statement (`SELECT` / compound `SELECT`) under a
    /// shared borrow — the concurrent-serving entry point. DDL and DML
    /// are rejected with [`SqlError::Unsupported`].
    ///
    /// Repeated statements hit the plan cache (keyed on schema epoch +
    /// [`normalize_sql`]) and skip parse/bind/optimize entirely; the
    /// cached [`Plan`](crate::Plan) runs through the same executor, so
    /// results are byte-identical to an uncached run.
    /// `EXPLAIN <select>` and `EXPLAIN SEMPLAN <question>` statements
    /// are also accepted here: both are read-only and return the plan
    /// text as a one-column `plan` result (one row per line, plus a
    /// trailing `plan_cache: hit|miss` row for `EXPLAIN <select>`).
    pub fn query(&self, sql: &str) -> SqlResult<ResultSet> {
        if let Some(result) = self.try_explain(sql) {
            self.statements_run.fetch_add(1, Ordering::Relaxed);
            return result;
        }
        let (cached, _hit) = self.plan_for(sql)?;
        self.statements_run.fetch_add(1, Ordering::Relaxed);
        self.execute_cached(&cached)
    }

    /// Execute an already-parsed read-only statement under `&self`.
    /// Bypasses the plan cache (there is no SQL text to key on).
    pub fn query_statement(&self, stmt: Statement) -> SqlResult<ResultSet> {
        match stmt {
            Statement::Select(_) | Statement::CompoundSelect { .. } => {}
            _ => {
                return Err(SqlError::Unsupported(
                    "query() is read-only; use execute() for DDL/DML".into(),
                ))
            }
        }
        self.statements_run.fetch_add(1, Ordering::Relaxed);
        let cached = self.plan_statement(&stmt)?;
        self.execute_cached(&cached)
    }

    /// Like [`Database::query`], but also returns an `EXPLAIN ANALYZE`-
    /// style annotated plan: one line per operator with input/output
    /// cardinality and elapsed wall-clock time, plus a trailing
    /// `plan_cache: hit|miss` line. The rows are produced by the same
    /// executor code path as `query`, so the [`ResultSet`] is always
    /// identical to an unprofiled run.
    pub fn query_profiled(&self, sql: &str) -> SqlResult<(ResultSet, String)> {
        let (cached, hit) = self.plan_for(sql)?;
        self.statements_run.fetch_add(1, Ordering::Relaxed);
        let mut acc: Option<ResultSet> = None;
        let mut text = String::new();
        let policy = self.exec_policy();
        let scatter = self.scatter.get();
        for arm in &cached.arms {
            let profiler = PlanProfiler::new();
            let scattered = scatter.as_ref().filter(|s| s.handles(&arm.plan));
            let rows = if let Some(scatter) = scattered {
                // Scatter-gather executes across shard databases the
                // profiler cannot see into; record the whole arm as one
                // coordinator-side node.
                let token = profiler.enter("ScatterGather".to_string());
                let rows = scatter.execute(&arm.plan, self)?;
                profiler.exit(token, rows.len());
                rows
            } else if policy.chunked {
                execute_chunked_profiled(
                    &arm.plan,
                    &self.catalog,
                    policy,
                    self.exec_metrics.get().map(Arc::as_ref),
                    &profiler,
                )?
            } else {
                execute_profiled(&arm.plan, &self.catalog, &profiler)?
            };
            if let Some(sink) = self.exec_metrics.get() {
                sink.record(&profiler.nodes());
            }
            match &mut acc {
                None => acc = Some(ResultSet::new(arm.columns.clone(), rows)),
                Some(acc) => {
                    text.push_str(if arm.union_all {
                        "UNION ALL\n"
                    } else {
                        "UNION\n"
                    });
                    acc.rows.extend(rows);
                    if !arm.union_all {
                        let mut seen = std::collections::HashSet::new();
                        acc.rows.retain(|r| seen.insert(r.clone()));
                    }
                }
            }
            text.push_str(&profiler.render());
        }
        text.push_str(if hit {
            "plan_cache: hit"
        } else {
            "plan_cache: miss"
        });
        match acc {
            Some(rs) => Ok((rs, text)),
            // The planner never caches an empty arm list; refuse rather
            // than panic if that invariant ever breaks.
            None => Err(SqlError::Unsupported("cached plan has no arms".into())),
        }
    }

    /// Fetch the cached plan for `sql`, or parse + bind + optimize and
    /// cache it. The bool is true on a cache hit.
    fn plan_for(&self, sql: &str) -> SqlResult<(Arc<CachedPlan>, bool)> {
        let epoch = self.schema_epoch.load(Ordering::Acquire);
        let key = normalize_sql(sql);
        if let Some(cached) = self.plan_cache.get(epoch, &key) {
            return Ok((cached, true));
        }
        let stmt = parse_statement(sql)?;
        match stmt {
            Statement::Select(_) | Statement::CompoundSelect { .. } => {}
            _ => {
                return Err(SqlError::Unsupported(
                    "query() is read-only; use execute() for DDL/DML".into(),
                ))
            }
        }
        let cached = Arc::new(self.plan_statement(&stmt)?);
        self.plan_cache.insert(epoch, key, Arc::clone(&cached));
        Ok((cached, false))
    }

    /// Bind + optimize every arm of a SELECT / compound SELECT. Arm
    /// widths are validated here so a cached compound plan can never
    /// reach execution with mismatched arms.
    fn plan_statement(&self, stmt: &Statement) -> SqlResult<CachedPlan> {
        let plan_arm = |sel: &crate::ast::SelectStmt| -> SqlResult<CachedArm> {
            let planner = Planner::new(&self.catalog, &self.udfs);
            let plan = planner.plan_select(sel)?;
            let plan = optimize(plan, &self.catalog);
            let columns = plan.columns();
            Ok(CachedArm {
                union_all: false,
                plan,
                columns,
            })
        };
        match stmt {
            Statement::Select(sel) => Ok(CachedPlan {
                arms: vec![plan_arm(sel)?],
            }),
            Statement::CompoundSelect { first, rest } => {
                let mut arms = vec![plan_arm(first)?];
                for (all, sel) in rest {
                    let mut arm = plan_arm(sel)?;
                    if arm.columns.len() != arms[0].columns.len() {
                        return Err(SqlError::Binding(format!(
                            "UNION arms have different widths ({} vs {})",
                            arms[0].columns.len(),
                            arm.columns.len()
                        )));
                    }
                    arm.union_all = *all;
                    arms.push(arm);
                }
                Ok(CachedPlan { arms })
            }
            _ => Err(SqlError::Unsupported(
                "query() is read-only; use execute() for DDL/DML".into(),
            )),
        }
    }

    /// Run every arm of a cached plan and combine with UNION semantics
    /// (plain UNION dedups the accumulated result, SQLite-style).
    fn execute_cached(&self, cached: &CachedPlan) -> SqlResult<ResultSet> {
        let mut acc: Option<ResultSet> = None;
        for arm in &cached.arms {
            let rows = self.run_plan(&arm.plan)?;
            match &mut acc {
                None => acc = Some(ResultSet::new(arm.columns.clone(), rows)),
                Some(acc) => {
                    acc.rows.extend(rows);
                    if !arm.union_all {
                        let mut seen = std::collections::HashSet::new();
                        acc.rows.retain(|r| seen.insert(r.clone()));
                    }
                }
            }
        }
        acc.ok_or_else(|| SqlError::Unsupported("cached plan has no arms".into()))
    }

    /// Run several semicolon-separated statements; returns the last result.
    pub fn execute_script(&mut self, sql: &str) -> SqlResult<ResultSet> {
        let stmts = parse_statements(sql)?;
        let mut last = ResultSet::empty();
        for stmt in stmts {
            last = self.execute_statement(stmt)?;
        }
        Ok(last)
    }

    /// Plan a SELECT and return its optimized plan (EXPLAIN support).
    pub fn explain(&self, sql: &str) -> SqlResult<String> {
        let stmt = parse_statement(sql)?;
        match stmt {
            Statement::Select(sel) => {
                let planner = Planner::new(&self.catalog, &self.udfs);
                let plan = planner.plan_select(&sel)?;
                let plan = optimize(plan, &self.catalog);
                Ok(plan.explain())
            }
            _ => Err(SqlError::Unsupported(
                "EXPLAIN is only available for SELECT".into(),
            )),
        }
    }

    /// Register the `EXPLAIN SEMPLAN` renderer. The callback receives
    /// the question text and returns the rendered semantic plan (or a
    /// human-readable error, e.g. for an unparseable question).
    pub fn set_semplan_explainer(&self, f: Arc<SemPlanExplainFn>) {
        self.semplan_explainer.set(f);
    }

    /// Register the `EXPLAIN VERIFY` renderer. The callback receives
    /// this database (live catalog for schema checks) and the question
    /// text, and returns the rendered verification report.
    pub fn set_semplan_verifier(&self, f: Arc<SemPlanVerifyFn>) {
        self.semplan_verifier.set(f);
    }

    /// Fetch the cached semantic plan for `key` (a canonicalized NL
    /// query plus optimizer tag), or build it via `build` and cache it.
    /// Shares the relational plan cache — same LRU budget, same
    /// epoch-based invalidation on DDL/DML — under a `semplan:` key
    /// prefix so SQL text can never collide with a semantic key. The
    /// bool is true on a cache hit.
    pub fn semplan_for(
        &self,
        key: &str,
        build: impl FnOnce() -> SemNode,
    ) -> (Arc<CachedPlan>, bool) {
        let epoch = self.schema_epoch.load(Ordering::Acquire);
        let key = format!("semplan:{key}");
        if let Some(cached) = self.plan_cache.get(epoch, &key) {
            return (cached, true);
        }
        let cached = Arc::new(CachedPlan {
            arms: vec![CachedArm {
                union_all: false,
                plan: Plan::Sem { root: build() },
                columns: Vec::new(),
            }],
        });
        self.plan_cache.insert(epoch, key, Arc::clone(&cached));
        (cached, false)
    }

    /// Recognize and answer an `EXPLAIN` statement; `None` when `sql`
    /// is not one. `EXPLAIN <select>` plans through the cache (so it
    /// reports and affects hit/miss state exactly like a query);
    /// `EXPLAIN SEMPLAN <question>` routes to the registered explainer.
    fn try_explain(&self, sql: &str) -> Option<SqlResult<ResultSet>> {
        let rest = strip_keyword(sql.trim(), "EXPLAIN")?.trim_start();
        if let Some(question) = strip_keyword(rest, "SEMPLAN") {
            return Some(self.explain_semplan(question.trim()));
        }
        if let Some(question) = strip_keyword(rest, "VERIFY") {
            return Some(self.explain_verify(question.trim()));
        }
        Some(self.explain_select_cached(rest.trim()))
    }

    fn explain_select_cached(&self, sql: &str) -> SqlResult<ResultSet> {
        let (cached, hit) = self.plan_for(sql)?;
        let mut text = String::new();
        for (i, arm) in cached.arms.iter().enumerate() {
            if i > 0 {
                text.push_str(if arm.union_all {
                    "UNION ALL\n"
                } else {
                    "UNION\n"
                });
            }
            text.push_str(&arm.plan.explain());
        }
        text.push_str(if hit {
            "plan_cache: hit"
        } else {
            "plan_cache: miss"
        });
        Ok(plan_text_result(&text))
    }

    fn explain_semplan(&self, question: &str) -> SqlResult<ResultSet> {
        if question.is_empty() {
            return Err(SqlError::Unsupported(
                "EXPLAIN SEMPLAN needs a question".into(),
            ));
        }
        let explainer = self.semplan_explainer.get().ok_or_else(|| {
            SqlError::Unsupported(
                "EXPLAIN SEMPLAN requires a semantic runtime (no explainer registered)".into(),
            )
        })?;
        match explainer(question) {
            Ok(text) => Ok(plan_text_result(text.trim_end())),
            Err(e) => Err(SqlError::Binding(e)),
        }
    }

    fn explain_verify(&self, question: &str) -> SqlResult<ResultSet> {
        if question.is_empty() {
            return Err(SqlError::Unsupported(
                "EXPLAIN VERIFY needs a question".into(),
            ));
        }
        let verifier = self.semplan_verifier.get().ok_or_else(|| {
            SqlError::Unsupported(
                "EXPLAIN VERIFY requires a semantic runtime (no verifier registered)".into(),
            )
        })?;
        match verifier(self, question) {
            Ok(text) => Ok(plan_text_result(text.trim_end())),
            Err(e) => Err(SqlError::Binding(e)),
        }
    }

    /// Execute an already-parsed statement.
    pub fn execute_statement(&mut self, stmt: Statement) -> SqlResult<ResultSet> {
        if matches!(
            stmt,
            Statement::Select(_) | Statement::CompoundSelect { .. }
        ) {
            return self.query_statement(stmt);
        }
        // Every non-SELECT can change what a plan would produce (DML
        // included: the planner inlines uncorrelated subquery results),
        // and a failed statement may still have partial effects — so
        // invalidate before executing.
        self.invalidate_plans();
        self.statements_run.fetch_add(1, Ordering::Relaxed);
        match stmt {
            Statement::Select(_) | Statement::CompoundSelect { .. } => {
                unreachable!("SELECT handled by query_statement above")
            }
            Statement::CreateTable(c) => {
                if self.catalog.contains(&c.name) {
                    if c.if_not_exists {
                        return Ok(ResultSet::empty());
                    }
                    return Err(SqlError::Catalog(format!(
                        "table {} already exists",
                        c.name
                    )));
                }
                let schema = Schema::new(
                    c.columns
                        .iter()
                        .map(
                            |ColumnDef {
                                 name,
                                 dtype,
                                 not_null,
                                 primary_key,
                             }| {
                                let mut col = Column::new(name.clone(), *dtype);
                                if *not_null {
                                    col = col.not_null();
                                }
                                if *primary_key {
                                    col = col.primary_key();
                                }
                                col
                            },
                        )
                        .collect(),
                )?;
                let mut table = Table::new(c.name.clone(), schema);
                // A single-column PRIMARY KEY gets a unique B-tree index.
                if let Some(pk) = c.columns.iter().find(|col| col.primary_key) {
                    table.create_index(
                        format!("pk_{}", c.name),
                        &pk.name,
                        IndexKind::BTree,
                        true,
                    )?;
                }
                self.catalog.add_table(table)?;
                Ok(ResultSet::empty())
            }
            Statement::Insert(ins) => self.run_insert(ins),
            Statement::DropTable { name, if_exists } => {
                if self.catalog.remove_table(&name).is_none() && !if_exists {
                    return Err(SqlError::Catalog(format!("no such table: {name}")));
                }
                Ok(ResultSet::empty())
            }
            Statement::Delete { table, predicate } => {
                let planner = Planner::new(&self.catalog, &self.udfs);
                let bound = match &predicate {
                    Some(p) => {
                        let t = self.catalog.table(&table)?;
                        let scope = scope_for_table(&table, t);
                        Some(planner.bind(p, &scope, None)?)
                    }
                    None => None,
                };
                let t = self.catalog.table_mut(&table)?;
                let removed = t.delete_where(|row| match &bound {
                    Some(b) => b.eval_predicate(row),
                    None => Ok(true),
                })?;
                Ok(ResultSet::new(
                    vec!["deleted".into()],
                    vec![vec![Value::Int(removed as i64)]],
                ))
            }
            Statement::Update {
                table,
                assignments,
                predicate,
            } => {
                let planner = Planner::new(&self.catalog, &self.udfs);
                let t = self.catalog.table(&table)?;
                let scope = scope_for_table(&table, t);
                let bound_pred = match &predicate {
                    Some(p) => Some(planner.bind(p, &scope, None)?),
                    None => None,
                };
                let mut bound_assignments = Vec::with_capacity(assignments.len());
                for (col, e) in &assignments {
                    let idx = t
                        .schema()
                        .index_of(col)
                        .ok_or_else(|| SqlError::Binding(format!("no such column: {col}")))?;
                    bound_assignments.push((idx, planner.bind(e, &scope, None)?));
                }
                let t = self.catalog.table_mut(&table)?;
                let changed = t.update_where(
                    |row| match &bound_pred {
                        Some(b) => b.eval_predicate(row),
                        None => Ok(true),
                    },
                    |row| {
                        let mut new_row = row.clone();
                        for (idx, e) in &bound_assignments {
                            new_row[*idx] = e.eval(row)?;
                        }
                        Ok(new_row)
                    },
                )?;
                Ok(ResultSet::new(
                    vec!["updated".into()],
                    vec![vec![Value::Int(changed as i64)]],
                ))
            }
            Statement::CreateIndex {
                name,
                table,
                column,
                unique,
            } => {
                let t = self.catalog.table_mut(&table)?;
                t.create_index(name, &column, IndexKind::BTree, unique)?;
                Ok(ResultSet::empty())
            }
        }
    }

    fn run_insert(&mut self, ins: InsertStmt) -> SqlResult<ResultSet> {
        // Evaluate row expressions first (they may contain subqueries or
        // arithmetic but no column references).
        let planner = Planner::new(&self.catalog, &self.udfs);
        let empty_scope = Scope::default();
        let mut evaluated: Vec<Vec<Value>> = Vec::with_capacity(ins.rows.len());
        for row in &ins.rows {
            let vals = row
                .iter()
                .map(|e| planner.bind(e, &empty_scope, None)?.eval(&[]))
                .collect::<SqlResult<Vec<Value>>>()?;
            evaluated.push(vals);
        }

        let t = self.catalog.table_mut(&ins.table)?;
        let schema_len = t.schema().len();
        let mapping: Option<Vec<usize>> = match &ins.columns {
            Some(cols) => {
                let mut m = Vec::with_capacity(cols.len());
                for c in cols {
                    m.push(t.schema().index_of(c).ok_or_else(|| {
                        SqlError::Binding(format!("no such column {c:?} in table {}", ins.table))
                    })?);
                }
                Some(m)
            }
            None => None,
        };
        let mut inserted = 0i64;
        for vals in evaluated {
            let row = match &mapping {
                Some(m) => {
                    if vals.len() != m.len() {
                        return Err(SqlError::Catalog(format!(
                            "INSERT has {} values for {} columns",
                            vals.len(),
                            m.len()
                        )));
                    }
                    let mut row = vec![Value::Null; schema_len];
                    for (v, &idx) in vals.into_iter().zip(m.iter()) {
                        row[idx] = v;
                    }
                    row
                }
                None => vals,
            };
            t.insert(row)?;
            inserted += 1;
        }
        Ok(ResultSet::new(
            vec!["inserted".into()],
            vec![vec![Value::Int(inserted)]],
        ))
    }

    /// Convenience: run a SELECT and pull a single scalar.
    pub fn query_scalar(&mut self, sql: &str) -> SqlResult<Value> {
        let rs = self.execute(sql)?;
        rs.scalar().cloned().ok_or_else(|| {
            SqlError::Eval(format!(
                "expected a 1x1 result, got {}x{}",
                rs.len(),
                rs.columns.len()
            ))
        })
    }
}

/// Case-insensitive keyword prefix match: returns the text after the
/// keyword when `text` starts with it as a whole word.
fn strip_keyword<'a>(text: &'a str, keyword: &str) -> Option<&'a str> {
    if text.len() < keyword.len() || !text[..keyword.len()].eq_ignore_ascii_case(keyword) {
        return None;
    }
    let rest = &text[keyword.len()..];
    match rest.chars().next() {
        None => Some(rest),
        Some(c) if c.is_whitespace() => Some(rest),
        Some(_) => None,
    }
}

/// Plan text as a one-column `plan` result set, one row per line.
fn plan_text_result(text: &str) -> ResultSet {
    ResultSet::new(
        vec!["plan".into()],
        text.lines()
            .map(|l| vec![Value::Text(l.to_owned())])
            .collect(),
    )
}

fn scope_for_table(name: &str, table: &Table) -> Scope {
    let mut scope = Scope::default();
    for c in table.schema().columns() {
        scope.columns.push(crate::planner::ScopeColumn {
            qualifier: Some(name.to_owned()),
            name: c.name.clone(),
        });
    }
    scope
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> Database {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE schools (CDSCode INTEGER PRIMARY KEY, City TEXT, Longitude REAL);
             INSERT INTO schools VALUES (1, 'Palo Alto', -122.1), (2, 'Fresno', -119.8),
                                        (3, 'San Jose', -121.9), (4, 'Palo Alto', -122.2);",
        )
        .unwrap();
        db
    }

    #[test]
    fn explain_statement_renders_plan_and_cache_state() {
        let db = db();
        let rs = db
            .query("EXPLAIN SELECT * FROM schools WHERE CDSCode = 2")
            .unwrap();
        assert_eq!(rs.columns, vec!["plan"]);
        let lines: Vec<String> = rs.rows.iter().map(|r| r[0].to_string()).collect();
        assert!(lines.iter().any(|l| l.contains("IndexProbe")), "{lines:?}");
        assert_eq!(lines.last().unwrap(), "plan_cache: miss");
        // EXPLAIN planned through the cache, so re-explaining (and the
        // query itself) now hit.
        let rs = db
            .query("explain SELECT * FROM schools WHERE CDSCode = 2")
            .unwrap();
        assert_eq!(rs.rows.last().unwrap()[0].to_string(), "plan_cache: hit");
        // The keyword must be a whole word: a table named EXPLAINER etc.
        // still parses as SQL.
        assert!(db.query("EXPLAINSELECT 1").is_err());
    }

    #[test]
    fn explain_semplan_requires_registered_explainer() {
        let db = db();
        let err = db
            .query("EXPLAIN SEMPLAN How many schools are there?")
            .unwrap_err();
        assert!(err.message().contains("no explainer registered"), "{err:?}");

        db.set_semplan_explainer(Arc::new(|q: &str| {
            if q.starts_with("How many") {
                Ok(format!("SemAgg  [gen]\n  Scan schools  [exec]\n# {q}"))
            } else {
                Err(format!("not a TAG-Bench question: {q}"))
            }
        }));
        let rs = db
            .query("EXPLAIN SEMPLAN How many schools are there?")
            .unwrap();
        assert_eq!(rs.columns, vec!["plan"]);
        assert_eq!(rs.rows[0][0].to_string(), "SemAgg  [gen]");
        let err = db.query("EXPLAIN SEMPLAN gibberish").unwrap_err();
        assert!(err.message().contains("not a TAG-Bench question"));
        // Works through the mutable entry point too.
        let mut db2 = db.clone();
        assert!(db2
            .execute("EXPLAIN SEMPLAN How many schools are there?")
            .is_ok());
    }

    #[test]
    fn explain_verify_requires_registered_verifier() {
        let db = db();
        let err = db
            .query("EXPLAIN VERIFY How many schools are there?")
            .unwrap_err();
        assert!(err.message().contains("no verifier registered"), "{err:?}");
        assert!(db.query("EXPLAIN VERIFY").is_err());

        // The verifier hook sees the live database, so it can resolve
        // the catalog the same way the executor would.
        db.set_semplan_verifier(Arc::new(|db: &Database, q: &str| {
            if q.starts_with("How many") {
                let tables = db.catalog().table_names().len();
                Ok(format!("verify: ok\n# {q} over {tables} table(s)"))
            } else {
                Err(format!("not a TAG-Bench question: {q}"))
            }
        }));
        let rs = db
            .query("EXPLAIN VERIFY How many schools are there?")
            .unwrap();
        assert_eq!(rs.columns, vec!["plan"]);
        assert_eq!(rs.rows[0][0].to_string(), "verify: ok");
        assert!(rs.rows[1][0].to_string().contains("table(s)"));
        let err = db.query("EXPLAIN VERIFY gibberish").unwrap_err();
        assert!(err.message().contains("not a TAG-Bench question"));
        // Works through the mutable entry point too.
        let mut db2 = db.clone();
        assert!(db2
            .execute("EXPLAIN VERIFY How many schools are there?")
            .is_ok());
    }

    #[test]
    fn semplan_cache_shares_epoch_invalidation() {
        let mut db = db();
        let build = || SemNode::Scan {
            table: "schools".into(),
        };
        let (plan, hit) = db.semplan_for("q1|p1d1c1", build);
        assert!(!hit);
        assert!(matches!(plan.arms[0].plan, Plan::Sem { .. }));
        let (_, hit) = db.semplan_for("q1|p1d1c1", build);
        assert!(hit, "same key re-planned");
        let (_, hit) = db.semplan_for("q1|p0d0c0", build);
        assert!(!hit, "different optimizer tag must not collide");
        // DML bumps the epoch: the semantic plan is invalidated with
        // the relational ones.
        db.execute("INSERT INTO schools VALUES (7, 'Davis', -121.7)")
            .unwrap();
        let (_, hit) = db.semplan_for("q1|p1d1c1", build);
        assert!(!hit, "epoch bump evicts semantic plans");
    }

    #[test]
    fn end_to_end_select() {
        let mut db = db();
        let rs = db
            .execute("SELECT City, COUNT(*) AS n FROM schools GROUP BY City ORDER BY n DESC, City")
            .unwrap();
        assert_eq!(rs.columns, vec!["City", "n"]);
        assert_eq!(rs.rows[0][0], Value::text("Palo Alto"));
        assert_eq!(rs.rows[0][1], Value::Int(2));
        assert_eq!(rs.len(), 3);
    }

    #[test]
    fn primary_key_gets_unique_index() {
        let mut db = db();
        let err = db
            .execute("INSERT INTO schools VALUES (1, 'Dup', 0.0)")
            .unwrap_err();
        assert!(err.message().contains("UNIQUE"));
        // And equality lookups use it.
        let explain = db
            .explain("SELECT * FROM schools WHERE CDSCode = 2")
            .unwrap();
        assert!(explain.contains("IndexProbe"), "{explain}");
    }

    #[test]
    fn insert_with_column_list_fills_nulls() {
        let mut db = db();
        db.execute("INSERT INTO schools (CDSCode, City) VALUES (9, 'Gilroy')")
            .unwrap();
        let rs = db
            .execute("SELECT Longitude FROM schools WHERE CDSCode = 9")
            .unwrap();
        assert!(rs.rows[0][0].is_null());
    }

    #[test]
    fn delete_and_update() {
        let mut db = db();
        let rs = db
            .execute("DELETE FROM schools WHERE City = 'Palo Alto'")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(2));
        let rs = db
            .execute("UPDATE schools SET Longitude = Longitude + 1 WHERE CDSCode = 2")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(1));
        assert_eq!(
            db.query_scalar("SELECT Longitude FROM schools WHERE CDSCode = 2")
                .unwrap(),
            Value::Float(-118.8)
        );
    }

    #[test]
    fn drop_table() {
        let mut db = db();
        db.execute("DROP TABLE schools").unwrap();
        assert!(db.execute("SELECT * FROM schools").is_err());
        db.execute("DROP TABLE IF EXISTS schools").unwrap();
        assert!(db.execute("DROP TABLE schools").is_err());
    }

    #[test]
    fn udf_in_query() {
        let mut db = db();
        db.udfs.register_fn("is_bay_area", Some(1), |args| {
            let city = args[0].to_string();
            Ok(Value::from(matches!(
                city.as_str(),
                "Palo Alto" | "San Jose" | "Oakland"
            )))
        });
        let rs = db
            .execute("SELECT COUNT(*) FROM schools WHERE is_bay_area(City)")
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(3));
    }

    #[test]
    fn if_not_exists() {
        let mut db = db();
        db.execute("CREATE TABLE IF NOT EXISTS schools (x TEXT)")
            .unwrap();
        assert!(db.execute("CREATE TABLE schools (x TEXT)").is_err());
    }

    #[test]
    fn create_index_statement() {
        let mut db = db();
        db.execute("CREATE INDEX idx_city ON schools (City)")
            .unwrap();
        let explain = db
            .explain("SELECT * FROM schools WHERE City = 'Fresno'")
            .unwrap();
        assert!(explain.contains("IndexProbe"), "{explain}");
    }

    #[test]
    fn query_scalar_shape_errors() {
        let mut db = db();
        assert!(db.query_scalar("SELECT * FROM schools").is_err());
        assert_eq!(
            db.query_scalar("SELECT COUNT(*) FROM schools").unwrap(),
            Value::Int(4)
        );
    }

    #[test]
    fn union_and_union_all() {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE a (x INTEGER); INSERT INTO a VALUES (1), (2);
             CREATE TABLE b (x INTEGER); INSERT INTO b VALUES (2), (3);",
        )
        .unwrap();
        let rs = db
            .execute("SELECT x FROM a UNION ALL SELECT x FROM b")
            .unwrap();
        assert_eq!(rs.len(), 4);
        let rs = db.execute("SELECT x FROM a UNION SELECT x FROM b").unwrap();
        let mut vals: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![1, 2, 3]);
        // width mismatch
        let err = db
            .execute("SELECT x FROM a UNION SELECT x, x FROM b")
            .unwrap_err();
        assert!(err.message().contains("widths"));
        // per-arm clauses still work
        let rs = db
            .execute(
                "SELECT x FROM a WHERE x > 1 UNION ALL SELECT x FROM b ORDER BY x DESC LIMIT 1",
            )
            .unwrap();
        assert_eq!(rs.rows[0][0], Value::Int(2));
    }

    #[test]
    fn correlated_subqueries() {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE posts (Id INTEGER, Title TEXT);
             INSERT INTO posts VALUES (1, 'a'), (2, 'b'), (3, 'c');
             CREATE TABLE comments (Id INTEGER, PostId INTEGER, Score INTEGER);
             INSERT INTO comments VALUES (1, 1, 5), (2, 1, 7), (3, 2, 1);",
        )
        .unwrap();
        // EXISTS with an outer reference.
        let rs = db
            .execute(
                "SELECT Title FROM posts p WHERE EXISTS \
                 (SELECT 1 FROM comments c WHERE c.PostId = p.Id AND c.Score > 4)",
            )
            .unwrap();
        assert_eq!(rs.column_values("Title").unwrap(), vec![Value::text("a")]);
        // Correlated scalar in the select list.
        let rs = db
            .execute(
                "SELECT Title, (SELECT COUNT(*) FROM comments c WHERE c.PostId = p.Id) \
                 AS n FROM posts p ORDER BY Title",
            )
            .unwrap();
        let counts: Vec<i64> = rs.rows.iter().map(|r| r[1].as_i64().unwrap()).collect();
        assert_eq!(counts, vec![2, 1, 0]);
        // NOT EXISTS.
        let rs = db
            .execute(
                "SELECT Title FROM posts p WHERE NOT EXISTS \
                 (SELECT 1 FROM comments c WHERE c.PostId = p.Id)",
            )
            .unwrap();
        assert_eq!(rs.column_values("Title").unwrap(), vec![Value::text("c")]);
        // Correlated IN.
        let rs = db
            .execute(
                "SELECT Title FROM posts p WHERE 7 IN \
                 (SELECT Score FROM comments c WHERE c.PostId = p.Id)",
            )
            .unwrap();
        assert_eq!(rs.column_values("Title").unwrap(), vec![Value::text("a")]);
        // Correlated scalar compared in WHERE.
        let rs = db
            .execute(
                "SELECT Title FROM posts p WHERE \
                 (SELECT MAX(Score) FROM comments c WHERE c.PostId = p.Id) > 4",
            )
            .unwrap();
        assert_eq!(rs.column_values("Title").unwrap(), vec![Value::text("a")]);
    }

    #[test]
    fn correlated_subquery_with_join_in_outer_query() {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE a (x INTEGER); INSERT INTO a VALUES (1), (2);
             CREATE TABLE b (y INTEGER); INSERT INTO b VALUES (1), (3);
             CREATE TABLE c (z INTEGER); INSERT INTO c VALUES (1);",
        )
        .unwrap();
        // The correlated predicate references a column from the left join
        // side; the optimizer must keep the outer refs consistent when it
        // pushes or rewrites the filter.
        let rs = db
            .execute(
                "SELECT a.x, b.y FROM a CROSS JOIN b \
                 WHERE EXISTS (SELECT 1 FROM c WHERE c.z = a.x) ORDER BY b.y",
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        for r in &rs.rows {
            assert_eq!(r[0], Value::Int(1));
        }
    }

    #[test]
    fn correlated_exists_in_having_binds_group_keys() {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE orders (cust INTEGER, amount INTEGER);
             INSERT INTO orders VALUES (1, 10), (1, 20), (2, 5), (3, 50);
             CREATE TABLE vip (id INTEGER);
             INSERT INTO vip VALUES (1), (3);",
        )
        .unwrap();
        // The outer reference inside the subquery resolves against the
        // aggregate output scope (the rows HAVING filters).
        let rs = db
            .execute(
                "SELECT cust, SUM(amount) FROM orders o GROUP BY cust \
                 HAVING EXISTS (SELECT 1 FROM vip WHERE vip.id = cust)",
            )
            .unwrap();
        let custs: Vec<i64> = rs.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(custs, vec![1, 3]);
    }

    #[test]
    fn unknown_column_still_errors_with_outer_scope() {
        let mut db = Database::new();
        db.execute_script("CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1);")
            .unwrap();
        let err = db
            .execute("SELECT x FROM t WHERE EXISTS (SELECT nope FROM t)")
            .unwrap_err();
        assert!(err.message().contains("no such column"), "{err}");
    }

    #[test]
    fn query_profiled_matches_query_and_annotates_plan() {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE t (a INTEGER, b TEXT);
             INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'x');",
        )
        .unwrap();
        let sql = "SELECT b, COUNT(*) FROM t WHERE a > 1 GROUP BY b ORDER BY b";
        let plain = db.query(sql).unwrap();
        let (profiled, plan_text) = db.query_profiled(sql).unwrap();
        assert_eq!(plain.rows, profiled.rows);
        assert_eq!(plain.columns, profiled.columns);
        assert!(plan_text.contains("in="), "{plan_text}");
        assert!(plan_text.contains("out="), "{plan_text}");
        assert!(plan_text.contains("time="), "{plan_text}");
        assert!(plan_text.contains("TableScan t"), "{plan_text}");
    }

    #[test]
    fn query_profiled_handles_compound_select() {
        let mut db = Database::new();
        db.execute_script(
            "CREATE TABLE t (a INTEGER);
             INSERT INTO t VALUES (1), (2);",
        )
        .unwrap();
        let sql = "SELECT a FROM t UNION SELECT a FROM t";
        let plain = db.query(sql).unwrap();
        let (profiled, plan_text) = db.query_profiled(sql).unwrap();
        assert_eq!(plain.rows, profiled.rows);
        assert!(plan_text.contains("UNION\n"), "{plan_text}");
    }

    #[test]
    fn query_profiled_rejects_dml() {
        let db = Database::new();
        let err = db.query_profiled("CREATE TABLE t (a INTEGER)").unwrap_err();
        assert!(err.message().contains("read-only"), "{err}");
    }

    #[test]
    fn repeated_queries_hit_the_plan_cache() {
        let db = db();
        let a = db.query("SELECT City FROM schools ORDER BY City").unwrap();
        // Re-formatted (whitespace + keyword case) variants share the entry.
        let b = db
            .query("select  City\nfrom schools  order by City")
            .unwrap();
        let c = db.query("SELECT City FROM schools ORDER BY City").unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.columns, b.columns);
        assert_eq!(a.rows, c.rows);
        let s = db.plan_cache_stats();
        assert_eq!(s.hits, 2, "{s:?}");
        assert_eq!(s.misses, 1, "{s:?}");
        assert_eq!(s.entries, 1, "{s:?}");
    }

    #[test]
    fn dml_invalidates_cached_plans() {
        let mut db = db();
        let e0 = db.schema_epoch();
        // The planner executes this uncorrelated subquery eagerly, so the
        // count is baked into the plan — the classic staleness trap.
        let sql = "SELECT (SELECT COUNT(*) FROM schools) AS n FROM schools LIMIT 1";
        assert_eq!(db.query(sql).unwrap().rows[0][0], Value::Int(4));
        assert_eq!(db.query(sql).unwrap().rows[0][0], Value::Int(4));
        db.execute("INSERT INTO schools VALUES (9, 'Gilroy', -121.5)")
            .unwrap();
        assert!(db.schema_epoch() > e0);
        assert_eq!(db.query(sql).unwrap().rows[0][0], Value::Int(5));
        let s = db.plan_cache_stats();
        assert_eq!(s.hits, 1, "{s:?}");
        assert!(s.invalidations >= 1, "{s:?}");
    }

    #[test]
    fn select_does_not_bump_epoch() {
        let db = db();
        let e0 = db.schema_epoch();
        db.query("SELECT * FROM schools").unwrap();
        assert_eq!(db.schema_epoch(), e0);
    }

    #[test]
    fn catalog_mut_and_udfs_invalidate_plans() {
        let mut db = db();
        db.query("SELECT * FROM schools").unwrap();
        assert_eq!(db.plan_cache_stats().entries, 1);
        let e0 = db.schema_epoch();
        let _ = db.catalog_mut();
        assert!(db.schema_epoch() > e0);
        assert_eq!(db.plan_cache_stats().entries, 0);
    }

    #[test]
    fn disabled_plan_cache_still_answers_identically() {
        let db_on = db();
        let db_off = db();
        db_off.set_plan_cache_capacity(0);
        let sql = "SELECT City, COUNT(*) AS n FROM schools GROUP BY City ORDER BY n DESC, City";
        for _ in 0..3 {
            let on = db_on.query(sql).unwrap();
            let off = db_off.query(sql).unwrap();
            assert_eq!(on.rows, off.rows);
            assert_eq!(on.columns, off.columns);
        }
        assert!(db_on.plan_cache_stats().hits > 0);
        let s = db_off.plan_cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0), "{s:?}");
    }

    #[test]
    fn query_profiled_reports_cache_outcome() {
        let db = db();
        let sql = "SELECT City FROM schools";
        let (_, text) = db.query_profiled(sql).unwrap();
        assert!(text.ends_with("plan_cache: miss"), "{text}");
        let (_, text) = db.query_profiled(sql).unwrap();
        assert!(text.ends_with("plan_cache: hit"), "{text}");
    }

    #[test]
    fn chunked_policy_is_byte_identical_and_survives_dml() {
        let mut serial = db();
        let mut chunked = db();
        chunked.set_exec_policy(ExecPolicy::chunked(8));
        assert!(chunked.exec_policy().chunked);
        let queries = [
            "SELECT * FROM schools",
            "SELECT City, COUNT(*) AS n FROM schools GROUP BY City ORDER BY n DESC, City",
            "SELECT s.City, t.City FROM schools s JOIN schools t ON s.City = t.City \
             WHERE s.CDSCode < t.CDSCode",
            "SELECT City FROM schools ORDER BY Longitude LIMIT 2",
            "SELECT DISTINCT City FROM schools",
        ];
        for sql in queries {
            let a = serial.query(sql).unwrap();
            let b = chunked.query(sql).unwrap();
            assert_eq!(a.rows, b.rows, "{sql}");
            let (bp, _) = chunked.query_profiled(sql).unwrap();
            assert_eq!(a.rows, bp.rows, "profiled {sql}");
        }
        // DML through the engine invalidates the columnar cache too.
        for db in [&mut serial, &mut chunked] {
            db.execute("UPDATE schools SET City = 'Fresno' WHERE CDSCode = 1")
                .unwrap();
        }
        let sql = "SELECT City, COUNT(*) FROM schools GROUP BY City ORDER BY City";
        assert_eq!(
            serial.query(sql).unwrap().rows,
            chunked.query(sql).unwrap().rows
        );
    }

    #[test]
    fn execute_script_returns_last() {
        let mut db = Database::new();
        let rs = db
            .execute_script("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); SELECT a FROM t")
            .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(1)]]);
        assert_eq!(db.statements_run(), 3);
    }
}
