//! Heap tables with optional secondary indexes.

use crate::chunk::Chunk;
use crate::error::{SqlError, SqlResult};
use crate::index::{BTreeIndex, HashIndex};
use crate::schema::{Row, Schema};
use crate::value::Value;
use std::sync::{Arc, OnceLock};

/// Which physical structure backs an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Ordered B+-tree; supports equality and range probes.
    BTree,
    /// Hash map; equality probes only.
    Hash,
}

/// An index attached to a table.
#[derive(Debug, Clone)]
pub struct TableIndex {
    /// Index name (unique per table).
    pub name: String,
    /// The indexed column's position.
    pub column: usize,
    /// Reject duplicate keys on insert?
    pub unique: bool,
    storage: IndexStorage,
}

#[derive(Debug, Clone)]
enum IndexStorage {
    BTree(BTreeIndex),
    Hash(HashIndex),
}

impl TableIndex {
    /// The storage kind.
    pub fn kind(&self) -> IndexKind {
        match self.storage {
            IndexStorage::BTree(_) => IndexKind::BTree,
            IndexStorage::Hash(_) => IndexKind::Hash,
        }
    }

    /// Row ids holding exactly `key`.
    pub fn probe(&self, key: &Value) -> Vec<usize> {
        match &self.storage {
            IndexStorage::BTree(b) => b.get(key),
            IndexStorage::Hash(h) => h.get(key).to_vec(),
        }
    }

    /// Ordered range probe; `None` for hash indexes.
    pub fn probe_range(
        &self,
        low: std::ops::Bound<&Value>,
        high: std::ops::Bound<&Value>,
    ) -> Option<Vec<usize>> {
        match &self.storage {
            IndexStorage::BTree(b) => Some(b.range(low, high)),
            IndexStorage::Hash(_) => None,
        }
    }
}

/// An in-memory table: a schema plus a row heap.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    indexes: Vec<TableIndex>,
    /// Lazily built columnar image of `rows` for the chunked executor;
    /// invalidated by every mutation. Cloning the table clones the Arc,
    /// which stays valid because the rows are cloned identically.
    columnar: OnceLock<Arc<Chunk>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Table {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            indexes: Vec::new(),
            columnar: OnceLock::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows, in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// A single row by id.
    pub fn row(&self, id: usize) -> &Row {
        &self.rows[id]
    }

    /// The columnar image of this table, built on first use and shared
    /// (zero-copy) with every scan until the next mutation.
    pub fn columnar(&self) -> Arc<Chunk> {
        Arc::clone(
            self.columnar.get_or_init(|| {
                Arc::new(Chunk::from_rows(self.schema.columns().len(), &self.rows))
            }),
        )
    }

    /// Validate, coerce, and append a row; maintains indexes.
    pub fn insert(&mut self, row: Row) -> SqlResult<()> {
        let row = self.schema.check_row(&row)?;
        let id = self.rows.len();
        for idx in &self.indexes {
            let key = &row[idx.column];
            if idx.unique && !idx.probe(key).is_empty() {
                return Err(SqlError::Catalog(format!(
                    "UNIQUE constraint failed: index {} on {}",
                    idx.name, self.name
                )));
            }
        }
        for idx in &mut self.indexes {
            let key = row[idx.column].clone();
            match &mut idx.storage {
                IndexStorage::BTree(b) => b.insert(key, id),
                IndexStorage::Hash(h) => h.insert(key, id),
            }
        }
        self.rows.push(row);
        self.columnar = OnceLock::new();
        Ok(())
    }

    /// Bulk insert; stops at the first failing row.
    pub fn insert_all(&mut self, rows: impl IntoIterator<Item = Row>) -> SqlResult<usize> {
        let mut n = 0;
        for row in rows {
            self.insert(row)?;
            n += 1;
        }
        Ok(n)
    }

    /// Delete rows matching the predicate; returns the number removed.
    /// Row ids are compacted, so all indexes are rebuilt afterwards.
    pub fn delete_where(
        &mut self,
        mut pred: impl FnMut(&Row) -> SqlResult<bool>,
    ) -> SqlResult<usize> {
        let mut kept = Vec::with_capacity(self.rows.len());
        let mut removed = 0;
        for row in self.rows.drain(..) {
            if pred(&row)? {
                removed += 1;
            } else {
                kept.push(row);
            }
        }
        self.rows = kept;
        self.columnar = OnceLock::new();
        self.rebuild_indexes();
        Ok(removed)
    }

    /// Update rows in place via the supplied function; returns the number
    /// changed. Indexes are rebuilt afterwards.
    pub fn update_where(
        &mut self,
        mut pred: impl FnMut(&Row) -> SqlResult<bool>,
        mut apply: impl FnMut(&Row) -> SqlResult<Row>,
    ) -> SqlResult<usize> {
        let mut changed = 0;
        for i in 0..self.rows.len() {
            if pred(&self.rows[i])? {
                let new_row = apply(&self.rows[i])?;
                self.rows[i] = self.schema.check_row(&new_row)?;
                changed += 1;
            }
        }
        if changed > 0 {
            self.columnar = OnceLock::new();
            self.rebuild_indexes();
        }
        Ok(changed)
    }

    /// Create an index over `column`. Fails on duplicate names, unknown
    /// columns, or a unique index over data that already has duplicates.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        column_name: &str,
        kind: IndexKind,
        unique: bool,
    ) -> SqlResult<()> {
        let name = name.into();
        if self.indexes.iter().any(|i| i.name == name) {
            return Err(SqlError::Catalog(format!("index {name} already exists")));
        }
        let column = self.schema.index_of(column_name).ok_or_else(|| {
            SqlError::Binding(format!("no column {column_name:?} in table {}", self.name))
        })?;
        let mut idx = TableIndex {
            name,
            column,
            unique,
            storage: match kind {
                IndexKind::BTree => IndexStorage::BTree(BTreeIndex::new()),
                IndexKind::Hash => IndexStorage::Hash(HashIndex::new()),
            },
        };
        for (id, row) in self.rows.iter().enumerate() {
            let key = row[column].clone();
            if unique && !idx.probe(&key).is_empty() {
                return Err(SqlError::Catalog(format!(
                    "cannot create unique index {}: duplicate value {}",
                    idx.name,
                    key.to_sql_literal()
                )));
            }
            match &mut idx.storage {
                IndexStorage::BTree(b) => b.insert(key, id),
                IndexStorage::Hash(h) => h.insert(key, id),
            }
        }
        self.indexes.push(idx);
        Ok(())
    }

    /// The indexes attached to this table.
    pub fn indexes(&self) -> &[TableIndex] {
        &self.indexes
    }

    /// Find an index over the given column position, preferring B-trees
    /// (they answer both equality and range probes).
    pub fn index_on(&self, column: usize) -> Option<&TableIndex> {
        self.indexes
            .iter()
            .filter(|i| i.column == column)
            .max_by_key(|i| matches!(i.kind(), IndexKind::BTree) as u8)
    }

    fn rebuild_indexes(&mut self) {
        for idx in &mut self.indexes {
            match &mut idx.storage {
                IndexStorage::BTree(b) => *b = BTreeIndex::new(),
                IndexStorage::Hash(h) => *h = HashIndex::new(),
            }
            for (id, row) in self.rows.iter().enumerate() {
                let key = row[idx.column].clone();
                match &mut idx.storage {
                    IndexStorage::BTree(b) => b.insert(key, id),
                    IndexStorage::Hash(h) => h.insert(key, id),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Integer).primary_key(),
            Column::new("city", DataType::Text),
            Column::new("score", DataType::Real),
        ])
        .unwrap();
        Table::new("t", schema)
    }

    #[test]
    fn insert_validates_and_coerces() {
        let mut t = table();
        t.insert(vec![Value::text("1"), Value::text("SF"), Value::Int(10)])
            .unwrap();
        assert_eq!(
            t.row(0),
            &vec![Value::Int(1), Value::text("SF"), Value::Float(10.0)]
        );
        assert!(t
            .insert(vec![Value::Null, Value::Null, Value::Null])
            .is_err());
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut t = table();
        t.create_index("idx_city", "city", IndexKind::Hash, false)
            .unwrap();
        for i in 0..10 {
            t.insert(vec![
                Value::Int(i),
                Value::text(if i % 2 == 0 { "SF" } else { "LA" }),
                Value::Float(i as f64),
            ])
            .unwrap();
        }
        let idx = t.index_on(1).unwrap();
        assert_eq!(idx.probe(&Value::text("SF")).len(), 5);
        assert_eq!(idx.probe(&Value::text("NYC")).len(), 0);
    }

    #[test]
    fn unique_index_rejects_duplicates() {
        let mut t = table();
        t.create_index("pk", "id", IndexKind::BTree, true).unwrap();
        t.insert(vec![Value::Int(1), Value::text("a"), Value::Null])
            .unwrap();
        let err = t
            .insert(vec![Value::Int(1), Value::text("b"), Value::Null])
            .unwrap_err();
        assert!(err.message().contains("UNIQUE"));
    }

    #[test]
    fn unique_index_creation_rejects_existing_duplicates() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::text("a"), Value::Null])
            .unwrap();
        t.insert(vec![Value::Int(2), Value::text("a"), Value::Null])
            .unwrap();
        assert!(t
            .create_index("u_city", "city", IndexKind::Hash, true)
            .is_err());
    }

    #[test]
    fn delete_rebuilds_indexes() {
        let mut t = table();
        t.create_index("idx_id", "id", IndexKind::BTree, false)
            .unwrap();
        for i in 0..10 {
            t.insert(vec![Value::Int(i), Value::text("x"), Value::Null])
                .unwrap();
        }
        let removed = t.delete_where(|r| Ok(r[0] < Value::Int(5))).unwrap();
        assert_eq!(removed, 5);
        assert_eq!(t.len(), 5);
        // Probe for a surviving key: row ids must be valid after compaction.
        let idx = t.index_on(0).unwrap();
        let rows = idx.probe(&Value::Int(7));
        assert_eq!(rows.len(), 1);
        assert_eq!(t.row(rows[0])[0], Value::Int(7));
    }

    #[test]
    fn update_applies_schema_checks() {
        let mut t = table();
        t.insert(vec![Value::Int(1), Value::text("a"), Value::Float(1.0)])
            .unwrap();
        let n = t
            .update_where(
                |_| Ok(true),
                |r| {
                    let mut r = r.clone();
                    r[2] = Value::Int(9); // coerced to Real by schema
                    Ok(r)
                },
            )
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(t.row(0)[2], Value::Float(9.0));
    }

    #[test]
    fn index_on_prefers_btree() {
        let mut t = table();
        t.create_index("h", "id", IndexKind::Hash, false).unwrap();
        t.create_index("b", "id", IndexKind::BTree, false).unwrap();
        assert_eq!(t.index_on(0).unwrap().kind(), IndexKind::BTree);
    }
}
