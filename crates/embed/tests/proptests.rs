//! Property-based tests for the embedding substrate.

use proptest::prelude::*;
use tag_embed::{cosine, Embedder, FlatIndex, IvfIndex};

proptest! {
    /// Embeddings are unit-norm (or zero) and deterministic.
    #[test]
    fn embeddings_unit_norm(text in "\\PC{0,120}") {
        let e = Embedder::default();
        let v = e.embed(&text);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        prop_assert!(norm < 1.0 + 1e-4);
        prop_assert!(norm.abs() < 1e-4 || (norm - 1.0).abs() < 1e-4);
        prop_assert_eq!(v, e.embed(&text));
    }

    /// Cosine similarity is bounded and symmetric; self-similarity is 1.
    #[test]
    fn cosine_properties(a in "\\PC{1,60}", b in "\\PC{1,60}") {
        let e = Embedder::default();
        let va = e.embed(&a);
        let vb = e.embed(&b);
        let c = cosine(&va, &vb);
        prop_assert!((-1.0 - 1e-4..=1.0 + 1e-4).contains(&c));
        prop_assert!((c - cosine(&vb, &va)).abs() < 1e-5);
        if va.iter().any(|x| *x != 0.0) {
            prop_assert!((cosine(&va, &va) - 1.0).abs() < 1e-4);
        }
    }

    /// Flat search returns hits in non-increasing score order and the
    /// top-1 result for a stored vector's own embedding is itself (or an
    /// exact duplicate with smaller id).
    #[test]
    fn flat_search_invariants(
        texts in prop::collection::vec("[a-z ]{5,40}", 2..30),
        k in 1usize..8,
    ) {
        let e = Embedder::default();
        let mut idx = FlatIndex::new(e.dims());
        for t in &texts {
            idx.add(e.embed(t));
        }
        let probe = &texts[texts.len() / 2];
        let hits = idx.search(&e.embed(probe), k);
        prop_assert!(hits.len() == k.min(texts.len()));
        prop_assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
        let top = &texts[hits[0].id];
        prop_assert_eq!(e.embed(top), e.embed(probe));
    }

    /// IVF with nprobe == nlist returns the same ids as exact search.
    #[test]
    fn ivf_full_probe_is_exact(
        texts in prop::collection::vec("[a-z ]{5,40}", 3..25),
        k in 1usize..5,
    ) {
        let e = Embedder::default();
        let vectors: Vec<Vec<f32>> = texts.iter().map(|t| e.embed(t)).collect();
        let mut flat = FlatIndex::new(e.dims());
        flat.add_all(vectors.clone());
        let nlist = 4;
        let ivf = IvfIndex::build(e.dims(), nlist, nlist, vectors);
        let q = e.embed(&texts[0]);
        let f: Vec<usize> = flat.search(&q, k).into_iter().map(|h| h.id).collect();
        let a: Vec<usize> = ivf.search(&q, k).into_iter().map(|h| h.id).collect();
        prop_assert_eq!(f, a);
    }
}
