//! Row-level retrieval store: the RAG baseline's data layer.
//!
//! Rows are serialized in the paper's "- col: val" format (§4.2),
//! embedded, and indexed for similarity search. Retrieval returns the
//! original (column, value) pairs so the generation step can put them in
//! context verbatim.

use crate::embedder::Embedder;
use crate::index::{FlatIndex, Hit};
use std::sync::atomic::{AtomicU64, Ordering};

/// One stored row: ordered `(column, value)` pairs.
pub type StoredRow = Vec<(String, String)>;

/// Snapshot of a store's retrieval counters (cumulative since build).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetrievalStats {
    /// Retrieval probes served.
    pub probes: u64,
    /// Candidate rows returned across all probes (≤ probes × k).
    pub candidates: u64,
    /// Stored vectors scanned across all probes (flat index: the whole
    /// store per probe).
    pub rows_scanned: u64,
}

/// Hot-path retrieval counters: three relaxed atomics, bumped on every
/// [`RowStore::retrieve`], scraped by the serving layer's metrics hub.
#[derive(Debug, Default)]
struct RetrievalCounters {
    probes: AtomicU64,
    candidates: AtomicU64,
    rows_scanned: AtomicU64,
}

/// Serialize a row the way the paper's RAG baseline does.
pub fn serialize_row(row: &StoredRow) -> String {
    row.iter()
        .map(|(c, v)| format!("- {c}: {v}"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// A vector store over serialized table rows.
pub struct RowStore {
    embedder: Embedder,
    index: FlatIndex,
    rows: Vec<StoredRow>,
    retrievals: RetrievalCounters,
}

impl RowStore {
    /// An empty store using the given embedder.
    pub fn new(embedder: Embedder) -> Self {
        let dims = embedder.dims();
        RowStore {
            embedder,
            index: FlatIndex::new(dims),
            rows: Vec::new(),
            retrievals: RetrievalCounters::default(),
        }
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Add one row (serialized, embedded, indexed).
    pub fn add_row(&mut self, row: StoredRow) {
        let text = serialize_row(&row);
        self.index.add(self.embedder.embed(&text));
        self.rows.push(row);
    }

    /// Add many rows.
    pub fn add_rows(&mut self, rows: impl IntoIterator<Item = StoredRow>) {
        for r in rows {
            self.add_row(r);
        }
    }

    /// Retrieve the `k` most similar rows to a natural-language query.
    pub fn retrieve(&self, query: &str, k: usize) -> Vec<(&StoredRow, f32)> {
        let q = self.embedder.embed(query);
        let hits: Vec<(&StoredRow, f32)> = self
            .index
            .search(&q, k)
            .into_iter()
            .map(|Hit { id, score }| (&self.rows[id], score))
            .collect();
        self.retrievals.probes.fetch_add(1, Ordering::Relaxed);
        self.retrievals
            .candidates
            .fetch_add(hits.len() as u64, Ordering::Relaxed);
        self.retrievals
            .rows_scanned
            .fetch_add(self.rows.len() as u64, Ordering::Relaxed);
        hits
    }

    /// Cumulative retrieval counters.
    pub fn retrieval_stats(&self) -> RetrievalStats {
        RetrievalStats {
            probes: self.retrievals.probes.load(Ordering::Relaxed),
            candidates: self.retrievals.candidates.load(Ordering::Relaxed),
            rows_scanned: self.retrievals.rows_scanned.load(Ordering::Relaxed),
        }
    }

    /// The stored rows (insertion order).
    pub fn rows(&self) -> &[StoredRow] {
        &self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> RowStore {
        let mut s = RowStore::new(Embedder::default());
        s.add_rows((1999..=2017).map(|y| {
            vec![
                ("year".to_owned(), y.to_string()),
                ("name".to_owned(), format!("{y} Malaysian Grand Prix")),
                (
                    "Circuit".to_owned(),
                    "Sepang International Circuit".to_owned(),
                ),
            ]
        }));
        s.add_rows((2000..=2017).map(|y| {
            vec![
                ("year".to_owned(), y.to_string()),
                ("name".to_owned(), format!("{y} Italian Grand Prix")),
                (
                    "Circuit".to_owned(),
                    "Autodromo Nazionale di Monza".to_owned(),
                ),
            ]
        }));
        s
    }

    #[test]
    fn serialization_format() {
        let row: StoredRow = vec![
            ("School".to_owned(), "Gunn High".to_owned()),
            ("City".to_owned(), "Palo Alto".to_owned()),
        ];
        assert_eq!(
            serialize_row(&row),
            "- School: Gunn High\n- City: Palo Alto"
        );
    }

    #[test]
    fn retrieval_prefers_matching_rows() {
        let s = store();
        let hits = s.retrieve("races held on Sepang International Circuit", 10);
        assert_eq!(hits.len(), 10);
        let sepang = hits
            .iter()
            .filter(|(r, _)| r.iter().any(|(_, v)| v.contains("Sepang")))
            .count();
        assert!(sepang >= 8, "only {sepang}/10 hits were Sepang rows");
        // Scores descend.
        assert!(hits.windows(2).all(|w| w[0].1 >= w[1].1));
    }

    #[test]
    fn retrieval_cannot_cover_all_19_races_with_k_10() {
        // The structural RAG failure on aggregation queries: 19 relevant
        // rows cannot fit in a top-10 retrieval.
        let s = store();
        let hits = s.retrieve("races held on Sepang International Circuit", 10);
        let years: std::collections::HashSet<&str> = hits
            .iter()
            .filter(|(r, _)| r.iter().any(|(_, v)| v.contains("Sepang")))
            .filter_map(|(r, _)| r.iter().find(|(c, _)| c == "year").map(|(_, v)| v.as_str()))
            .collect();
        assert!(years.len() < 19);
    }

    #[test]
    fn retrieval_counters_accumulate() {
        let s = store();
        assert_eq!(s.retrieval_stats(), RetrievalStats::default());
        s.retrieve("Sepang races", 10);
        s.retrieve("Monza races", 5);
        let stats = s.retrieval_stats();
        assert_eq!(stats.probes, 2);
        assert_eq!(stats.candidates, 15);
        assert_eq!(stats.rows_scanned, 2 * s.len() as u64);
    }

    #[test]
    fn empty_store() {
        let s = RowStore::new(Embedder::default());
        assert!(s.is_empty());
        assert!(s.retrieve("anything", 5).is_empty());
    }
}
