//! Deterministic text embeddings via character n-gram feature hashing.
//!
//! Stands in for the E5-base embedding model: texts with shared vocabulary
//! land near each other under cosine similarity, which is the behaviour
//! row-level RAG retrieval depends on (and whose *limits* — aggregation
//! questions don't lexically mention most relevant rows — reproduce the
//! paper's RAG failures).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Configuration for the hashing embedder.
#[derive(Debug, Clone)]
pub struct EmbedderConfig {
    /// Embedding dimensionality.
    pub dims: usize,
    /// Character n-gram sizes to hash.
    pub ngram_sizes: Vec<usize>,
    /// Also hash whole words (captures exact term matches strongly).
    pub use_words: bool,
}

impl Default for EmbedderConfig {
    fn default() -> Self {
        EmbedderConfig {
            dims: 256,
            ngram_sizes: vec![3, 4],
            use_words: true,
        }
    }
}

/// A deterministic feature-hashing embedder.
#[derive(Debug, Clone)]
pub struct Embedder {
    config: EmbedderConfig,
}

impl Default for Embedder {
    fn default() -> Self {
        Self::new(EmbedderConfig::default())
    }
}

impl Embedder {
    /// Build an embedder.
    pub fn new(config: EmbedderConfig) -> Self {
        assert!(config.dims > 0, "dims must be positive");
        Embedder { config }
    }

    /// Embedding dimensionality.
    pub fn dims(&self) -> usize {
        self.config.dims
    }

    /// Embed a text into an L2-normalized vector.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0f32; self.config.dims];
        let normalized = text.to_lowercase();
        for feature in self.features(&normalized) {
            let (idx, sign) = self.slot(&feature);
            v[idx] += sign;
        }
        l2_normalize(&mut v);
        v
    }

    /// Embed a batch of texts.
    pub fn embed_batch<'a>(&self, texts: impl IntoIterator<Item = &'a str>) -> Vec<Vec<f32>> {
        texts.into_iter().map(|t| self.embed(t)).collect()
    }

    fn features(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        let chars: Vec<char> = text.chars().collect();
        for &n in &self.config.ngram_sizes {
            if chars.len() >= n {
                for w in chars.windows(n) {
                    out.push(format!("g{n}:{}", w.iter().collect::<String>()));
                }
            }
        }
        if self.config.use_words {
            for w in text.split(|c: char| !c.is_alphanumeric()) {
                if !w.is_empty() {
                    out.push(format!("w:{w}"));
                }
            }
        }
        out
    }

    /// Hash a feature to (dimension, ±1) — signed feature hashing keeps
    /// the expected dot product of unrelated texts near zero.
    fn slot(&self, feature: &str) -> (usize, f32) {
        let mut h = DefaultHasher::new();
        feature.hash(&mut h);
        let x = h.finish();
        let idx = (x % self.config.dims as u64) as usize;
        let sign = if (x >> 32) & 1 == 0 { 1.0 } else { -1.0 };
        (idx, sign)
    }
}

/// Normalize a vector to unit L2 norm (no-op for the zero vector).
pub fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Cosine similarity (assumes nothing about normalization).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Dot product (equals cosine for unit vectors).
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance.
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings_are_unit_norm_and_deterministic() {
        let e = Embedder::default();
        let a = e.embed("the quick brown fox");
        let b = e.embed("the quick brown fox");
        assert_eq!(a, b);
        let norm: f32 = a.iter().map(|x| x * x).sum();
        assert!((norm - 1.0).abs() < 1e-5);
        assert_eq!(a.len(), 256);
    }

    #[test]
    fn similar_texts_are_closer() {
        let e = Embedder::default();
        let q = e.embed("races held on Sepang International Circuit");
        let near = e.embed("Malaysian Grand Prix at Sepang International Circuit 2004");
        let far = e.embed("average SAT math score of Palo Alto schools");
        assert!(cosine(&q, &near) > cosine(&q, &far) + 0.1);
    }

    #[test]
    fn case_insensitive() {
        let e = Embedder::default();
        assert_eq!(e.embed("Hello World"), e.embed("hello world"));
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let e = Embedder::default();
        let v = e.embed("");
        assert!(v.iter().all(|x| *x == 0.0));
    }

    #[test]
    fn metric_helpers() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        assert_eq!(cosine(&a, &b), 0.0);
        assert_eq!(cosine(&a, &a), 1.0);
        assert_eq!(dot(&a, &b), 0.0);
        assert_eq!(l2_sq(&a, &b), 2.0);
        assert_eq!(cosine(&[0.0, 0.0], &a), 0.0);
    }

    #[test]
    fn batch_matches_single() {
        let e = Embedder::default();
        let batch = e.embed_batch(["a b c", "d e f"]);
        assert_eq!(batch[0], e.embed("a b c"));
        assert_eq!(batch[1], e.embed("d e f"));
    }
}
