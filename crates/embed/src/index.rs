//! Vector indexes: exact flat search and an IVF approximate index.
//!
//! The FAISS stand-in. `FlatIndex` is brute-force exact top-k;
//! `IvfIndex` clusters vectors with k-means and probes the nearest
//! `nprobe` cells, trading recall for speed exactly as `IndexIVFFlat`
//! does.

use crate::embedder::{dot, l2_sq};
use std::cmp::Ordering;

/// A scored search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Position of the vector in insertion order.
    pub id: usize,
    /// Similarity score (inner product; cosine for unit vectors).
    pub score: f32,
}

/// Exact inner-product top-k over a flat vector store.
#[derive(Debug, Clone, Default)]
pub struct FlatIndex {
    dims: usize,
    vectors: Vec<Vec<f32>>,
}

impl FlatIndex {
    /// An empty index for vectors of the given dimensionality.
    pub fn new(dims: usize) -> Self {
        FlatIndex {
            dims,
            vectors: Vec::new(),
        }
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Append a vector; its id is its insertion position.
    pub fn add(&mut self, v: Vec<f32>) -> usize {
        assert_eq!(v.len(), self.dims, "dimension mismatch");
        self.vectors.push(v);
        self.vectors.len() - 1
    }

    /// Append many vectors.
    pub fn add_all(&mut self, vs: impl IntoIterator<Item = Vec<f32>>) {
        for v in vs {
            self.add(v);
        }
    }

    /// The stored vector for an id.
    pub fn vector(&self, id: usize) -> &[f32] {
        &self.vectors[id]
    }

    /// Exact top-k by inner product, ties broken by id for determinism.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dims, "dimension mismatch");
        top_k_hits(
            self.vectors.iter().enumerate().map(|(id, v)| Hit {
                id,
                score: dot(query, v),
            }),
            k,
        )
    }
}

/// Collect the k best hits (highest score, then lowest id).
fn top_k_hits(hits: impl Iterator<Item = Hit>, k: usize) -> Vec<Hit> {
    let mut best: Vec<Hit> = Vec::with_capacity(k + 1);
    for h in hits {
        let pos = best
            .binary_search_by(|e| {
                e.score
                    .partial_cmp(&h.score)
                    .unwrap_or(Ordering::Equal)
                    .reverse()
                    .then(e.id.cmp(&h.id))
            })
            .unwrap_or_else(|p| p);
        if pos < k {
            best.insert(pos, h);
            if best.len() > k {
                best.pop();
            }
        }
    }
    best
}

/// IVF (inverted-file) approximate index: k-means coarse quantizer over
/// `nlist` cells; queries probe the `nprobe` nearest cells.
#[derive(Debug, Clone)]
pub struct IvfIndex {
    dims: usize,
    nlist: usize,
    /// Number of cells probed per query.
    pub nprobe: usize,
    centroids: Vec<Vec<f32>>,
    cells: Vec<Vec<usize>>,
    vectors: Vec<Vec<f32>>,
}

impl IvfIndex {
    /// Build from a full set of vectors (train + add in one step,
    /// matching the typical FAISS usage for static corpora).
    pub fn build(dims: usize, nlist: usize, nprobe: usize, vectors: Vec<Vec<f32>>) -> Self {
        assert!(nlist > 0 && nprobe > 0);
        for v in &vectors {
            assert_eq!(v.len(), dims, "dimension mismatch");
        }
        let nlist = nlist.min(vectors.len().max(1));
        let centroids = kmeans(&vectors, nlist, dims, 10);
        let mut cells: Vec<Vec<usize>> = vec![Vec::new(); centroids.len()];
        for (id, v) in vectors.iter().enumerate() {
            let c = nearest_centroid(v, &centroids);
            cells[c].push(id);
        }
        IvfIndex {
            dims,
            nlist,
            nprobe,
            centroids,
            cells,
            vectors,
        }
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Number of cells.
    pub fn nlist(&self) -> usize {
        self.nlist
    }

    /// Approximate top-k: probe the `nprobe` nearest cells.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dims, "dimension mismatch");
        if self.vectors.is_empty() {
            return Vec::new();
        }
        // Rank cells by centroid distance.
        let mut cell_order: Vec<(usize, f32)> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(i, c)| (i, l2_sq(query, c)))
            .collect();
        cell_order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));
        let candidates = cell_order
            .iter()
            .take(self.nprobe)
            .flat_map(|(i, _)| self.cells[*i].iter().copied());
        top_k_hits(
            candidates.map(|id| Hit {
                id,
                score: dot(query, &self.vectors[id]),
            }),
            k,
        )
    }
}

/// Deterministic k-means (k-means++ style seeding via farthest-point,
/// fixed iteration count).
fn kmeans(vectors: &[Vec<f32>], k: usize, dims: usize, iters: usize) -> Vec<Vec<f32>> {
    if vectors.is_empty() {
        return vec![vec![0.0; dims]];
    }
    let k = k.min(vectors.len());
    // Farthest-point seeding from vector 0 (deterministic).
    let mut centroids: Vec<Vec<f32>> = vec![vectors[0].clone()];
    while centroids.len() < k {
        let (far_idx, _) = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let d = centroids
                    .iter()
                    .map(|c| l2_sq(v, c))
                    .fold(f32::INFINITY, f32::min);
                (i, d)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal))
            .expect("nonempty");
        centroids.push(vectors[far_idx].clone());
    }
    for _ in 0..iters {
        let mut sums = vec![vec![0f32; dims]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for v in vectors {
            let c = nearest_centroid(v, &centroids);
            counts[c] += 1;
            for (s, x) in sums[c].iter_mut().zip(v) {
                *s += x;
            }
        }
        for (c, (sum, count)) in sums.into_iter().zip(&counts).enumerate() {
            if *count > 0 {
                centroids[c] = sum.into_iter().map(|s| s / *count as f32).collect();
            }
        }
    }
    centroids
}

fn nearest_centroid(v: &[f32], centroids: &[Vec<f32>]) -> usize {
    centroids
        .iter()
        .enumerate()
        .min_by(|a, b| {
            l2_sq(v, a.1)
                .partial_cmp(&l2_sq(v, b.1))
                .unwrap_or(Ordering::Equal)
        })
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embedder::Embedder;

    fn corpus() -> (Embedder, Vec<String>) {
        let e = Embedder::default();
        let texts: Vec<String> = (0..60)
            .map(|i| match i % 3 {
                0 => format!("formula one race at circuit number {i}"),
                1 => format!("school in city number {i} with SAT scores"),
                _ => format!("football player number {i} with volley rating"),
            })
            .collect();
        (e, texts)
    }

    #[test]
    fn flat_search_exact_order() {
        let mut idx = FlatIndex::new(2);
        idx.add(vec![1.0, 0.0]);
        idx.add(vec![0.8, 0.6]);
        idx.add(vec![0.0, 1.0]);
        let hits = idx.search(&[1.0, 0.0], 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 1);
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn flat_handles_k_larger_than_corpus() {
        let mut idx = FlatIndex::new(2);
        idx.add(vec![1.0, 0.0]);
        let hits = idx.search(&[1.0, 0.0], 10);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn flat_ties_break_by_id() {
        let mut idx = FlatIndex::new(2);
        idx.add(vec![1.0, 0.0]);
        idx.add(vec![1.0, 0.0]);
        idx.add(vec![1.0, 0.0]);
        let hits = idx.search(&[1.0, 0.0], 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 1);
    }

    #[test]
    fn retrieval_finds_lexically_similar_rows() {
        let (e, texts) = corpus();
        let mut idx = FlatIndex::new(e.dims());
        idx.add_all(texts.iter().map(|t| e.embed(t)));
        let q = e.embed("SAT scores of the school in city number 4");
        let hits = idx.search(&q, 5);
        // The target row should be the top hit.
        assert_eq!(texts[hits[0].id], "school in city number 4 with SAT scores");
    }

    #[test]
    fn ivf_matches_flat_at_full_probe() {
        let (e, texts) = corpus();
        let vectors: Vec<Vec<f32>> = texts.iter().map(|t| e.embed(t)).collect();
        let mut flat = FlatIndex::new(e.dims());
        flat.add_all(vectors.clone());
        let ivf = IvfIndex::build(e.dims(), 8, 8, vectors);
        let q = e.embed("football player number 7");
        let f: Vec<usize> = flat.search(&q, 5).into_iter().map(|h| h.id).collect();
        let a: Vec<usize> = ivf.search(&q, 5).into_iter().map(|h| h.id).collect();
        assert_eq!(f, a, "nprobe = nlist must equal exact search");
    }

    #[test]
    fn ivf_low_probe_recall_degrades_gracefully() {
        let (e, texts) = corpus();
        let vectors: Vec<Vec<f32>> = texts.iter().map(|t| e.embed(t)).collect();
        let mut flat = FlatIndex::new(e.dims());
        flat.add_all(vectors.clone());
        let ivf = IvfIndex::build(e.dims(), 12, 2, vectors);
        let mut recall_hits = 0usize;
        let mut total = 0usize;
        for t in texts.iter().step_by(7) {
            let q = e.embed(t);
            let exact: std::collections::HashSet<usize> =
                flat.search(&q, 3).into_iter().map(|h| h.id).collect();
            let approx: std::collections::HashSet<usize> =
                ivf.search(&q, 3).into_iter().map(|h| h.id).collect();
            recall_hits += exact.intersection(&approx).count();
            total += exact.len();
        }
        let recall = recall_hits as f64 / total as f64;
        assert!(recall >= 0.5, "recall too low: {recall}");
    }

    #[test]
    fn ivf_empty_and_tiny() {
        let ivf = IvfIndex::build(4, 8, 2, vec![]);
        assert!(ivf.is_empty());
        assert!(ivf.search(&[0.0; 4], 3).is_empty());
        let ivf = IvfIndex::build(2, 8, 2, vec![vec![1.0, 0.0]]);
        assert_eq!(ivf.search(&[1.0, 0.0], 3).len(), 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut idx = FlatIndex::new(3);
        idx.add(vec![1.0, 0.0]);
    }
}
