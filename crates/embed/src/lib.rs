//! # tag-embed — embeddings and vector search substrate
//!
//! Stands in for the E5-base embedding model and the FAISS index used by
//! the paper's RAG baseline (§4.2). Provides:
//!
//! - [`embedder::Embedder`] — deterministic character-n-gram feature
//!   hashing embeddings (L2-normalized);
//! - [`index::FlatIndex`] — exact inner-product top-k;
//! - [`index::IvfIndex`] — k-means inverted-file approximate search;
//! - [`store::RowStore`] — row-level retrieval over the paper's
//!   "- col: val" serialization.

#![warn(missing_docs)]

pub mod embedder;
pub mod index;
pub mod store;

pub use embedder::{cosine, dot, l2_sq, Embedder, EmbedderConfig};
pub use index::{FlatIndex, Hit, IvfIndex};
pub use store::{serialize_row, RetrievalStats, RowStore, StoredRow};
