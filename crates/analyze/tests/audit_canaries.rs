//! Seeded-mutation canary sweep, run as an integration test so CI
//! exercises the same path as `tag-audit --canaries`.
//!
//! Each canary audits a clean miniature workspace fixture, applies one
//! seeded concurrency/determinism bug, and requires the audit to catch
//! it with the expected rule id:
//!
//! - `lock-inversion` → `lock-cycle`
//! - `hashmap-ordered-merge` → `det-hash-iter`
//! - `lockless-predicate-wait` → `condvar-wait-loop`

use tag_analyze::audit::canary::run_canaries;

#[test]
fn seeded_mutations_are_caught() {
    let reports = run_canaries().expect("canary sweep runs");
    assert_eq!(reports.len(), 3, "expected three canaries");
    for r in &reports {
        assert!(
            r.base_clean,
            "canary {}: clean fixture produced findings",
            r.name
        );
        assert!(
            r.caught,
            "canary {}: seeded mutation not caught as {}",
            r.name, r.expected_rule
        );
    }
}
