//! Property-based tests: over randomized well-formed semantic plans,
//! `optimize_sem` must always produce a tree the verifier accepts, the
//! rewrite checker must accept every (naive, optimized) pair under
//! every rule combination, and the static LM-call bound must never be
//! raised by optimization.
//!
//! Plans are grown from a vector of random words: a leaf (scan, input,
//! or retrieval), a stack of exec-stage operators, and an optional
//! gen-stage root — the same shapes the compilers in `tag-core` emit,
//! but with arbitrary structure, columns, and constants.

use proptest::prelude::*;
use tag_analyze::{plan_cost, verify_plan, verify_rewrite, NoSchema};
use tag_sql::{
    optimize_sem, CutSpec, GenFormat, RetrieveKind, SemClaimSpec, SemNode, SemOptOptions,
    SemPredicate, Value,
};

/// All 8 rewrite-rule combinations.
fn all_opts() -> Vec<SemOptOptions> {
    let mut out = Vec::new();
    for pushdown in [false, true] {
        for distinct_rewrite in [false, true] {
            for precut in [false, true] {
                out.push(SemOptOptions {
                    pushdown,
                    distinct_rewrite,
                    precut,
                });
            }
        }
    }
    out
}

fn col(w: u64) -> String {
    ["City", "School", "Circuit", "name", "revenue"][(w % 5) as usize].to_owned()
}

fn claim(w: u64) -> SemClaimSpec {
    match w % 4 {
        0 => SemClaimSpec::CityInRegion {
            region: "Bay Area".into(),
        },
        1 => SemClaimSpec::EuCountry,
        2 => SemClaimSpec::ClassicMovie,
        _ => SemClaimSpec::Property {
            word: "positive".into(),
        },
    }
}

fn cut(w: u64) -> CutSpec {
    CutSpec {
        sort_by: col(w / 7),
        descending: w.is_multiple_of(2),
        k: 1 + (w % 9) as usize,
    }
}

/// A leaf for an exec-stage stack: scan or materialized rows.
fn exec_leaf(w: u64) -> SemNode {
    if w.is_multiple_of(3) {
        SemNode::Input {
            columns: vec![col(w / 3), col(w / 5 + 1)],
            rows: (0..(w % 13))
                .map(|i| vec![Value::Text(format!("r{i}")), Value::Float(i as f64)])
                .collect(),
        }
    } else {
        SemNode::Scan {
            table: "schools".into(),
        }
    }
}

/// One exec-stage operator over `input`, picked by `w`.
fn exec_op(input: SemNode, w: u64) -> SemNode {
    let input = Box::new(input);
    match w % 6 {
        0 => SemNode::Predicate {
            input,
            pred: SemPredicate::NumCmp {
                attr: col(w / 6),
                over: w.is_multiple_of(2),
                value: (w % 100) as f64,
            },
        },
        1 => SemNode::Predicate {
            input,
            pred: SemPredicate::TextEqAny {
                columns: vec![col(w / 6), col(w / 11 + 2)],
                value: "Fresno".into(),
            },
        },
        2 => SemNode::SemFilter {
            input,
            columns: vec![col(w / 6), col(w / 11 + 1)],
            resolve: w.is_multiple_of(2),
            claim: claim(w / 13),
            distinct: false,
            early_stop: None,
        },
        3 => SemNode::Cut {
            input,
            cut: cut(w / 6),
        },
        4 => SemNode::SemTopK {
            input,
            on_attr: col(w / 6),
            property: "memorable".into(),
            k: 1 + (w % 5) as usize,
        },
        _ => SemNode::SemMap {
            input,
            on_attr: col(w / 6),
            instruction: "extract the language".into(),
            out_column: "language".into(),
        },
    }
}

/// Grow one naive plan from random words: leaf, operator stack, and an
/// optional gen root; one word in three instead picks a retrieval
/// pipeline (the RAG / rerank shapes).
fn build_plan(words: &[u64]) -> SemNode {
    let first = words.first().copied().unwrap_or(0);
    if first % 3 == 0 {
        let retrieve = SemNode::Retrieve {
            query: "the question".into(),
            k: 1 + (first % 20) as usize,
            kind: RetrieveKind::Candidates,
        };
        let pool = if first % 2 == 0 {
            SemNode::Rerank {
                input: Box::new(retrieve),
                query: "the question".into(),
                keep: 1 + (first % 10) as usize,
            }
        } else {
            retrieve
        };
        return SemNode::Generate {
            input: Box::new(pool),
            request: "the question".into(),
            format: GenFormat::List,
            span_name: "answer".into(),
        };
    }
    let mut plan = exec_leaf(first);
    for &w in &words[1..] {
        plan = exec_op(plan, w);
    }
    match first % 4 {
        0 => SemNode::SemAgg {
            input: Box::new(plan),
            request: "summarize".into(),
        },
        1 => SemNode::Generate {
            input: Box::new(plan),
            request: "the question".into(),
            format: if first % 2 == 0 {
                GenFormat::Free
            } else {
                GenFormat::FreeOrAgg
            },
            span_name: "answer".into(),
        },
        _ => plan,
    }
}

proptest! {
    /// The generator only produces plans the verifier accepts: randomized
    /// naive trees are well-formed before any rewriting.
    #[test]
    fn generated_naive_plans_verify(words in prop::collection::vec(0u64..1_000_000, 1..8)) {
        let naive = build_plan(&words);
        let report = verify_plan(&naive, &NoSchema);
        prop_assert!(report.is_ok(), "naive plan rejected:\n{}\n{}", report.render(), naive.explain());
    }

    /// Under every rule combination, `optimize_sem` output passes the
    /// verifier and the rewrite checker (work conservation + per-rule
    /// postconditions).
    #[test]
    fn optimizer_output_always_verifies(words in prop::collection::vec(0u64..1_000_000, 1..8)) {
        let naive = build_plan(&words);
        for opts in all_opts() {
            let optimized = optimize_sem(naive.clone(), &opts);
            let plan = verify_plan(&optimized, &NoSchema);
            prop_assert!(
                plan.is_ok(),
                "rules={}: optimized plan rejected:\n{}\n{}",
                opts.cache_tag(), plan.render(), optimized.explain()
            );
            let rewrite = verify_rewrite(&naive, &optimized, &opts, &NoSchema);
            prop_assert!(
                rewrite.is_ok(),
                "rules={}: rewrite rejected:\n{}before:\n{}after:\n{}",
                opts.cache_tag(), rewrite.render(), naive.explain(), optimized.explain()
            );
        }
    }

    /// Optimization never raises the static LM-call bound (and therefore
    /// never raises the token bound, which is calls x context window).
    #[test]
    fn optimizer_never_raises_cost_bound(words in prop::collection::vec(0u64..1_000_000, 1..8)) {
        let naive = build_plan(&words);
        let naive_calls = plan_cost(&naive, &NoSchema).lm_calls;
        for opts in all_opts() {
            let optimized = optimize_sem(naive.clone(), &opts);
            let opt_calls = plan_cost(&optimized, &NoSchema).lm_calls;
            prop_assert!(
                opt_calls <= naive_calls,
                "rules={}: bound raised {naive_calls} -> {opt_calls}:\n{}",
                opts.cache_tag(), optimized.explain()
            );
        }
    }

    /// A deliberately broken rewrite is always caught: fusing a cut into
    /// a filter without the distinct obligation must be rejected, and
    /// deleting a predicate must fail work conservation.
    #[test]
    fn broken_rewrites_are_caught(words in prop::collection::vec(0u64..1_000_000, 1..8)) {
        let naive = build_plan(&words);
        let opts = SemOptOptions::default();
        let mut optimized = optimize_sem(naive.clone(), &opts);
        if clear_first_fused_distinct(&mut optimized) {
            let plan = verify_plan(&optimized, &NoSchema);
            let rewrite = verify_rewrite(&naive, &optimized, &opts, &NoSchema);
            prop_assert!(
                !plan.is_ok() || !rewrite.is_ok(),
                "fused-not-distinct mutation escaped:\n{}",
                optimized.explain()
            );
        }
        let mut dropped = optimize_sem(naive.clone(), &opts);
        if drop_first_predicate(&mut dropped) {
            let rewrite = verify_rewrite(&naive, &dropped, &opts, &NoSchema);
            prop_assert!(
                !rewrite.is_ok(),
                "dropped-predicate mutation escaped:\n{}",
                dropped.explain()
            );
        }
    }
}

/// Clear the `distinct` flag on the first fused early-stop filter.
fn clear_first_fused_distinct(node: &mut SemNode) -> bool {
    if let SemNode::SemFilter {
        distinct,
        early_stop: Some(_),
        ..
    } = node
    {
        *distinct = false;
        return true;
    }
    match node {
        SemNode::Predicate { input, .. }
        | SemNode::SemFilter { input, .. }
        | SemNode::Cut { input, .. }
        | SemNode::SemTopK { input, .. }
        | SemNode::SemAgg { input, .. }
        | SemNode::SemMap { input, .. }
        | SemNode::Rerank { input, .. }
        | SemNode::Generate { input, .. } => clear_first_fused_distinct(input),
        SemNode::SemJoin { left, right, .. } => {
            clear_first_fused_distinct(left) || clear_first_fused_distinct(right)
        }
        SemNode::Scan { .. } | SemNode::Input { .. } | SemNode::Retrieve { .. } => false,
    }
}

/// Splice the first `Predicate` out of the tree.
fn drop_first_predicate(node: &mut SemNode) -> bool {
    if let SemNode::Predicate { input, .. } = node {
        *node = (**input).clone();
        return true;
    }
    match node {
        SemNode::Predicate { input, .. }
        | SemNode::SemFilter { input, .. }
        | SemNode::Cut { input, .. }
        | SemNode::SemTopK { input, .. }
        | SemNode::SemAgg { input, .. }
        | SemNode::SemMap { input, .. }
        | SemNode::Rerank { input, .. }
        | SemNode::Generate { input, .. } => drop_first_predicate(input),
        SemNode::SemJoin { left, right, .. } => {
            drop_first_predicate(left) || drop_first_predicate(right)
        }
        SemNode::Scan { .. } | SemNode::Input { .. } | SemNode::Retrieve { .. } => false,
    }
}
